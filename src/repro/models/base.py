"""Common interface for learned CDF models (paper §1, §3).

A model approximates the empirical CDF of the indexed keys.  Following
§3's notation, everything downstream works with the *unclamped predicted
position* ``N·F_θ(x)`` as a float:

* the predicted index is ``⌊N·F_θ(x)⌋`` clamped to ``[0, N-1]``
  (:func:`predicted_index`),
* a Shift-Table with ``M`` partitions buckets by ``⌊M·F_θ(x)⌋``, computed
  from the same float so the build and the query path agree bit-for-bit
  (:func:`partition_index`).

Scalar prediction takes a tracker and charges the model's parameter
accesses and arithmetic, because model-execution cache misses are half the
paper's story (§2.3: a big accurate model evicts itself from cache).
Batch prediction is pure numpy and is used for building layers and for
vectorised correctness checks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker


def predicted_index(pos: float, n: int) -> int:
    """Clamp an unbounded predicted position to a valid index in [0, n-1]."""
    if pos <= 0.0:
        return 0
    p = int(pos)
    return p if p < n else n - 1


def partition_index(pos: float, n: int, m: int) -> int:
    """Partition number ``⌊M·F_θ(x)⌋`` derived from ``pos = N·F_θ(x)``.

    Computed as ``⌊pos · (m/n)⌋`` with the ratio rounded first, exactly
    like the vectorised build path, so the partition a key is assigned to
    at build time always matches the one computed at query time.
    """
    if pos <= 0.0:
        return 0
    j = int(pos) if m == n else int(pos * (m / n))
    return j if j < m else m - 1


def predicted_index_batch(pos: np.ndarray, n: int) -> np.ndarray:
    """Vectorised :func:`predicted_index`.

    Clips in float space *before* the int cast: a wildly out-of-domain
    query can predict beyond int64 range, and casting that is undefined
    (numpy warns and yields INT64_MIN).
    """
    return np.clip(pos, 0, n - 1).astype(np.int64)


def partition_index_batch(pos: np.ndarray, n: int, m: int) -> np.ndarray:
    """Vectorised :func:`partition_index` (same pre-cast clip)."""
    if m == n:
        scaled = pos
    else:
        scaled = pos * (m / n)
    return np.clip(scaled, 0, m - 1).astype(np.int64)


class CDFModel(ABC):
    """A learned approximation of ``x -> N·F(x)``.

    Attributes
    ----------
    name:
        Short identifier used in benchmark tables.
    num_keys:
        ``N``, the number of indexed records.
    is_monotone:
        Whether the model guarantees monotonically increasing predictions
        (§3.8's validity constraint).  Non-monotone models force the
        corrected index to validate windows at query time.
    """

    name: str = "model"
    is_monotone: bool = True

    def __init__(self, num_keys: int) -> None:
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        self.num_keys = num_keys

    @abstractmethod
    def predict_pos(
        self, key: int | float, tracker: NullTracker = NULL_TRACKER
    ) -> float:
        """Unclamped predicted position ``N·F_θ(key)``, tracing accesses."""

    @abstractmethod
    def predict_pos_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`predict_pos` (float64 array, no tracing)."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Total footprint of the model's parameters."""

    def kernel_spec(self) -> dict | None:
        """Parameters for the compiled predict kernel of this family.

        ``None`` (the default) means "no compiled kernel": the batch
        pipeline keeps the numpy ``predict_pos_batch`` composition.  A
        family that opts in returns a dict with at least ``"family"``
        (a :mod:`repro.kernels.dispatch` family name) plus the scalar/
        array parameters its predict kernel consumes.  The spec must
        describe *exactly* the arithmetic of ``predict_pos_batch`` —
        kernel results are required to be bit-identical to the numpy
        path.
        """
        return None

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    def predict_index(
        self, key: int | float, tracker: NullTracker = NULL_TRACKER
    ) -> int:
        """Clamped predicted index ``⌊N·F_θ(key)⌋``."""
        return predicted_index(self.predict_pos(key, tracker), self.num_keys)

    def predict_index_batch(self, keys: np.ndarray) -> np.ndarray:
        return predicted_index_batch(self.predict_pos_batch(keys), self.num_keys)

    def check_monotone(self, sample: np.ndarray) -> bool:
        """Empirically verify monotonicity on a sorted key sample."""
        pred = self.predict_pos_batch(np.sort(sample))
        return bool(np.all(np.diff(pred) >= 0))


class FunctionModel(CDFModel):
    """Adapter turning a plain callable into a :class:`CDFModel`.

    Used by tests and by the paper's worked examples (Figure 5 and
    Table 1 use ``F_θ(x) = x/1000`` over ``N = 100`` keys).
    """

    def __init__(
        self,
        fn,
        num_keys: int,
        name: str = "fn",
        is_monotone: bool = True,
        size: int = 16,
    ) -> None:
        super().__init__(num_keys)
        self._fn = fn
        self.name = name
        self.is_monotone = is_monotone
        self._size = size

    def predict_pos(
        self, key: int | float, tracker: NullTracker = NULL_TRACKER
    ) -> float:
        tracker.instr(4)
        return float(self._fn(key))

    def predict_pos_batch(self, keys: np.ndarray) -> np.ndarray:
        return np.asarray(
            [float(self._fn(k)) for k in np.asarray(keys)], dtype=np.float64  # repro: noqa[RPR501] — adapter over an arbitrary Python callable; nothing to compile
        )

    def size_bytes(self) -> int:
        return self._size
