"""Empirical-CDF utilities and the paper's micro-complexity diagnostic.

The paper fixes the CDF convention in §3.2: ``N·F(x)`` is the *position of
the result of* ``lower_bound(x)`` — the index of the first array slot
holding a key ``>= x``, with ``N·F(x_0) = 0`` and ``N·F(x_{N-1}) = N-1``.
Duplicates all map to their first occurrence.

:func:`local_linearity` quantifies Figure 3's observation: a synthetic CDF
is near-linear inside any small sub-range ("zoomed-in" views), while
real-world CDFs keep fine-grained structure at every zoom level.  It
reports the mean normalised RMS deviation of the CDF from a straight line
over fixed-size windows — near 0 for smooth data, large for rough data.
"""

from __future__ import annotations

import numpy as np


def lower_bound_positions(data: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """``N·F(x)`` for each key: first-occurrence (lower-bound) positions."""
    return np.searchsorted(data, keys, side="left")


def key_positions(data: np.ndarray) -> np.ndarray:
    """``N·F(x)`` for every slot of ``data`` itself (duplicates collapse)."""
    return np.searchsorted(data, data, side="left")


def upper_bound_positions(data: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Positions under the ``x >= q`` convention of §3.2 (last duplicate)."""
    return np.searchsorted(data, keys, side="right") - 1


def local_linearity(
    data: np.ndarray, window: int = 1024, max_windows: int = 512, seed: int = 0
) -> float:
    """Mean normalised RMS deviation from linearity over small windows.

    For each sampled window of ``window`` consecutive keys, fit the
    straight line through the window's endpoints and measure the RMS
    vertical deviation of the intermediate positions, normalised by the
    window height.  Values near 0 mean "every zoomed-in view looks like a
    line" (synthetic data); larger values mean micro-level structure
    (real-world data).
    """
    n = len(data)
    if n < window + 1:
        raise ValueError("dataset smaller than one window")
    rng = np.random.default_rng(seed)
    num = min(max_windows, n - window)
    starts = rng.integers(0, n - window, size=num)
    keys = data.astype(np.float64)
    deviations = np.empty(num)
    ys = np.arange(window, dtype=np.float64)
    for i, s in enumerate(starts):
        x = keys[s : s + window]
        x0, x1 = x[0], x[-1]
        if x1 <= x0:
            deviations[i] = 0.0
            continue
        # positions predicted by the straight line through the endpoints
        predicted = (x - x0) / (x1 - x0) * (window - 1)
        deviations[i] = np.sqrt(np.mean((predicted - ys) ** 2)) / window
    return float(deviations.mean())


def cdf_series(data: np.ndarray, points: int = 256) -> tuple[np.ndarray, np.ndarray]:
    """A downsampled (key, position) series of the empirical CDF."""
    n = len(data)
    idx = np.linspace(0, n - 1, min(points, n)).astype(np.int64)
    return data[idx], idx
