"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.records import SortedData
from repro.hardware.tracker import alloc_region


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_sorted_keys(rng) -> np.ndarray:
    """1000 sorted uint64 keys with a few duplicate runs."""
    keys = rng.integers(0, 1 << 40, size=1000, dtype=np.uint64)
    keys[100:110] = keys[100]  # forced duplicate run
    keys.sort()
    return keys


@pytest.fixture()
def small_data(small_sorted_keys) -> SortedData:
    return SortedData(small_sorted_keys, name="small")


@pytest.fixture()
def region():
    return alloc_region("test_region", 8, 4096)


def sorted_uint_arrays(
    min_size: int = 1,
    max_size: int = 400,
    max_value: int = (1 << 48) - 1,
    allow_duplicates: bool = True,
):
    """Hypothesis strategy: sorted numpy uint64 arrays."""
    elements = st.integers(min_value=0, max_value=max_value)
    lists = st.lists(elements, min_size=min_size, max_size=max_size)
    if not allow_duplicates:
        lists = st.lists(
            elements, min_size=min_size, max_size=max_size, unique=True
        )

    def to_array(values: list[int]) -> np.ndarray:
        return np.sort(np.asarray(values, dtype=np.uint64))

    return lists.map(to_array)


def queries_for(keys: np.ndarray, rng_seed: int = 0, count: int = 64) -> np.ndarray:
    """Deterministic mixed query set: stored keys, neighbours, extremes."""
    rng = np.random.default_rng(rng_seed)
    picks = rng.choice(keys, size=min(count, len(keys)))
    neighbours = np.concatenate([picks, picks + 1, np.maximum(picks, 1) - 1])
    lo, hi = int(keys.min()), int(keys.max())
    extremes = np.asarray(
        [0, lo, max(lo - 1, 0), hi, hi + 1], dtype=np.uint64
    )
    return np.concatenate([neighbours, extremes]).astype(keys.dtype)
