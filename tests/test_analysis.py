"""Tests for ``repro.analysis``: the lint framework, each rule family's
fixtures, the suppression grammar, and the ``repro lint`` CLI.

The fixture files under ``tests/fixtures/lint/`` are parsed, never
imported.  Violation fixtures carry trailing ``# expect: RPRxxx``
markers naming the finding that must fire on that line; clean fixtures
must produce no findings at all.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.cli
from repro.analysis import (
    all_rules,
    format_suppression,
    lint_paths,
    lint_source,
    parse_suppression,
)
from repro.analysis.framework import JSON_SCHEMA_VERSION

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPR\d{3})")


def expected_findings(path: Path) -> list[tuple[int, str]]:
    """(line, code) pairs declared by ``# expect:`` markers in a fixture."""
    out = []
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        for m in _EXPECT_RE.finditer(text):
            out.append((lineno, m.group(1)))
    return sorted(out)


def findings_of(path: Path, **kw) -> list[tuple[int, str]]:
    found = lint_source(path.read_text(), path, **kw)
    return sorted((f.line, f.code) for f in found)


# ----------------------------------------------------------------------
# rule families against their fixtures
# ----------------------------------------------------------------------
VIOLATION_FIXTURES = [
    "core/dtype_violations.py",
    "core/kernel_loop_violations.py",
    "engine/lock_violations.py",
    "engine/durability_violations.py",
    "serve/async_violations.py",
    "replica/artifact_read_violations.py",
]
CLEAN_FIXTURES = [
    "core/dtype_clean.py",
    "core/kernel_loop_clean.py",
    "engine/lock_clean.py",
    "engine/durability_clean.py",
    "serve/async_clean.py",
    "replica/artifact_read_clean.py",
]


@pytest.mark.parametrize("rel", VIOLATION_FIXTURES)
def test_violation_fixture_detected_exactly(rel):
    path = FIXTURES / rel
    expected = expected_findings(path)
    assert expected, f"fixture {rel} declares no # expect: markers"
    assert findings_of(path) == expected


@pytest.mark.parametrize("rel", CLEAN_FIXTURES)
def test_clean_fixture_produces_no_findings(rel):
    path = FIXTURES / rel
    assert findings_of(path) == []


def test_every_rule_family_has_fixture_coverage():
    """Each registered non-meta rule prefix appears in some fixture."""
    covered = set()
    for rel in VIOLATION_FIXTURES:
        covered.update(code for _, code in expected_findings(FIXTURES / rel))
    families = {code[:5] for code in covered}  # RPR10, RPR20, ...
    for code in all_rules():
        assert code[:5] in families, f"no fixture exercises {code}"


# ----------------------------------------------------------------------
# suppression grammar
# ----------------------------------------------------------------------
def test_suppression_fixture_semantics():
    # expectations are hardcoded here (not # expect: markers) because the
    # markers would collide with the suppression comments under test
    path = FIXTURES / "core" / "suppressions.py"
    assert findings_of(path) == [
        (14, "RPR002"),   # bare noqa without a reason: rejected...
        (14, "RPR101"),   # ...so the underlying finding still fires
        (19, "RPR003"),   # unused suppression
    ]


def test_parse_suppression_accepts_separator_variants():
    for sep in ("—", "–", "--", "-", ":"):
        sup = parse_suppression(f"x = 1  # repro: noqa[RPR101] {sep} why")
        assert sup is not None and sup.valid
        assert sup.codes == ("RPR101",) and sup.reason == "why"


def test_parse_suppression_rejects_bad_codes():
    sup = parse_suppression("x  # repro: noqa[RPR1] — too short")
    assert sup is not None and not sup.valid
    assert parse_suppression("x = 1  # plain comment") is None


_CODES = st.lists(st.from_regex(r"RPR\d{3}", fullmatch=True),
                  min_size=1, max_size=4, unique=True)
_REASONS = (
    st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs", "Cc", "Zl", "Zp")),
        min_size=1, max_size=60)
    .map(str.strip)
    .filter(bool)
)


@given(codes=_CODES, reason=_REASONS)
def test_suppression_round_trips_through_formatter(codes, reason):
    sup = parse_suppression("x = 1  " + format_suppression(codes, reason))
    assert sup is not None and sup.valid
    assert sup.codes == tuple(codes)
    assert sup.reason == reason


# ----------------------------------------------------------------------
# select / ignore
# ----------------------------------------------------------------------
def test_select_restricts_to_listed_codes():
    path = FIXTURES / "core" / "dtype_violations.py"
    only = findings_of(path, select=["RPR101"])
    assert only and all(code == "RPR101" for _, code in only)


def test_ignore_accepts_prefixes():
    path = FIXTURES / "core" / "dtype_violations.py"
    assert findings_of(path, ignore=["RPR1"]) == []


# ----------------------------------------------------------------------
# self-check: the project's own sources must lint clean
# ----------------------------------------------------------------------
def test_repo_sources_lint_clean():
    report = lint_paths([REPO / "src"])
    assert report.files_scanned > 50
    offenders = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"repro lint src found:\n{offenders}"


# ----------------------------------------------------------------------
# CLI: exit codes, JSON schema, statistics
# ----------------------------------------------------------------------
def test_cli_exit_codes(capsys):
    clean = str(FIXTURES / "core" / "dtype_clean.py")
    dirty = str(FIXTURES / "core" / "dtype_violations.py")
    assert repro.cli.main(["lint", clean]) == 0
    assert repro.cli.main(["lint", dirty]) == 1
    assert repro.cli.main(["lint", str(FIXTURES / "nope.py")]) == 2
    capsys.readouterr()


def test_cli_json_schema_is_stable(capsys):
    dirty = str(FIXTURES / "core" / "dtype_violations.py")
    assert repro.cli.main(["lint", dirty, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert set(payload) == {"version", "files_scanned", "clean",
                            "findings", "statistics"}
    assert payload["files_scanned"] == 1 and payload["clean"] is False
    for finding in payload["findings"]:
        assert list(finding) == ["code", "rule", "path", "line",
                                 "col", "message"]
    total = sum(payload["statistics"].values())
    assert total == len(payload["findings"]) > 0


def test_cli_statistics_table(capsys):
    dirty = str(FIXTURES / "core" / "dtype_violations.py")
    assert repro.cli.main(["lint", dirty, "--statistics"]) == 1
    out = capsys.readouterr().out
    assert "findings by rule" in out
    assert "RPR101" in out


def test_cli_select_ignore(capsys):
    dirty = str(FIXTURES / "core" / "dtype_violations.py")
    assert repro.cli.main(["lint", dirty, "--select", "RPR999"]) == 0
    assert repro.cli.main(["lint", dirty, "--ignore", "RPR1"]) == 0
    capsys.readouterr()
