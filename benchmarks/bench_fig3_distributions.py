"""F3 — Figure 3: micro-level complexity of synthetic vs real-world CDFs.

The paper's figure shows that zoomed-in views of synthetic CDFs look like
straight lines while real-world CDFs keep structure at every zoom level.
We print the quantified version: mean normalised RMS deviation from local
linearity per window size.
"""

from conftest import run_once

from repro.bench.experiments import fig3_distributions
from repro.bench.reporting import format_table


def test_fig3_distributions(benchmark):
    rows = run_once(benchmark, fig3_distributions)

    datasets = sorted({r["dataset"] for r in rows})
    windows = sorted({r["window"] for r in rows})
    lookup = {(r["dataset"], r["window"]): r["local_linearity"] for r in rows}
    table = [
        [ds] + [lookup[(ds, w)] for w in windows] for ds in datasets
    ]
    print()
    print(
        format_table(
            ["dataset"] + [f"window={w}" for w in windows],
            table,
            title="Figure 3 — local non-linearity of the CDF (0 = straight line)",
            float_digits=4,
        )
    )

    # synthetic uniform is near-perfectly linear at every zoom; the
    # real-world surrogates are at least 5x rougher (usually far more)
    for w in windows:
        assert lookup[("face64", w)] > 5 * lookup[("uden64", w)]
        assert lookup[("osmc64", w)] > 5 * lookup[("uden64", w)]
    # lognormal is skewed but *smooth*: much closer to linear than osmc
    assert lookup[("osmc64", 1024)] > lookup[("logn64", 1024)]

    benchmark.extra_info["linearity"] = {
        f"{ds}@{w}": round(lookup[(ds, w)], 5)
        for ds in datasets for w in windows
    }
