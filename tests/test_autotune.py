"""Per-shard auto-tuning + shard merge: decisions are cost-consistent,
retune adapts to observed workloads, and every structural change
(rebuild, merge, split) preserves oracle exactness and run-alignment.
"""

from __future__ import annotations

import asyncio
import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    AutoTuneConfig,
    BatchExecutor,
    ShardStats,
    ShardTuner,
    ShardedIndex,
    decision_from_config,
)
from repro.models.factory import IndexDecision, build_corrected_index

from helpers import sorted_uint_arrays


def multi_segment_keys(n: int = 12_000, seed: int = 3) -> np.ndarray:
    """A uniform segment and a heavy-tailed segment in disjoint ranges."""
    rng = np.random.default_rng(seed)
    a = np.sort(rng.integers(0, 1 << 20, n // 2).astype(np.uint64))
    b = np.sort((np.float64(1 << 22)
                 + np.exp(rng.normal(12, 2.5, n - n // 2))).astype(np.uint64))
    return np.concatenate([a, b])


def assert_run_aligned(index: ShardedIndex) -> None:
    """Non-empty shards hold strictly increasing, non-straddling ranges."""
    previous_max = None
    for s in index._nonempty:
        shard_keys = index.shards[int(s)].keys()
        assert len(shard_keys) == index.shard_sizes()[int(s)]
        if previous_max is not None:
            # strict: a duplicate run never straddles two shards
            assert previous_max < shard_keys[0]
        previous_max = shard_keys[-1]


def assert_oracle_exact(index: ShardedIndex, queries: np.ndarray) -> None:
    live = np.sort(index.keys)
    got = BatchExecutor(index).lookup_batch(queries)
    assert np.array_equal(got, np.searchsorted(live, queries, side="left"))


# ----------------------------------------------------------------------
# the tuner itself
# ----------------------------------------------------------------------
def test_autotune_config_rejects_bad_spaces():
    with pytest.raises(ValueError):
        AutoTuneConfig(layers=("S",))
    with pytest.raises(ValueError):
        AutoTuneConfig(backends=("lsm",))
    with pytest.raises(ValueError):
        AutoTuneConfig(models=("no-such-model",))
    with pytest.raises(ValueError):
        AutoTuneConfig(models=())


def test_decide_rejects_empty_slice():
    with pytest.raises(ValueError):
        ShardTuner().decide(np.empty(0, dtype=np.uint64))


def test_decision_is_never_costed_worse_than_alternatives():
    """The chosen config's mixed score is the minimum it considered."""
    tuner = ShardTuner()
    for seed in (0, 1, 2):
        keys = multi_segment_keys(4_000, seed)
        decision = tuner.decide(keys)
        scores = [row["mixed_ns"] for row in decision.considered]
        assert decision.predicted_ns == min(scores)
        assert len(decision.considered) == (
            len(tuner.config.models) * len(tuner.config.layers)
            * len(tuner.config.backends)
        )


def test_read_only_stats_pick_static_backend():
    tuner = ShardTuner()
    keys = multi_segment_keys(3_000)
    stats = ShardStats(reads=100_000, writes=0)
    assert tuner.decide(keys, stats).backend == "static"


def test_write_heavy_stats_pick_update_friendly_backend():
    tuner = ShardTuner()
    keys = multi_segment_keys(3_000)
    stats = ShardStats(reads=1_000, writes=1_000)
    assert tuner.decide(keys, stats).backend in ("gapped", "fenwick")


def test_sparse_stats_fall_back_to_default_write_fraction():
    """A couple of early writes must not stampede the backend choice."""
    tuner = ShardTuner()
    keys = multi_segment_keys(3_000)
    stats = ShardStats(reads=2, writes=5)  # below min_observations
    decision = tuner.decide(keys, stats)
    assert decision.write_fraction == 0.0
    assert decision.backend == "static"


def test_hysteresis_keeps_current_config_within_margin():
    """decide() returns the standing config unless the win clears the
    switch margin — the config label must match, with fresh scores."""
    tuner = ShardTuner(AutoTuneConfig(switch_margin=1.0))  # nothing wins
    keys = multi_segment_keys(3_000)
    free_choice = tuner.decide(keys)
    current = decision_from_config(
        type("C", (), {"model": "interpolation", "layer": "R",
                       "layer_partitions": None})(), "static",
    )
    held = tuner.decide(keys, current=current)
    assert held.label == "interpolation+R/static"
    assert np.isfinite(held.predicted_ns)
    # with no margin at all, the free choice wins again
    tuner = ShardTuner(AutoTuneConfig(switch_margin=0.0))
    assert tuner.decide(keys, current=current).label == free_choice.label


def test_hysteresis_protects_configs_outside_the_search_space():
    """A hand-picked model the default candidate set does not include
    (linear) is scored as the incumbent — retune must not churn it."""
    keys = np.arange(0, 8_000, 2, dtype=np.uint64)  # linear-friendly
    index = ShardedIndex.build(keys, 2, model="linear")
    actions = index.retune()
    assert all(a["action"] == "keep" for a in actions)
    for s in index._nonempty:
        assert index.shards[int(s)].config.model == "linear"
    assert_oracle_exact(index, np.arange(0, 8_100, 3, dtype=np.uint64))


def test_curve_mode_honours_configured_layer_ns():
    """With a measured curve, the R-layer is priced at config.layer_ns,
    not tune()'s scalar 40 ns default (eq. 9 is additive in it)."""
    from repro.core.cost_model import LatencyCurve

    keys = multi_segment_keys(3_000)
    curve = LatencyCurve(np.asarray([1, 4096]), np.asarray([5.0, 300.0]))
    cheap = ShardTuner(AutoTuneConfig(curve=curve, layer_ns=0.0))
    dear = ShardTuner(AutoTuneConfig(curve=curve, layer_ns=500.0))
    ns_of = lambda tuner: {
        (row["model"], row["layer"]): row["read_ns"]
        for row in tuner.decide(keys).considered
    }
    cheap_ns, dear_ns = ns_of(cheap), ns_of(dear)
    for key in cheap_ns:
        model, layer = key
        if layer == "R":
            assert dear_ns[key] == pytest.approx(cheap_ns[key] + 500.0)
        else:  # layer-off candidates are unaffected by the layer price
            assert dear_ns[key] == pytest.approx(cheap_ns[key])


def test_index_decision_feeds_build_corrected_index():
    keys = np.sort(np.random.default_rng(0).integers(
        0, 1 << 30, 2_000).astype(np.uint64))
    decision = IndexDecision(model="rmi", layer=None)
    index = build_corrected_index(keys, decision)
    assert index.layer is None
    assert type(index.model).__name__ == "RMIModel"
    assert decision.label() == "rmi+none"


# ----------------------------------------------------------------------
# engine integration: build-time tuning and retune
# ----------------------------------------------------------------------
def test_build_auto_tune_labels_shards_and_stays_exact():
    keys = multi_segment_keys()
    index = ShardedIndex.build(keys, 4, auto_tune=True)
    for s in index._nonempty:
        assert index.shards[int(s)].decision_label is not None
    queries = np.random.default_rng(1).choice(keys, 4_000)
    assert_oracle_exact(index, queries)
    assert index.build_info()["auto_tune"] is True


def test_build_auto_tune_skips_tiny_shards():
    keys = np.arange(100, dtype=np.uint64)
    index = ShardedIndex.build(keys, 4, auto_tune=True)  # 25-key shards
    assert all(
        index.shards[int(s)].decision_label is None
        for s in index._nonempty
    )


def test_executor_and_writes_feed_shard_stats():
    keys = multi_segment_keys(2_000)
    index = ShardedIndex.build(keys, 2)
    executor = BatchExecutor(index)
    executor.lookup_batch(np.random.default_rng(0).choice(keys, 500))
    index.insert(np.uint64(7))
    reads = sum(index.shards[int(s)].stats.reads for s in index._nonempty)
    writes = sum(index.shards[int(s)].stats.writes for s in index._nonempty)
    assert reads == 500
    assert writes == 1
    index.lookup(keys[0])  # scalar path counts too
    reads = sum(index.shards[int(s)].stats.reads for s in index._nonempty)
    assert reads == 501


def test_retune_moves_write_hot_shard_off_static():
    keys = multi_segment_keys()
    index = ShardedIndex.build(keys, 4, auto_tune=True, backend="static")
    rng = np.random.default_rng(5)
    hot = int(index._nonempty[0])
    lo = int(index.shards[hot].min_key())
    for key in rng.integers(lo, lo + 1000, 400).astype(np.uint64):
        index.insert(key)
    events = []
    index.add_write_listener(events.append)
    actions = index.retune()
    assert any(a["action"] == "rebuild" for a in actions)
    assert index.shards[hot].kind in ("gapped", "fenwick")
    assert index.shards[hot].origin == "retune"
    # retune preserved content and announced itself without a span
    assert [e.kind for e in events] == ["retune"]
    assert events[0].span is None
    queries = rng.choice(keys, 2_000)
    assert_oracle_exact(index, queries)
    assert_run_aligned(index)


def test_retune_works_without_a_standing_tuner():
    keys = multi_segment_keys(6_000)
    index = ShardedIndex.build(keys, 2)  # no auto_tune at build
    actions = index.retune()
    assert actions, "a default ShardTuner should still visit shards"
    assert_oracle_exact(index, np.random.default_rng(0).choice(keys, 1_000))


def test_plan_reports_decision_and_origin_columns():
    keys = multi_segment_keys(6_000)
    index = ShardedIndex.build(keys, 2, auto_tune=True)
    executor = BatchExecutor(index)
    plan = executor.plan(np.random.default_rng(0).choice(keys, 64))
    assert all(s.decision is not None for s in plan.slices)
    assert {s.origin for s in plan.slices} == {"build"}
    text = plan.describe()
    assert "tuned=" in text


# ----------------------------------------------------------------------
# shard merge
# ----------------------------------------------------------------------
def test_delete_path_merges_near_empty_shard():
    keys = np.arange(0, 400, dtype=np.uint64)
    index = ShardedIndex.build(keys, 4)  # 100-key shards
    before = index.num_shards
    # shrink shard 0 below a quarter of the target: it must coalesce
    for value in range(80):
        index.delete(np.uint64(value))
    assert index.num_merges >= 1
    assert index.num_shards < before
    assert_run_aligned(index)
    live = np.arange(80, 400, dtype=np.uint64)
    queries = np.concatenate([live, [np.uint64(0)], [np.uint64(1000)]])
    assert_oracle_exact(index, queries)
    info = index.build_info()
    assert info["merges"] == index.num_merges


def test_merge_skipped_when_combined_would_resplit():
    """No churn: a merge that would immediately re-split is not taken."""
    keys = np.arange(0, 300, dtype=np.uint64)
    index = ShardedIndex.build(keys, 3)  # target 100
    # grow the middle shard close to the 2x split trigger
    for value in range(95):
        index.insert(np.uint64(150))
    # drain shard 0 to a quarter of the target: the only live neighbour
    # is fat (195 keys), so merging now would cross the 2x split
    # trigger — the merge must be skipped
    for value in range(75):
        index.delete(np.uint64(value))
    assert index.num_merges == 0
    # keep draining: once the combination fits under the trigger the
    # merge fires, and it never causes a follow-up split (no churn)
    for value in range(75, 99):
        index.delete(np.uint64(value))
    assert index.num_merges == 1
    assert index.num_splits == 0
    assert_run_aligned(index)
    assert_oracle_exact(index, np.arange(0, 320, dtype=np.uint64))


def test_retune_merge_pass_coalesces_cold_small_shards():
    keys = np.arange(0, 4_000, dtype=np.uint64)
    index = ShardedIndex.build(keys, 4)  # target 1000
    for value in range(600):  # shard 0 at 400 keys: below merge_fraction
        index.delete(np.uint64(value))
    assert index.num_merges == 0  # 400 > target//4: delete path left it
    actions = index.retune(ShardTuner(AutoTuneConfig(min_shard_keys=10**9)))
    assert any(a["action"] == "merge" for a in actions)
    assert index.num_merges >= 1
    assert_run_aligned(index)
    assert_oracle_exact(index, np.arange(0, 4_100, 3, dtype=np.uint64))


def test_merged_shard_sums_workload_counters():
    keys = np.arange(0, 400, dtype=np.uint64)
    index = ShardedIndex.build(keys, 2)
    executor = BatchExecutor(index)
    executor.lookup_batch(keys)  # 200 reads per shard
    for value in range(180):
        index.delete(np.uint64(value))
    assert index.num_merges == 1
    survivor = index.shards[int(index._nonempty[0])]
    assert survivor.stats.reads == 400
    assert survivor.stats.writes == 180
    assert survivor.origin == "merge"


@pytest.mark.parametrize("backend", ["static", "gapped", "fenwick"])
@settings(max_examples=25, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=24, max_size=160, max_value=500),
    ops=st.lists(st.tuples(st.sampled_from(["insert", "delete", "lookup",
                                            "range", "retune"]),
                           st.integers(0, 520)),
                 min_size=10, max_size=60),
)
def test_property_merge_and_retune_stay_exact(backend, keys, ops):
    """Interleaved insert/delete/lookup/range with merges and retunes:
    every answer matches the oracle, run-alignment always holds."""
    index = ShardedIndex.build(keys, 4, backend=backend)
    executor = BatchExecutor(index)
    reference = sorted(map(int, keys))
    tuner = ShardTuner(AutoTuneConfig(min_shard_keys=10**9))  # merge-only

    for op, value in ops:
        if op == "insert":
            index.insert(np.uint64(value))
            bisect.insort(reference, value)
        elif op == "delete":
            if not reference:
                continue
            victim = reference[value % len(reference)]
            index.delete(np.uint64(victim))
            reference.remove(victim)
        elif op == "retune":
            index.retune(tuner)
        live = np.asarray(reference, dtype=np.uint64)
        if op == "lookup":
            got = executor.lookup_batch(np.asarray([value], dtype=np.uint64))
            want = np.searchsorted(live, np.uint64(value), side="left")
            assert got[0] == want
        elif op == "range":
            lo, hi = np.uint64(value), np.uint64(value + 37)
            count = executor.count_batch(np.asarray([lo]), np.asarray([hi]))
            want = (np.searchsorted(live, hi, side="left")
                    - np.searchsorted(live, lo, side="left"))
            assert count[0] == max(want, 0)
        if len(reference):
            assert_run_aligned(index)

    live = np.asarray(reference, dtype=np.uint64)
    queries = np.arange(0, 560, 7, dtype=np.uint64)
    got = executor.lookup_batch(queries)
    assert np.array_equal(got, np.searchsorted(live, queries, side="left"))


# ----------------------------------------------------------------------
# serving integration
# ----------------------------------------------------------------------
def test_server_retune_preserves_cached_answers():
    from repro.serve import IndexServer

    async def scenario():
        keys = multi_segment_keys(4_000)
        index = ShardedIndex.build(keys, 2, auto_tune=True)
        async with IndexServer(index) as server:
            lo, hi = keys[100], keys[3_000]
            count = await server.range(lo, hi)
            actions = await server.retune()
            assert isinstance(actions, list)
            # retune preserves the logical key sequence: the cached
            # range answer is still served, and still correct
            assert await server.range(lo, hi) == count
            assert server.cache.range_hits >= 1
            assert server.stats.retunes == 1

    asyncio.run(scenario())
