"""Sharding edge cases: degenerate K, empty shards, straddling ranges.

The router's correctness argument rests on two invariants — cuts are
snapped to duplicate-run starts, and empty shards are unreachable —
which these tests attack directly: K=1, K far beyond the number of
distinct keys, all-equal key arrays, single-key arrays (leading empty
shards), and range scans crossing several shard cuts at once.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BatchExecutor, ShardedIndex, snap_offsets

from helpers import queries_for, sorted_uint_arrays


def test_k1_is_degenerate_single_shard():
    keys = np.sort(
        np.random.default_rng(0).integers(0, 1 << 30, 2_000, dtype=np.uint64)
    )
    index = ShardedIndex.build(keys, 1)
    assert index.num_shards == 1
    assert np.array_equal(index.offsets, [0, len(keys)])
    queries = queries_for(keys, rng_seed=1)
    assert np.array_equal(
        BatchExecutor(index).lookup_batch(queries),
        np.searchsorted(keys, queries, side="left"),
    )


def test_k_exceeds_distinct_keys():
    # 4 distinct keys, 10 shards: most shards must come out empty and
    # the engine must still answer exactly
    keys = np.asarray([3, 3, 3, 7, 7, 9, 9, 9, 9, 20], dtype=np.uint64)
    index = ShardedIndex.build(keys, 10)
    info = index.build_info()
    assert info["empty_shards"] > 0
    queries = np.asarray([0, 2, 3, 4, 7, 8, 9, 10, 20, 21, 1000],
                         dtype=np.uint64)
    assert np.array_equal(
        BatchExecutor(index).lookup_batch(queries),
        np.searchsorted(keys, queries, side="left"),
    )


def test_all_equal_keys():
    keys = np.full(50, 42, dtype=np.uint64)
    index = ShardedIndex.build(keys, 8)
    queries = np.asarray([0, 41, 42, 43], dtype=np.uint64)
    assert np.array_equal(
        BatchExecutor(index).lookup_batch(queries), [0, 0, 0, 50]
    )


def test_single_key_many_shards():
    # leading empty shards: linspace cuts of n=1 into K=5 put the only
    # key into a late shard; routing must still find it from both sides
    keys = np.asarray([1000], dtype=np.uint64)
    index = ShardedIndex.build(keys, 5)
    queries = np.asarray([0, 999, 1000, 1001], dtype=np.uint64)
    assert np.array_equal(
        BatchExecutor(index).lookup_batch(queries), [0, 0, 0, 1]
    )


def test_router_never_targets_empty_shards():
    keys = np.repeat(
        np.asarray([5, 9, 9, 9, 14, 200], dtype=np.uint64), [7, 1, 1, 1, 2, 3]
    )
    keys.sort()
    index = ShardedIndex.build(keys, 12)
    sizes = index.shard_sizes()
    queries = np.arange(0, 260, dtype=np.uint64)
    shard_ids = index.route_batch(queries)
    assert np.all(sizes[shard_ids] > 0)


@settings(max_examples=60, deadline=None)
@given(keys=sorted_uint_arrays(min_size=1, max_size=250),
       num_shards=st.integers(1, 40))
def test_property_snap_offsets_invariants(keys, num_shards):
    offsets = snap_offsets(keys, num_shards)
    n = len(keys)
    assert offsets[0] == 0 and offsets[-1] == n
    assert np.all(np.diff(offsets) >= 0)
    # run alignment: no duplicate run straddles an interior cut
    for o in offsets[1:-1]:
        if 0 < o < n:
            assert keys[o - 1] != keys[o]


@settings(max_examples=40, deadline=None)
@given(keys=sorted_uint_arrays(min_size=1, max_size=200),
       num_shards=st.integers(1, 25), seed=st.integers(0, 50))
def test_property_routing_is_exact(keys, num_shards, seed):
    index = ShardedIndex.build(keys, num_shards)
    queries = queries_for(keys, rng_seed=seed, count=20)
    got = BatchExecutor(index).lookup_batch(queries)
    assert np.array_equal(got, np.searchsorted(keys, queries, side="left"))


def test_range_scans_straddle_shard_boundaries():
    # keys dense enough that modest ranges span several of the 16 shards
    keys = np.sort(
        np.random.default_rng(5).integers(0, 1 << 16, 8_000, dtype=np.uint64)
    )
    index = ShardedIndex.build(keys, 16)
    executor = BatchExecutor(index)
    rng = np.random.default_rng(6)
    lows = rng.integers(0, 1 << 16, 100, dtype=np.uint64)
    highs = lows + rng.integers(1, 1 << 14, 100, dtype=np.uint64)
    first, last = executor.range_batch(lows, highs)
    assert np.array_equal(first, np.searchsorted(keys, lows, side="left"))
    assert np.array_equal(last, np.searchsorted(keys, highs, side="left"))
    # at least one range must cross a shard cut for this test to bite
    cuts = index.offsets[1:-1]
    assert any(
        np.any((cuts > a) & (cuts < b)) for a, b in zip(first, last)
    )
    for (a, b), scanned in zip(zip(first, last), executor.scan_batch(lows, highs)):
        assert np.array_equal(scanned, keys[a:b])


def test_duplicate_run_on_tentative_cut():
    # a fat run planted exactly where the equal-count cut would fall:
    # snapping must pull the cut to the run start
    keys = np.concatenate([
        np.arange(100, dtype=np.uint64),
        np.full(100, 100, dtype=np.uint64),
        np.arange(101, 201, dtype=np.uint64),
    ])
    index = ShardedIndex.build(keys, 3)
    run_start = int(np.searchsorted(keys, 100))
    for o in index.offsets[1:-1]:
        assert not (run_start < o < run_start + 100)
    queries = np.asarray([99, 100, 101, 150], dtype=np.uint64)
    assert np.array_equal(
        BatchExecutor(index).lookup_batch(queries),
        np.searchsorted(keys, queries, side="left"),
    )


def test_build_rejects_bad_arguments():
    keys = np.arange(10, dtype=np.uint64)
    with pytest.raises(ValueError):
        ShardedIndex.build(keys, 0)
    with pytest.raises(ValueError):
        ShardedIndex.build(np.empty(0, dtype=np.uint64), 2)
    with pytest.raises(ValueError):
        ShardedIndex.build(keys, 2, layer="Q")


def test_shard_local_models_and_layers_per_shard():
    keys = np.sort(
        np.random.default_rng(8).integers(0, 1 << 40, 4_000, dtype=np.uint64)
    )
    index = ShardedIndex.build(keys, 4, model="rmi", layer="S")
    built = [s for s in index.shards if s is not None]
    assert len(built) == 4
    assert len({id(s.model) for s in built}) == 4
    for shard in built:
        assert shard.model.num_keys == len(shard.data)
        assert shard.layer is not None
        assert shard.layer.num_keys == len(shard.data)
    assert index.size_bytes() == sum(s.size_bytes() for s in built)
