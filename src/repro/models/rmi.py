"""Two-stage Recursive Model Index (Kraska et al., the paper's ``RMI``).

A root model maps a key to one of ``L`` second-stage ("leaf") linear
models; the chosen leaf predicts the absolute position.  Per-leaf signed
error bounds are recorded at build time, which is what lets SOSD's RMI run
a *bounded* binary search in the last mile — our baseline does the same.

Three root families, mirroring the architectures SOSD's tuner picks from:

* ``linear``  — least-squares line over (key, position), scaled to leaves;
* ``cubic``   — cubic polynomial in the normalised key.  Cubic roots are
  the paper's §3.8 example of a *non-monotone* model, and ours faithfully
  reports ``is_monotone = False``;
* ``radix``   — top bits of ``key - min`` select the leaf directly.

The leaf training is fully vectorised: keys are grouped by leaf, centred
per group (so 64-bit keys lose no precision), and the closed-form
least-squares solution is computed with segment reductions.
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, alloc_region
from .base import CDFModel

_ROOTS = ("linear", "cubic", "radix")

#: Bytes per leaf entry: slope f8 + intercept f8 + err_lo i4 + err_hi i4.
_LEAF_ENTRY_BYTES = 24


class RMIModel(CDFModel):
    """Two-stage RMI with per-leaf error bounds."""

    def __init__(
        self,
        data: np.ndarray,
        num_leaves: int = 4096,
        root: str = "linear",
        cubic_sample: int = 65536,
    ) -> None:
        super().__init__(len(data))
        if root not in _ROOTS:
            raise ValueError(f"root must be one of {_ROOTS}, got {root!r}")
        if num_leaves <= 0:
            raise ValueError("num_leaves must be positive")
        self.name = f"RMI[{root},{num_leaves}]"
        self.root_kind = root
        self.num_leaves = int(num_leaves)
        self._min = float(data[0])
        self._max = float(data[-1])
        self._fit_root(data, cubic_sample)
        self._fit_leaves(data)
        # linear/radix roots keep key order, but leaf lines may still cross
        # at leaf boundaries; cubic roots are non-monotone outright (§3.8)
        self.is_monotone = False
        self._region = alloc_region(
            f"rmi_leaves_{id(self):x}", _LEAF_ENTRY_BYTES, self.num_leaves
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _fit_root(self, data: np.ndarray, cubic_sample: int) -> None:
        n, leaves = self.num_keys, self.num_leaves
        x = data.astype(np.float64)
        y = np.arange(n, dtype=np.float64)
        if self.root_kind == "linear":
            x_mean, y_mean = x.mean(), y.mean()
            var = ((x - x_mean) ** 2).sum()
            slope = float(((x - x_mean) * (y - y_mean)).sum() / var) if var else 0.0
            self._root_params = (slope * leaves / n, (y_mean - slope * x_mean) * leaves / n)
        elif self.root_kind == "cubic":
            span = self._max - self._min if self._max > self._min else 1.0
            step = max(n // cubic_sample, 1)
            t = (x[::step] - self._min) / span
            target = y[::step] * (leaves / n)
            self._root_params = tuple(np.polyfit(t, target, deg=3))
            self._span = span
        else:  # radix
            span = int(data[-1]) - int(data[0])
            shift = 0
            while (span >> shift) >= leaves:
                shift += 1
            self._root_params = (int(data[0]), shift)

    def _root_leaf_batch(self, keys: np.ndarray) -> np.ndarray:
        x = keys.astype(np.float64)  # repro: noqa[RPR103] — root fit is float by design; per-leaf error bounds are recorded
        if self.root_kind == "linear":
            a, b = self._root_params
            raw = a * x + b
        elif self.root_kind == "cubic":
            c3, c2, c1, c0 = self._root_params
            t = (x - self._min) / self._span
            raw = ((c3 * t + c2) * t + c1) * t + c0
        else:
            base, shift = self._root_params
            if keys.dtype.kind == "u":
                # stay in uint64: keys >= 2^63 would wrap through int64
                # and land in leaf 0 while the scalar path (exact Python
                # ints) computes the true leaf
                k = keys.astype(np.uint64)
                b = np.uint64(base)
                diff = np.where(k > b, k - b, np.uint64(0))
                return np.minimum(
                    diff >> np.uint64(shift), np.uint64(self.num_leaves - 1)
                ).astype(np.int64)
            raw = (
                (np.maximum(keys.astype(np.int64) - base, 0)) >> shift
            ).astype(np.float64)
        # clip in float space before the cast (see predicted_index_batch):
        # far out-of-domain keys overflow an int64 cast
        return np.clip(raw, 0, self.num_leaves - 1).astype(np.int64)

    def _root_leaf(self, key: float) -> int:
        if self.root_kind == "linear":
            a, b = self._root_params
            raw = a * key + b
        elif self.root_kind == "cubic":
            c3, c2, c1, c0 = self._root_params
            t = (key - self._min) / self._span  # repro: noqa[RPR102] — cubic root model maps keys to [0,1]; leaf correction bounds the error
            raw = ((c3 * t + c2) * t + c1) * t + c0
        else:
            base, shift = self._root_params
            raw = float(max(int(key) - base, 0) >> shift)
        if raw <= 0.0:
            return 0
        leaf = int(raw)
        return leaf if leaf < self.num_leaves else self.num_leaves - 1

    def _fit_leaves(self, data: np.ndarray) -> None:
        n, leaves = self.num_keys, self.num_leaves
        x = data.astype(np.float64)
        y = np.arange(n, dtype=np.float64)
        leaf_ids = self._root_leaf_batch(data)
        order = None
        if self.root_kind == "cubic":
            order = np.argsort(leaf_ids, kind="stable")
            leaf_ids = leaf_ids[order]
            x = x[order]
            y = y[order]
        # segment boundaries: keys of leaf j live in [starts[j], starts[j+1])
        starts = np.searchsorted(leaf_ids, np.arange(leaves + 1))
        counts = np.diff(starts)
        occupied = counts > 0
        # centre each segment at its first element for numerical stability
        first_of_leaf = np.repeat(
            np.where(occupied, x[np.minimum(starts[:-1], n - 1)], 0.0), counts
        )
        first_y = np.repeat(
            np.where(occupied, y[np.minimum(starts[:-1], n - 1)], 0.0), counts
        )
        xc = x - first_of_leaf
        yc = y - first_y
        # note: reduceat yields garbage for empty segments (it returns the
        # element at the segment start); every use below is masked by
        # ``occupied`` so that garbage never escapes
        sx = np.add.reduceat(xc, np.minimum(starts[:-1], n - 1))
        sy = np.add.reduceat(yc, np.minimum(starts[:-1], n - 1))
        sxx = np.add.reduceat(xc * xc, np.minimum(starts[:-1], n - 1))
        sxy = np.add.reduceat(xc * yc, np.minimum(starts[:-1], n - 1))
        cnt = counts.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            denom = cnt * sxx - sx * sx
            slope = np.where(
                occupied & (denom > 0), (cnt * sxy - sx * sy) / denom, 0.0
            )
            icept_c = np.where(occupied, (sy - slope * sx) / np.maximum(cnt, 1), 0.0)
        x0 = np.where(occupied, x[np.minimum(starts[:-1], n - 1)], 0.0)
        y0 = np.where(occupied, y[np.minimum(starts[:-1], n - 1)], 0.0)
        slopes = slope
        intercepts = y0 + icept_c - slope * x0
        # empty leaves predict the boundary position of their key range
        boundary = starts[:-1].astype(np.float64)
        intercepts = np.where(occupied, intercepts, boundary)
        self._slopes = slopes
        self._intercepts = intercepts
        # per-leaf signed error bounds over the training keys
        pred = slopes[leaf_ids] * x + intercepts[leaf_ids]
        err = y - pred
        err_lo = np.full(leaves, np.inf)
        err_hi = np.full(leaves, -np.inf)
        np.minimum.at(err_lo, leaf_ids, err)
        np.maximum.at(err_hi, leaf_ids, err)
        err_lo = np.where(np.isfinite(err_lo), err_lo, 0.0)
        err_hi = np.where(np.isfinite(err_hi), err_hi, 0.0)
        self._err_lo = np.floor(err_lo).astype(np.int64)
        self._err_hi = np.ceil(err_hi).astype(np.int64)
        self.mean_abs_error = float(np.abs(err).mean())
        self.max_abs_error = float(np.abs(err).max()) if n else 0.0

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_pos(
        self, key: int | float, tracker: NullTracker = NULL_TRACKER
    ) -> float:
        tracker.instr(8 if self.root_kind != "cubic" else 12)
        leaf = self._root_leaf(float(key))
        tracker.touch(self._region, leaf)
        tracker.instr(4)
        return self._slopes[leaf] * float(key) + self._intercepts[leaf]

    def predict_pos_batch(self, keys: np.ndarray) -> np.ndarray:
        leaf = self._root_leaf_batch(keys)
        return self._slopes[leaf] * keys.astype(np.float64) + self._intercepts[leaf]  # repro: noqa[RPR103] — prediction is float by design; per-leaf error bounds the search

    def error_bounds(
        self, key: int | float, tracker: NullTracker = NULL_TRACKER
    ) -> tuple[int, int]:
        """Per-leaf signed error bounds (same cache line as the params)."""
        leaf = self._root_leaf(float(key))
        return int(self._err_lo[leaf]), int(self._err_hi[leaf])

    def error_bounds_batch(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`error_bounds` (no tracing)."""
        leaf = self._root_leaf_batch(keys)
        return self._err_lo[leaf], self._err_hi[leaf]

    def size_bytes(self) -> int:
        root = 32
        return root + self.num_leaves * _LEAF_ENTRY_BYTES

    def kernel_spec(self) -> dict:
        spec = {
            "family": "rmi",
            "root": self.root_kind,
            "params": self._root_params,
            "slopes": self._slopes,
            "intercepts": self._intercepts,
            "num_leaves": self.num_leaves,
            "err_lo": self._err_lo,
            "err_hi": self._err_hi,
        }
        if self.root_kind == "cubic":
            spec["kmin"] = self._min
            spec["span"] = self._span
        return spec
