"""ResultCache coherence tests (ISSUE 3 satellite: shard-aware ranges).

The contract under test: a cached answer served after any sequence of
writes is *bit-exact* — point entries above a written key are poisoned
by the lazy cutoff frontier, cached ranges die exactly when a write's
shard span overlaps them, and everything else keeps serving.  The
hypothesis drive below replays random interleavings of inserts, deletes
and queries against a live :class:`ShardedIndex` (writes wired to the
cache through the engine's write-listener hook) and asserts every hit
against a ``np.searchsorted`` oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import sorted_uint_arrays
from repro.engine import ShardedIndex, WriteEvent
from repro.serve import ResultCache

# ops over a tiny key universe so queries, duplicates and writes collide
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("ins"), st.integers(0, 100)),
        st.tuples(st.just("del"), st.integers(0, 1_000_000)),
        st.tuples(st.just("point"), st.integers(0, 110)),
        st.tuples(st.just("range"), st.integers(0, 110), st.integers(0, 40)),
    ),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=8, max_size=120, max_value=100),
    ops=ops_strategy,
    backend=st.sampled_from(["static", "gapped", "fenwick"]),
)
def test_cached_answers_never_go_stale(keys, ops, backend):
    index = ShardedIndex.build(keys, 3, backend=backend)
    cache = ResultCache(point_capacity=64, range_capacity=64)
    index.add_write_listener(cache.on_write)
    live = keys.copy()
    for op in ops:
        if op[0] == "ins":
            v = np.uint64(op[1])
            index.insert(v)
            live = np.insert(live, np.searchsorted(live, v, side="left"), v)
        elif op[0] == "del":
            if len(live) == 0:
                continue
            v = live[op[1] % len(live)]
            index.delete(v)
            live = np.delete(live, np.searchsorted(live, v, side="left"))
        elif op[0] == "point":
            q = np.uint64(op[1])
            oracle = int(np.searchsorted(live, q, side="left"))
            got = cache.get_point(q)
            if got is not None:
                assert got == oracle  # a stale hit is the bug
            else:
                cache.put_point(q, oracle)
        else:
            lo = np.uint64(op[1])
            hi = np.uint64(op[1] + op[2])
            oracle = int(
                np.searchsorted(live, hi, side="left")
                - np.searchsorted(live, lo, side="left")
            )
            got = cache.get_range(lo, hi)
            if got is not None:
                assert got == oracle  # a stale hit is the bug
            else:
                cache.put_range(lo, hi, oracle)


def test_range_invalidation_is_shard_aware():
    """A write to shard k drops only ranges overlapping shard k's span."""
    keys = np.arange(0, 4000, dtype=np.uint64)
    index = ShardedIndex.build(keys, 4, backend="static")
    cache = ResultCache()
    index.add_write_listener(cache.on_write)

    cache.put_range(10, 50, 40)        # lives in shard 0's span
    cache.put_range(1200, 1300, 100)   # lives in shard 1's span
    # write far away, in the last shard
    index.insert(np.uint64(3500))
    assert cache.get_range(10, 50) == 40          # survived, still exact
    assert cache.get_range(1200, 1300) == 100     # survived, still exact
    assert cache.invalidated_ranges == 0
    # write inside shard 0's span: only the overlapping range dies
    index.insert(np.uint64(20))
    assert cache.get_range(10, 50) is None
    assert cache.get_range(1200, 1300) == 100
    assert cache.invalidated_ranges == 1


def test_point_cutoff_poisons_only_entries_above_the_write():
    keys = np.arange(0, 1000, dtype=np.uint64)
    index = ShardedIndex.build(keys, 2)
    cache = ResultCache()
    index.add_write_listener(cache.on_write)

    cache.put_point(100, 100)
    cache.put_point(900, 900)
    index.insert(np.uint64(500))
    assert cache.get_point(100) == 100      # below the write: untouched
    assert cache.get_point(900) is None     # above: lazily dropped
    assert cache.invalidated_points == 1
    # a fresh post-write fill at the same key serves again
    cache.put_point(900, 901)
    assert cache.get_point(900) == 901


def test_cutoff_frontier_stays_monotone_and_compact():
    cache = ResultCache()
    for key in (80, 60, 90, 10):
        cache.on_write(WriteEvent("insert", 0, key, (key, None)))
    # 80/60/90 are all dominated by the final write at 10
    assert cache._cut_keys == [10]
    cache.on_write(WriteEvent("insert", 0, 70, (70, None)))
    assert cache._cut_keys == [10, 70]
    assert cache._cut_stamps == sorted(cache._cut_stamps)


def test_refresh_events_do_not_invalidate():
    cache = ResultCache()
    cache.put_point(5, 5)
    cache.put_range(1, 9, 8)
    assert cache.on_write(WriteEvent("refresh", -1)) == (0, 0)
    assert cache.get_point(5) == 5
    assert cache.get_range(1, 9) == 8


def test_lru_eviction_respects_capacity():
    cache = ResultCache(point_capacity=4, range_capacity=2)
    for i in range(10):
        cache.put_point(i, i)
        cache.put_range(i, i + 1, 1)
    assert len(cache._points) == 4
    assert len(cache._ranges) == 2
    # most-recent entries survive
    assert cache.get_point(9) == 9
    assert cache.get_point(0) is None
    # a get refreshes recency
    cache.get_point(6)
    cache.put_point(11, 11)
    assert cache.get_point(6) == 6


def test_zero_capacity_disables_each_side():
    cache = ResultCache(point_capacity=0, range_capacity=0)
    cache.put_point(1, 1)
    cache.put_range(1, 2, 1)
    assert cache.get_point(1) is None
    assert cache.get_range(1, 2) is None
    assert len(cache) == 0
    with pytest.raises(ValueError):
        ResultCache(point_capacity=-1)


def test_clear_and_info():
    cache = ResultCache()
    cache.put_point(1, 1)
    cache.put_range(1, 2, 1)
    cache.get_point(1)
    cache.on_write(WriteEvent("insert", 0, 0, (0, None)))
    info = cache.info()
    assert info["points"] == 1 and info["ranges"] == 0
    assert 0 < info["hit_rate"] <= 1
    cache.clear()
    assert len(cache) == 0
    assert cache._cut_keys == []


def test_cutoff_frontier_stays_bounded_under_append_only_writes():
    """Monotone ascending writes must not grow the frontier forever."""
    cache = ResultCache()
    cache.MAX_CUTOFFS = 8
    cache.put_point(2, 2)     # below every write: must keep serving
    cache.put_point(10_000, 50)  # above them all: must go stale
    for key in range(100, 200):
        cache.on_write(WriteEvent("insert", 0, key, (key, None)))
        assert len(cache._cut_keys) <= cache.MAX_CUTOFFS + 1
        assert cache._cut_keys == sorted(cache._cut_keys)
        assert cache._cut_stamps == sorted(cache._cut_stamps)
    assert cache.get_point(2) == 2
    assert cache.get_point(10_000) is None  # merged frontier still poisons
