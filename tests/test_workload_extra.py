"""Extra coverage: harness warm-up mechanics, latency-curve edge cases,
and cross-mode layer consistency properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import measure_index, timed_build
from repro.bench.methods import OnTheFlyIndex
from repro.core.compact import CompactShiftTable
from repro.core.records import SortedData
from repro.core.shift_table import ShiftTable
from repro.datasets import load
from repro.hardware.machine import MachineSpec
from repro.models import InterpolationModel
from repro.search.binary import lower_bound

from helpers import sorted_uint_arrays

N = 20_000


def test_measurement_is_deterministic_and_warmup_splits_queries():
    """Same inputs give the same simulated numbers, and the warm-up
    fraction controls how many queries are actually measured."""
    keys = load("face64", N, seed=101)
    data = SortedData(keys)
    machine = MachineSpec.paper().scaled_for(N, data.record_bytes)
    index = OnTheFlyIndex(data, lower_bound, "BS")
    qs = np.random.default_rng(0).choice(keys, 256)
    a = measure_index(index, data, qs, machine, warmup_fraction=0.5)
    b = measure_index(index, data, qs, machine, warmup_fraction=0.5)
    assert a.ns_per_lookup == b.ns_per_lookup
    assert a.queries == 128
    c = measure_index(index, data, qs, machine, warmup_fraction=0.25)
    assert c.queries == 192


def test_first_query_on_cold_caches_is_most_expensive():
    """The steady-state §2.2 effect: a cold lookup costs more than the
    average over a warmed stream."""
    from repro.hardware.hierarchy import MemoryHierarchy
    from repro.hardware.tracker import SimTracker

    keys = load("face64", N, seed=101)
    data = SortedData(keys)
    machine = MachineSpec.paper().scaled_for(N, data.record_bytes)
    hierarchy = MemoryHierarchy(machine)
    tracker = SimTracker(hierarchy)
    qs = np.random.default_rng(0).choice(keys, 200)
    lower_bound(keys, data.region, tracker, qs[0])
    first_cost = hierarchy.stats.total_ns
    for q in qs[1:]:
        lower_bound(keys, data.region, tracker, q)
    avg_rest = (hierarchy.stats.total_ns - first_cost) / (len(qs) - 1)
    assert first_cost > avg_rest


def test_measure_index_single_query():
    keys = load("uden32", N, seed=101)
    data = SortedData(keys)
    machine = MachineSpec.paper().scaled_for(N, data.record_bytes)
    index = OnTheFlyIndex(data, lower_bound, "BS")
    m = measure_index(index, data, keys[:1], machine)
    assert m.queries == 1 and m.correct


def test_timed_build_returns_result_and_time():
    result, seconds = timed_build(sorted, [3, 1, 2])
    assert result == [1, 2, 3]
    assert seconds >= 0


# ----------------------------------------------------------------------
# cross-mode layer properties
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(keys=sorted_uint_arrays(min_size=4, max_size=250))
def test_property_s_mode_point_inside_r_mode_window(keys):
    """For occupied partitions at M=N, the S-mode corrected point always
    lies inside (or at the edge of) the R-mode window: the mean of the
    drifts is bracketed by their min and min+width."""
    model = InterpolationModel(keys)
    r = ShiftTable.build(keys, model)
    s = CompactShiftTable.build(keys, model)
    occupied = r.counts > 0
    lo = r.deltas[occupied]
    hi = r.deltas[occupied] + r.widths[occupied]
    mid = s.drifts[occupied]
    assert bool(np.all(lo <= mid))
    assert bool(np.all(mid <= hi))


@settings(max_examples=50, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=4, max_size=250),
    m_div=st.sampled_from([1, 2, 5]),
)
def test_property_window_totals_match_counts(keys, m_div):
    """Partition counts always sum to N; at full resolution (M = N) the
    occupied window length is exactly the paper's C_k.  (For M < N the
    window is per-prediction relative, so C_k - 1 is not a lower bound.)"""
    model = InterpolationModel(keys)
    m = max(len(keys) // m_div, 1)
    layer = ShiftTable.build(keys, model, num_partitions=m)
    assert int(layer.counts.sum()) == len(keys)
    occupied = layer.counts > 0
    assert bool(np.all(layer.widths[occupied] >= 0))
    if m == len(keys):
        assert bool(
            np.all(layer.widths[occupied] == layer.counts[occupied] - 1)
        )


@settings(max_examples=30, deadline=None)
@given(keys=sorted_uint_arrays(min_size=2, max_size=200))
def test_property_compact_sampling_never_breaks_lookup(keys):
    """Even a 1-key sample build must leave the index exact (the search
    is unbounded, the layer only guides it)."""
    from repro.core.corrected_index import CorrectedIndex

    model = InterpolationModel(keys)
    layer = CompactShiftTable.build(keys, model, sample_size=1)
    index = CorrectedIndex(SortedData(keys), model, layer)
    probe = keys[len(keys) // 2]
    assert index.lookup(probe) == int(np.searchsorted(keys, probe))


def test_latency_curve_measure_skips_oversized_windows():
    from repro.core.cost_model import measure_latency_curve

    keys = load("uden32", 2000, seed=101)
    machine = MachineSpec.paper().scaled_for(2000, 12)
    curve = measure_latency_curve(
        keys, machine, sizes=(1, 16, 256, 100_000), queries_per_size=16
    )
    # the 100k window exceeds n and must be dropped, leaving 3 points
    assert len(curve.sizes) == 3
