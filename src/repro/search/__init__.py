"""On-the-fly search algorithms over sorted arrays (paper §2.1, §5).

All functions share a signature shape ``fn(data, region, tracker, q, ...)``
and return *lower-bound* positions: the index of the first element that is
``>= q``, or ``len(data)`` when no such element exists.
"""

from .batch import bounded_lower_bound_batch, validated_lower_bound_batch
from .binary import lower_bound, lower_bound_batch
from .exponential import exponential_lower_bound
from .interpolation import interpolation_lower_bound
from .linear import linear_around, linear_lower_bound
from .local import (
    LINEAR_TO_BINARY_THRESHOLD,
    bounded_local_search,
    unbounded_local_search,
)
from .tip import tip_lower_bound

__all__ = [
    "lower_bound",
    "lower_bound_batch",
    "bounded_lower_bound_batch",
    "validated_lower_bound_batch",
    "exponential_lower_bound",
    "interpolation_lower_bound",
    "linear_around",
    "linear_lower_bound",
    "bounded_local_search",
    "unbounded_local_search",
    "tip_lower_bound",
    "LINEAR_TO_BINARY_THRESHOLD",
]
