"""Range-query engine: §3.2 operators, clustered scans, explain traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compact import CompactShiftTable
from repro.core.corrected_index import CorrectedIndex
from repro.core.range_query import RangeQueryEngine
from repro.core.records import SortedData
from repro.core.shift_table import ShiftTable
from repro.datasets import load
from repro.models import InterpolationModel

from helpers import sorted_uint_arrays

N = 20_000


def engine_for(keys, layer_kind="r"):
    data = SortedData(keys)
    model = InterpolationModel(keys)
    if layer_kind == "r":
        layer = ShiftTable.build(keys, model)
    elif layer_kind == "s":
        layer = CompactShiftTable.build(keys, model)
    else:
        layer = None
    return RangeQueryEngine(CorrectedIndex(data, model, layer))


@pytest.fixture(scope="module")
def wiki_engine():
    return engine_for(load("wiki64", N, seed=51))


def test_lower_and_upper_bound_semantics():
    keys = np.asarray([2, 4, 4, 4, 9], dtype=np.uint64)
    eng = engine_for(keys)
    assert eng.lower_bound(4) == 1
    assert eng.upper_bound(4) == 4  # one past the duplicate run
    assert eng.equal_range(4) == (1, 4)
    assert eng.equal_range(5) == (4, 4)  # absent key: empty run


def test_upper_bound_at_domain_max():
    max_val = np.iinfo(np.uint64).max
    keys = np.asarray([5, max_val], dtype=np.uint64)
    eng = engine_for(keys)
    assert eng.upper_bound(max_val) == 2
    assert eng.lower_bound(max_val) == 1


@pytest.mark.parametrize("float_dtype", [np.float64, np.float32])
def test_upper_bound_on_float_keys(float_dtype):
    # regression: np.iinfo(keys.dtype) raised TypeError on float keys
    keys = np.sort(
        np.random.default_rng(7).random(2_000).astype(float_dtype) * 1000
    )
    keys = np.concatenate([keys, keys[500:503]])  # plant duplicate runs
    keys.sort(kind="stable")
    eng = engine_for(keys)
    probes = np.concatenate([
        keys[::97],
        np.asarray([keys[0], keys[-1], 0.0, 1e6], dtype=float_dtype),
    ])
    for q in probes:
        assert eng.lower_bound(q) == int(np.searchsorted(keys, q, "left"))
        assert eng.upper_bound(q) == int(np.searchsorted(keys, q, "right"))
        lo, hi = eng.equal_range(q)
        assert (lo, hi) == (
            int(np.searchsorted(keys, q, "left")),
            int(np.searchsorted(keys, q, "right")),
        )


def test_upper_bound_float_extremes():
    keys = np.asarray([1.5, 2.5, np.finfo(np.float64).max], dtype=np.float64)
    eng = engine_for(keys)
    assert eng.upper_bound(np.finfo(np.float64).max) == 3
    assert eng.upper_bound(np.inf) == 3
    assert eng.upper_bound(2.5) == 2
    # the successor of 2.5 is the very next representable double
    assert eng.lower_bound(np.nextafter(2.5, np.inf)) == 2


def test_count_matches_brute_force(wiki_engine):
    keys = wiki_engine.data.keys
    rng = np.random.default_rng(3)
    for _ in range(50):
        lo, hi = np.sort(rng.choice(keys, 2))
        expected = int(((keys >= lo) & (keys < hi)).sum())
        assert wiki_engine.count(lo, hi) == expected
    assert wiki_engine.count(keys[10], keys[10]) == 0
    assert wiki_engine.count(keys[-1], keys[0]) == 0  # inverted range


def test_scan_returns_clustered_slice(wiki_engine):
    keys = wiki_engine.data.keys
    lo, hi = keys[100], keys[5_000]
    got = wiki_engine.scan(lo, hi)
    expected = keys[(keys >= lo) & (keys < hi)]
    assert np.array_equal(got, expected)
    assert len(wiki_engine.scan(hi, lo)) == 0


def test_scan_charges_sequential_access(wiki_engine):
    from repro.hardware.hierarchy import MemoryHierarchy
    from repro.hardware.machine import MachineSpec
    from repro.hardware.tracker import SimTracker

    keys = wiki_engine.data.keys
    h = MemoryHierarchy(MachineSpec.paper().scaled_for(N, 16))
    tracker = SimTracker(h)
    wiki_engine.scan(keys[0], keys[-1], tracker)
    # the full scan must touch on the order of n*record/line lines
    assert h.stats.scan_lines > N // 8


@pytest.mark.parametrize("layer_kind", ["r", "s", "none"])
def test_explain_trace_fields(layer_kind):
    keys = load("wiki64", N, seed=51)
    eng = engine_for(keys, layer_kind)
    q = keys[1234]
    trace = eng.explain(q)
    assert trace.result == int(np.searchsorted(keys, q))
    assert trace.result_is_exact_match
    assert 0 <= trace.predicted_index < N
    if layer_kind == "r":
        assert trace.window_start is not None
        assert trace.window_start <= trace.result <= (
            trace.window_start + trace.window_width + 1
        )
    elif layer_kind == "s":
        assert trace.corrected_point is not None
    else:
        assert trace.partition is None


def test_explain_non_indexed_query():
    keys = (np.arange(100, dtype=np.uint64) * 10).astype(np.uint64)
    eng = engine_for(keys)
    trace = eng.explain(55)
    assert trace.result == 6
    assert not trace.result_is_exact_match


@settings(max_examples=40, deadline=None)
@given(keys=sorted_uint_arrays(min_size=2, max_size=200), seed=st.integers(0, 99))
def test_property_count_consistent_with_bounds(keys, seed):
    eng = engine_for(keys)
    rng = np.random.default_rng(seed)
    lo, hi = np.sort(rng.choice(keys, 2))
    assert eng.count(lo, hi) == eng.lower_bound(hi) - eng.lower_bound(lo)
    assert eng.upper_bound(lo) >= eng.lower_bound(lo)
