"""Follower half of replication: sync a generation, stream the tail.

:func:`follow` turns an empty (or previously-synced) directory into a
live read replica of a leader's durable index:

1. **Boot** — if the directory already holds a synced generation, it
   reboots through the engine's ordinary recovery read path
   (:func:`~repro.engine.durability.replay_directory`): segments load
   without refits, the local WAL tail replays into pending buffers.
   Otherwise (or when the local state is unusable) it **full-syncs**:
   pins the leader's published manifest, fetches every segment in
   chunks, checksum-verifies each one *before* publishing the local
   ``MANIFEST.json`` (the commit point — a crash mid-sync leaves a
   manifest-less directory that simply full-syncs again, never a torn
   generation).
2. **Stream** — subscribes from its local WAL head.  The leader either
   resumes (pushing the missing backlog, then live records) or demands
   a resync (its WAL GC'd the needed generations).  Every streamed
   record is appended to the replica's own WAL before it is applied,
   so the replica directory is always a bona fide durable directory:
   :func:`repro.open` on it *promotes* the replica to a standalone
   writable index.

Reads are served from the embedded :class:`repro.Index` facade and are
oracle-exact at the replica's applied-LSN watermark
(:attr:`ReplicaIndex.applied_lsn`); staleness is observable via
:meth:`ReplicaIndex.lag` — LSNs behind the leader's last heartbeat and
seconds spent behind it.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..api import Index
from ..engine.durability import (
    MANIFEST_NAME,
    DurabilityError,
    DurabilityManager,
    _atomic_write_text,
    is_durable_dir,
    replay_directory,
)
from ..engine.persist import IndexPersistError, _fsync_dir, load_shard_segment
from ..engine.wal import (
    OP_DELETE,
    OP_INSERT,
    WalError,
    WalWriter,
    list_generations,
    read_wal,
)
from ..net.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)

__all__ = [
    "REPLICA_STATE_NAME",
    "ReplicaError",
    "ReplicaIndex",
    "ReplicaLag",
    "follow",
    "is_replica_dir",
    "read_replica_state",
]

#: Replica-side state file (alongside the synced ``MANIFEST.json``).
REPLICA_STATE_NAME = "REPLICA.json"

#: ``format`` magic inside :data:`REPLICA_STATE_NAME`.
REPLICA_FORMAT_NAME = "repro-replica"


class ReplicaError(ValueError):
    """A replica could not sync, stream or read its local state."""


class _ResyncNeeded(Exception):
    """Internal: the stream cannot resume — re-ship the generation."""


@dataclass(frozen=True)
class ReplicaLag:
    """Observable staleness: LSNs behind the leader, seconds behind it.

    ``lsns`` is the distance between the leader's last advertised head
    and the replica's applied watermark; ``seconds`` is how long the
    replica has continuously been behind (0.0 when caught up).
    """

    lsns: int
    seconds: float


def is_replica_dir(path) -> bool:
    """Whether ``path`` holds (or held) a streaming replica's state."""
    return (Path(path) / REPLICA_STATE_NAME).is_file()


def read_replica_state(path) -> dict:
    """Read a replica directory's ``REPLICA.json`` (sanctioned reader).

    Raises :class:`ReplicaError` for missing, unreadable or
    wrong-format files.
    """
    state_path = Path(path) / REPLICA_STATE_NAME
    try:
        state = json.loads(state_path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReplicaError(f"{state_path} is unreadable: {exc}") from exc
    if not isinstance(state, dict) \
            or state.get("format") != REPLICA_FORMAT_NAME:
        raise ReplicaError(f"{state_path} is not a replica state file")
    return state


# ----------------------------------------------------------------------
# sync filesystem helpers (run in executors; never on the event loop)
# ----------------------------------------------------------------------
def _clear_directory(root: Path) -> None:
    """Drop every synced artifact, manifest FIRST.

    Unlinking ``MANIFEST.json`` before the segments/WAL means a crash
    anywhere inside a resync leaves a manifest-less directory — the
    next :func:`follow` simply full-syncs — instead of a manifest
    pointing at missing or half-written files (a torn generation).
    """
    manifest = root / MANIFEST_NAME
    if manifest.exists():
        manifest.unlink()
        _fsync_dir(root)
    shutil.rmtree(root / "wal", ignore_errors=True)
    shutil.rmtree(root / "segments", ignore_errors=True)


def _write_segment(path: Path, blob: bytes):
    """Durably write one fetched segment, then checksum-verify it.

    Returns ``(segment manifest, shard backend)`` from
    :func:`~repro.engine.persist.load_shard_segment` — corruption in
    transit or on disk is caught *before* the manifest publish makes
    the segment reachable.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    _fsync_dir(path.parent)
    return load_shard_segment(path)


class _Conn:
    """One leader connection: request/response futures + push queue.

    Request frames carry ids and resolve their own futures (the
    :class:`repro.net.client.Client` idiom); leader-initiated pushes
    (``"kind"``-tagged frames: wal batches, heartbeats, resync) land in
    :attr:`pushes` in arrival order.  A dead read loop fails every
    pending future and enqueues a ``__lost__`` sentinel so the stream
    consumer wakes up too.
    """

    def __init__(self, host: str, port: int, *, timeout: float,
                 max_frame: int) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self.pushes: asyncio.Queue = asyncio.Queue()
        self.bytes_in = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0

    async def connect(self) -> "_Conn":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._task = asyncio.create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        decoder = FrameDecoder(self.max_frame)
        try:
            while True:
                data = await self._reader.read(1 << 16)
                if not data:
                    raise ConnectionResetError(
                        "leader closed the connection")
                self.bytes_in += len(data)
                for msg in decoder.feed(data):
                    self._route(msg)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._lost(exc)

    def _route(self, msg) -> None:
        if not isinstance(msg, dict):
            return
        if "kind" in msg:
            self.pushes.put_nowait(msg)
            return
        fut = self._pending.pop(msg.get("id"), None)
        if fut is None or fut.done():
            return
        if msg.get("ok"):
            fut.set_result(msg.get("r"))
        else:
            fut.set_exception(ReplicaError(
                f"{msg.get('error')}: {msg.get('message')}"))

    def _lost(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(
                    ConnectionError(f"connection lost: {exc}"))
        self.pushes.put_nowait({"kind": "__lost__", "message": str(exc)})

    async def request(self, msg: dict):
        if self._writer is None or self._writer.is_closing():
            raise ConnectionError("connection is closed")
        rid = self._next_id
        self._next_id += 1
        fut = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        try:
            self._writer.write(
                encode_frame(dict(msg, id=rid), self.max_frame))
            await self._writer.drain()
            return await asyncio.wait_for(fut, self.timeout)
        except asyncio.TimeoutError:
            self._pending.pop(rid, None)
            raise
        except (ConnectionError, OSError):
            self._pending.pop(rid, None)
            raise

    def send(self, msg: dict) -> None:
        """Fire-and-forget (acks): write a frame, await no response."""
        if self._writer is not None and not self._writer.is_closing():
            self._writer.write(encode_frame(msg, self.max_frame))

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
        self._lost(ConnectionError("connection closed"))


class ReplicaIndex:
    """A live, continuously-catching-up read replica of a leader index.

    Construct with :func:`follow`.  Reads (:meth:`lookup`,
    :meth:`range`, :meth:`scan`, …) delegate to the embedded
    :class:`repro.Index` facade and answer exactly what the leader
    would have answered at :attr:`applied_lsn`; :meth:`lag` reports the
    staleness.  The replica's directory stays a valid durable
    directory at all times — close the replica and ``repro.open()`` it
    to promote a standalone writable index.
    """

    def __init__(self, host: str, port: int, directory, *,
                 sync: str = "async", reconnect: bool = True,
                 ack_interval: float = 0.25, timeout: float = 30.0,
                 max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.host = host
        self.port = int(port)
        self.directory = Path(directory)
        self.ack_interval = ack_interval
        self.timeout = timeout
        self.max_frame = max_frame
        self._sync_mode = sync
        self._reconnect = reconnect
        self._conn: _Conn | None = None
        self._index: Index | None = None
        self._wal: WalWriter | None = None
        self._flushed: list[int] = []
        self._task: asyncio.Task | None = None
        self._closed = False
        #: LSN watermark: every record at or below it is applied here
        self.applied_lsn = 0
        #: the leader's last advertised head LSN (heartbeats/subscribe)
        self.leader_lsn = 0
        self.leader_generation = 0
        #: generation of the locally synced manifest
        self.generation = 0
        self._behind_since: float | None = None
        # lifecycle counters (the acceptance tests' evidence)
        self.bytes_synced = 0  # segment chunk bytes fetched
        self.bytes_streamed = 0  # live wal frame bytes received
        self.streamed_records = 0
        self.filtered = 0  # records already inside a synced segment
        self.apply_skipped = 0  # deletes whose insert a torn tail lost
        self.full_syncs = 0
        self.resyncs = 0
        self.subscriptions = 0
        self._last_ack = 0.0
        self._last_dump = 0.0

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    async def _bootstrap(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        await self._ensure_conn()
        hello = await self._conn.request({"op": "repl_hello"})
        booted = False
        if is_durable_dir(self.directory):
            try:
                await self._boot_existing(hello)
                booted = True
            except (DurabilityError, IndexPersistError, WalError,
                    ReplicaError):
                booted = False  # unusable local state: ship it fresh
        if not booted:
            await self._full_sync()
        self._task = asyncio.create_task(self._run())

    async def _boot_existing(self, hello: dict) -> None:
        """Reboot from the locally synced generation + local WAL tail."""
        loop = asyncio.get_running_loop()
        state = await loop.run_in_executor(
            None, replay_directory, self.directory)
        if state.index is None:
            raise ReplicaError("local directory recovered empty")
        if np.dtype(state.key_dtype) != np.dtype(hello["key_dtype"]):
            raise ReplicaError(
                "local key dtype differs from the leader's")
        # WAL lanes are per-shard files, so a torn tail can lose a
        # mid-LSN record while sibling lanes keep higher LSNs.  A
        # leader may shrug (those writes were never acknowledged); a
        # replica resuming past the gap would silently diverge from
        # the leader forever.  Demand contiguity or re-ship.
        records, _torn = await loop.run_in_executor(
            None, read_wal, self.directory / "wal", state.generation)
        lsns = [r.lsn for r in records]
        if lsns and lsns != list(range(lsns[0], lsns[0] + len(lsns))):
            raise ReplicaError(
                "local WAL lost a mid-run record (torn lane) — the "
                "tail is not contiguous; full sync required")
        state.index.source = "replica"
        gens = await loop.run_in_executor(
            None, list_generations, self.directory / "wal")
        # never append after a possibly-torn tail: fresh generation
        generation = max(gens + [state.generation]) + 1
        await self._install(
            state.index, state.flushed_lsns,
            resume_lsn=state.max_lsn, wal_generation=generation,
            manifest_generation=state.generation)

    async def _full_sync(self) -> None:
        """Ship the leader's published generation into the directory."""
        loop = asyncio.get_running_loop()
        conn = self._conn
        r = await conn.request({"op": "repl_manifest"})
        manifest = r["manifest"]
        key_dtype = np.dtype(manifest["key_dtype"])
        # release the stale local state before deleting it from under
        # its own WAL writer
        await self._teardown_local()
        await loop.run_in_executor(None, _clear_directory, self.directory)
        shards, flushed, lengths = [], [], []
        for name in manifest["segments"]:
            blob = bytearray()
            while True:
                part = await conn.request({
                    "op": "repl_fetch", "name": name, "offset": len(blob),
                })
                if not part["data"] and not part["eof"]:
                    raise ReplicaError(f"empty chunk fetching {name}")
                blob.extend(part["data"])
                if part["eof"]:
                    break
            self.bytes_synced += len(blob)
            seg_manifest, shard = await loop.run_in_executor(
                None, _write_segment, self.directory / name, bytes(blob))
            shards.append(shard)
            flushed.append(int(seg_manifest["flushed_lsn"]))
            lengths.append(int(seg_manifest["length"]))
        # every segment verified on disk: publish the commit point
        await loop.run_in_executor(
            None, _atomic_write_text, self.directory / MANIFEST_NAME,
            json.dumps(manifest, sort_keys=True, indent=1))
        try:
            await conn.request({"op": "repl_unpin"})
        except Exception:
            pass  # a disconnect releases the pin server-side anyway
        engine = DurabilityManager._build_engine(
            manifest, shards, lengths, key_dtype)
        if engine is None:
            raise ReplicaError(
                "the leader's checkpoint is empty — nothing to replicate")
        engine.source = "replica"
        self.full_syncs += 1
        await self._install(
            engine, flushed, resume_lsn=min(flushed),
            wal_generation=int(manifest["generation"]),
            manifest_generation=int(manifest["generation"]))

    async def _install(self, engine, flushed, *, resume_lsn: int,
                       wal_generation: int,
                       manifest_generation: int) -> None:
        """Swap in a freshly booted engine + its local WAL writer."""
        loop = asyncio.get_running_loop()
        wal = await loop.run_in_executor(
            None, self._open_wal, engine.key_dtype, wal_generation,
            resume_lsn)
        self._index = Index(engine, Index._derive_config(engine))
        self._wal = wal
        self._flushed = [int(f) for f in flushed]
        self.applied_lsn = int(resume_lsn)
        self.generation = int(manifest_generation)
        self._note_progress()
        await loop.run_in_executor(None, self._dump_state)

    def _open_wal(self, key_dtype, generation: int,
                  resume_lsn: int) -> WalWriter:
        return WalWriter(
            self.directory / "wal", key_dtype,
            generation=generation, start_lsn=resume_lsn + 1,
            sync=self._sync_mode)

    async def _teardown_local(self) -> None:
        loop = asyncio.get_running_loop()
        wal, self._wal = self._wal, None
        if wal is not None:
            await loop.run_in_executor(None, wal.close)
        index, self._index = self._index, None
        if index is not None:
            await loop.run_in_executor(None, index.close)

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    async def _ensure_conn(self) -> None:
        if self._conn is not None:
            return
        conn = _Conn(self.host, self.port, timeout=self.timeout,
                     max_frame=self.max_frame)
        await conn.connect()
        self._conn = conn

    async def _drop_conn(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            await conn.close()

    async def _run(self) -> None:
        backoff = 0.05
        while not self._closed:
            try:
                await self._ensure_conn()
                await self._stream()  # returns only via exception
            except asyncio.CancelledError:
                raise
            except _ResyncNeeded:
                self.resyncs += 1
                try:
                    await self._ensure_conn()
                    await self._full_sync()
                    backoff = 0.05
                    continue
                except asyncio.CancelledError:
                    raise
                except Exception:
                    await self._drop_conn()
            except (ReplicaError, ConnectionError, OSError, ProtocolError,
                    TimeoutError, asyncio.TimeoutError):
                await self._drop_conn()
            if self._closed or not self._reconnect:
                break
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2.0, 2.0)

    async def _stream(self) -> None:
        conn = self._conn
        r = await conn.request({
            "op": "repl_subscribe", "from_lsn": self._wal.last_lsn,
        })
        if not isinstance(r, dict) or r.get("mode") != "stream":
            reason = r.get("reason") if isinstance(r, dict) else None
            raise _ResyncNeeded(str(reason or "leader demanded a resync"))
        self.subscriptions += 1
        self.leader_lsn = max(self.leader_lsn, int(r.get("last_lsn", 0)))
        self._note_progress()
        self._ack(force=True)
        # the _closed check matters: wait_for (inside conn.request) can
        # swallow an external cancellation that races the response, so
        # close() cannot rely on CancelledError alone to stop this loop
        while not self._closed:
            push = await conn.pushes.get()
            kind = push.get("kind")
            if kind == "wal":
                await self._apply_push(push)
            elif kind == "hb":
                self.leader_lsn = max(
                    self.leader_lsn, int(push.get("last_lsn", 0)))
                self.leader_generation = int(push.get("generation", 0))
                self._note_progress()
            elif kind == "resync":
                raise _ResyncNeeded("leader evicted our stream position")
            elif kind == "__lost__":
                raise ConnectionResetError(
                    push.get("message", "connection lost"))
            # catching up to the advertised head bypasses the ack rate
            # limit: the leader's lag gauges go to zero promptly
            # instead of waiting out a heartbeat round-trip
            self._ack(force=(kind == "wal"
                             and self.applied_lsn >= self.leader_lsn))
            await self._maybe_dump()

    async def _apply_push(self, push: dict) -> None:
        lsns = push.get("lsn")
        ops = push.get("op")
        shards = push.get("shard")
        keys = push.get("key")
        if not all(isinstance(a, np.ndarray)
                   for a in (lsns, ops, shards, keys)) \
                or not (len(lsns) == len(ops) == len(shards) == len(keys)):
            raise ReplicaError("malformed wal push frame")
        self.bytes_streamed += sum(
            a.nbytes for a in (lsns, ops, shards, keys))
        await asyncio.get_running_loop().run_in_executor(
            None, self._apply_records, lsns, ops, shards, keys)
        self._note_progress()

    def _apply_records(self, lsns, ops, shards, keys) -> None:
        """Append + apply one pushed run (sync; runs in an executor).

        The local WAL append precedes the engine apply, mirroring the
        leader's log-then-acknowledge order; ``tolist()`` round-trips
        uint64/float64 keys exactly.
        """
        wal = self._wal
        index = self._index
        flushed = self._flushed
        for lsn, op, shard, key in zip(
                lsns.tolist(), ops.tolist(), shards.tolist(),
                keys.tolist()):
            if lsn < wal.next_lsn:
                continue  # duplicate after a reconnect race
            if lsn > wal.next_lsn:
                raise _ResyncNeeded(
                    f"gap in the stream (expected LSN {wal.next_lsn}, "
                    f"got {lsn})")
            wal.append(op, shard, key)
            if shard < len(flushed) and lsn <= flushed[shard]:
                self.filtered += 1  # effect already inside the segment
            elif op == OP_INSERT:
                index.insert(key)
            elif op == OP_DELETE:
                try:
                    index.delete(key)
                except KeyError:
                    self.apply_skipped += 1
            else:
                raise ReplicaError(
                    f"unknown opcode {op} at LSN {lsn}")
            self.applied_lsn = lsn
            self.streamed_records += 1

    def _ack(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_ack < self.ack_interval:
            return
        self._last_ack = now
        if self._conn is not None:
            lag = self.lag()
            self._conn.send({
                "op": "repl_ack", "lsn": self.applied_lsn,
                "lag_s": lag.seconds,
            })

    async def _maybe_dump(self) -> None:
        now = time.monotonic()
        if now - self._last_dump < 2.0:
            return
        self._last_dump = now
        await asyncio.get_running_loop().run_in_executor(
            None, self._dump_state)

    def _note_progress(self) -> None:
        if self.applied_lsn >= self.leader_lsn:
            self._behind_since = None
        elif self._behind_since is None:
            self._behind_since = time.monotonic()

    # ------------------------------------------------------------------
    # replica state file
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        return {
            "format": REPLICA_FORMAT_NAME,
            "leader": [self.host, self.port],
            "applied_lsn": self.applied_lsn,
            "leader_lsn": self.leader_lsn,
            "generation": self.generation,
            "bytes_synced": self.bytes_synced,
            "bytes_streamed": self.bytes_streamed,
            "streamed_records": self.streamed_records,
            "filtered": self.filtered,
            "apply_skipped": self.apply_skipped,
            "full_syncs": self.full_syncs,
            "resyncs": self.resyncs,
            "subscriptions": self.subscriptions,
            "updated_unix": time.time(),
        }

    def _dump_state(self) -> None:
        _atomic_write_text(
            self.directory / REPLICA_STATE_NAME,
            json.dumps(self._state_dict(), sort_keys=True, indent=1))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def lag(self) -> ReplicaLag:
        """Staleness vs. the leader's last advertised head."""
        behind = max(0, self.leader_lsn - self.applied_lsn)
        if behind == 0 or self._behind_since is None:
            return ReplicaLag(lsns=behind, seconds=0.0)
        return ReplicaLag(
            lsns=behind, seconds=time.monotonic() - self._behind_since)

    def describe(self) -> dict:
        """Counters + watermarks + lag, one flat dict."""
        out = self._state_dict()
        lag = self.lag()
        out["lag_lsn"] = lag.lsns
        out["lag_s"] = lag.seconds
        out["connected"] = self._conn is not None
        out["keys"] = len(self)
        return out

    async def wait_for_lsn(self, lsn: int, timeout: float = 30.0) -> None:
        """Block until the replica applied ``lsn`` (TimeoutError past
        ``timeout`` seconds)."""
        deadline = time.monotonic() + timeout
        while self.applied_lsn < lsn:
            if self._closed:
                raise ReplicaError("the replica is closed")
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"replica stuck at LSN {self.applied_lsn} < {lsn} "
                    f"after {timeout}s")
            await asyncio.sleep(0.005)

    async def wait_caught_up(self, timeout: float = 30.0) -> int:
        """Block until the replica applied the leader's *current* head
        LSN (asked via ``repl_hello``); returns that LSN."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                await self._ensure_conn()
                hello = await self._conn.request({"op": "repl_hello"})
                head = int(hello["last_lsn"])
                break
            except (ConnectionError, OSError, asyncio.TimeoutError):
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"no leader contact within {timeout}s") from None
                await asyncio.sleep(0.05)
        await self.wait_for_lsn(
            head, timeout=max(0.0, deadline - time.monotonic()))
        return head

    # ------------------------------------------------------------------
    # reads (oracle-exact at applied_lsn)
    # ------------------------------------------------------------------
    def _facade(self) -> Index:
        if self._index is None:
            raise ReplicaError("the replica is closed")
        return self._index

    def lookup(self, q) -> int:
        """Global lower-bound position of ``q`` (leader-exact at
        :attr:`applied_lsn`)."""
        return self._facade().lookup(q)

    def lookup_many(self, queries) -> np.ndarray:
        """Vectorised :meth:`lookup` over a query batch."""
        return self._facade().lookup_many(queries)

    def range(self, lo, hi) -> tuple[int, int]:
        """``[first, last)`` global positions of ``lo <= key < hi``."""
        return self._facade().range(lo, hi)

    def range_many(self, lows, highs):
        """Vectorised :meth:`range` over aligned bound arrays."""
        return self._facade().range_many(lows, highs)

    def count(self, lo, hi) -> int:
        """Cardinality of ``lo <= key < hi``."""
        return self._facade().count(lo, hi)

    def scan(self, lo, hi) -> np.ndarray:
        """Materialised key slice of ``lo <= key < hi``."""
        return self._facade().scan(lo, hi)

    def scan_many(self, lows, highs) -> list[np.ndarray]:
        """Materialised key slices per ``(lo, hi)`` range."""
        return self._facade().scan_many(lows, highs)

    @property
    def keys(self) -> np.ndarray:
        """The replica's live, sorted global key array."""
        return self._facade().keys

    @property
    def key_dtype(self) -> np.dtype:
        """Dtype of the replicated keys."""
        return self._facade().key_dtype

    def __len__(self) -> int:
        return len(self._facade())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Stop streaming, close the local WAL + facade, dump state.

        The directory remains a valid durable directory:
        ``repro.open()`` promotes it to a standalone writable index.
        """
        if self._closed:
            return
        self._closed = True
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
        # drop the connection BEFORE awaiting the task: the wait_for
        # inside _Conn.request can swallow a cancellation that races a
        # response, leaving _run streaming in a "cancelling" state; the
        # __lost__ push from the closing connection unwinds it anyway,
        # and the bounded wait keeps close() finite regardless
        await self._drop_conn()
        if task is not None:
            try:
                await asyncio.wait_for(task, timeout=30.0)
            except (asyncio.CancelledError, Exception):
                pass
        loop = asyncio.get_running_loop()
        wal, self._wal = self._wal, None
        if wal is not None:
            await loop.run_in_executor(None, wal.close)
        await loop.run_in_executor(None, self._dump_state)
        index, self._index = self._index, None
        if index is not None:
            await loop.run_in_executor(None, index.close)

    async def __aenter__(self) -> "ReplicaIndex":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        closed = " closed" if self._closed else ""
        return (f"ReplicaIndex(leader={self.host}:{self.port}, "
                f"applied_lsn={self.applied_lsn}, "
                f"lag={self.lag().lsns}{closed})")


async def follow(addr, directory, *, sync: str = "async",
                 reconnect: bool = True, ack_interval: float = 0.25,
                 timeout: float = 30.0,
                 max_frame: int = DEFAULT_MAX_FRAME) -> ReplicaIndex:
    """Start (or resume) a read replica of the leader at ``addr``.

    ``addr`` is the leader's replication ``(host, port)``
    (``Index.serve(replicate_addr=...)`` or CLI ``replicate``);
    ``directory`` is the replica's local durable directory — empty for
    a first full sync, or a previous :func:`follow` target to resume
    incrementally from its local WAL head.  ``sync`` sets the local
    WAL fsync policy (default ``"async"``: replica durability comes
    from re-syncing, not fsync).  Returns a live
    :class:`ReplicaIndex`; use as an async context manager or
    ``await replica.close()`` when done.
    """
    host, port = addr
    replica = ReplicaIndex(
        host, port, directory, sync=sync, reconnect=reconnect,
        ack_interval=ack_interval, timeout=timeout, max_frame=max_frame)
    try:
        await replica._bootstrap()
    except BaseException:
        await replica.close()
        raise
    return replica
