"""WAL framing, group commit, rotation and torn-tail semantics.

The format contract under test (:mod:`repro.engine.wal`): CRC-framed
records in per-shard lane files, grouped into numbered generations;
readers merge lanes by LSN, tolerate a torn final frame per lane
(crash mid-append), and refuse mid-file corruption (bit rot is not a
crash artifact).
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.wal import (
    OP_DELETE,
    OP_INSERT,
    WAL_SYNC_MODES,
    WalError,
    WalWriter,
    generation_dirname,
    list_generations,
    read_lane,
    read_wal,
)


def make_writer(tmp_path, **kwargs):
    kwargs.setdefault("sync", "group")
    return WalWriter(tmp_path / "wal", np.dtype(np.uint64), **kwargs)


def lane_path(tmp_path, generation, shard):
    return (tmp_path / "wal" / generation_dirname(generation)
            / f"lane-{shard:04d}.wal")


# ----------------------------------------------------------------------
# framing round trips
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip_across_lanes(self, tmp_path):
        with make_writer(tmp_path) as wal:
            expect = []
            for i in range(100):
                op = OP_INSERT if i % 3 else OP_DELETE
                shard = i % 4
                key = (i * 977) % (1 << 42)
                lsn = wal.append(op, shard, key)
                expect.append((lsn, op, shard, key))
            wal.commit()
        records, torn = read_wal(tmp_path / "wal")
        assert not torn
        got = [(r.lsn, r.op, r.shard, int(r.key)) for r in records]
        assert got == expect
        # merged strictly by LSN despite living in four lane files
        assert [r.lsn for r in records] == list(range(1, 101))

    def test_lsns_are_monotonic_and_start_at_start_lsn(self, tmp_path):
        with make_writer(tmp_path, start_lsn=500) as wal:
            assert wal.append(OP_INSERT, 0, 1) == 500
            assert wal.append(OP_INSERT, 1, 2) == 501
            assert wal.last_lsn == 501
            assert wal.next_lsn == 502

    def test_key_dtype_round_trips(self, tmp_path):
        big = (1 << 63) + 12345  # exercises the full uint64 domain
        with make_writer(tmp_path) as wal:
            wal.append(OP_INSERT, 0, big)
        records, _ = read_wal(tmp_path / "wal")
        assert int(records[0].key) == big
        assert records[0].key.dtype == np.dtype(np.uint64)

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from([OP_INSERT, OP_DELETE]),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=(1 << 64) - 1),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, tmp_path_factory, ops):
        tmp_path = tmp_path_factory.mktemp("wal-prop")
        with make_writer(tmp_path) as wal:
            expect = [(wal.append(op, shard, key), op, shard, key)
                      for op, shard, key in ops]
        records, torn = read_wal(tmp_path / "wal")
        assert not torn
        assert [(r.lsn, r.op, r.shard, int(r.key)) for r in records] \
            == expect


# ----------------------------------------------------------------------
# durability bookkeeping
# ----------------------------------------------------------------------
class TestCommit:
    def test_commit_advances_durable_lsn(self, tmp_path):
        wal = make_writer(tmp_path)
        wal.append(OP_INSERT, 0, 1)
        wal.append(OP_INSERT, 0, 2)
        assert wal.durable_lsn == 0
        assert wal.commit() == 2
        assert wal.durable_lsn == 2
        wal.close()

    def test_group_ops_backstop_auto_commits(self, tmp_path):
        wal = make_writer(tmp_path, group_ops=8)
        for i in range(8):
            wal.append(OP_INSERT, 0, i)
        assert wal.durable_lsn == 8  # backstop fired on the 8th append
        wal.close()

    def test_always_mode_commits_every_append(self, tmp_path):
        wal = make_writer(tmp_path, sync="always")
        for i in range(3):
            lsn = wal.append(OP_INSERT, 0, i)
            assert wal.durable_lsn == lsn
        wal.close()

    def test_async_mode_flushes_on_commit(self, tmp_path):
        wal = make_writer(tmp_path, sync="async")
        wal.append(OP_INSERT, 0, 7)
        wal.commit()
        records, torn = read_wal(tmp_path / "wal")
        assert not torn and len(records) == 1

    def test_close_commits_and_rejects_appends(self, tmp_path):
        wal = make_writer(tmp_path)
        wal.append(OP_INSERT, 0, 1)
        wal.close()
        records, _ = read_wal(tmp_path / "wal")
        assert len(records) == 1
        with pytest.raises(WalError, match="closed"):
            wal.append(OP_INSERT, 0, 2)
        wal.close()  # idempotent

    def test_invalid_sync_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sync"):
            make_writer(tmp_path, sync="sometimes")
        assert set(WAL_SYNC_MODES) == {"always", "group", "async"}


# ----------------------------------------------------------------------
# generations
# ----------------------------------------------------------------------
class TestGenerations:
    def test_rotate_and_min_generation_filter(self, tmp_path):
        with make_writer(tmp_path, generation=1) as wal:
            wal.append(OP_INSERT, 0, 10)
            wal.rotate(2)
            assert wal.generation == 2
            wal.append(OP_INSERT, 0, 20)
        assert list_generations(tmp_path / "wal") == [1, 2]
        all_records, _ = read_wal(tmp_path / "wal")
        assert [int(r.key) for r in all_records] == [10, 20]
        tail, _ = read_wal(tmp_path / "wal", min_generation=2)
        assert [int(r.key) for r in tail] == [20]

    def test_rotate_backwards_rejected(self, tmp_path):
        with make_writer(tmp_path, generation=3) as wal:
            with pytest.raises(WalError, match="backwards"):
                wal.rotate(3)

    def test_drop_generations_below(self, tmp_path):
        with make_writer(tmp_path, generation=1) as wal:
            wal.append(OP_INSERT, 0, 1)
            wal.rotate(2)
            wal.append(OP_INSERT, 0, 2)
            wal.rotate(3)
            wal.append(OP_INSERT, 0, 3)
            assert wal.drop_generations_below(3) == 2
        assert list_generations(tmp_path / "wal") == [3]
        records, _ = read_wal(tmp_path / "wal")
        assert [int(r.key) for r in records] == [3]


# ----------------------------------------------------------------------
# crash artifacts
# ----------------------------------------------------------------------
class TestTornTail:
    def write_lane(self, tmp_path, n=5):
        with make_writer(tmp_path, sync="always") as wal:
            for i in range(n):
                wal.append(OP_INSERT, 0, i)
        return lane_path(tmp_path, 1, 0)

    def test_truncated_final_frame_is_a_torn_tail(self, tmp_path):
        path = self.write_lane(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])  # knife through the last frame
        records, torn = read_lane(path)
        assert torn
        assert [int(r.key) for r in records] == [0, 1, 2, 3]

    def test_corrupt_final_frame_is_a_torn_tail(self, tmp_path):
        path = self.write_lane(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte inside the last frame
        path.write_bytes(bytes(blob))
        records, torn = read_lane(path)
        assert torn
        assert [int(r.key) for r in records] == [0, 1, 2, 3]

    def test_mid_file_corruption_is_not_a_crash(self, tmp_path):
        path = self.write_lane(tmp_path)
        blob = bytearray(path.read_bytes())
        # corrupt a payload byte inside the FIRST frame: the intact
        # frames after it prove this is damage, not a torn tail
        frame0_start = len(blob) - 5 * self.FRAME_SIZE
        blob[frame0_start + 10] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(WalError, match="corrupted mid-file"):
            read_lane(path)

    #: 8-byte frame header + (13-byte payload head + 8-byte uint64 key)
    FRAME_SIZE = 8 + 13 + 8

    def test_truncated_header_reads_as_empty_torn_lane(self, tmp_path):
        path = self.write_lane(tmp_path, n=1)
        path.write_bytes(path.read_bytes()[:4])
        records, torn = read_lane(path)
        assert torn and records == []

    def test_wrong_magic_rejected(self, tmp_path):
        path = self.write_lane(tmp_path, n=1)
        blob = bytearray(path.read_bytes())
        blob[0:4] = b"NOPE"
        path.write_bytes(bytes(blob))
        with pytest.raises(WalError, match="bad magic"):
            read_lane(path)

    def test_torn_tail_in_one_lane_keeps_other_lanes(self, tmp_path):
        with make_writer(tmp_path, sync="always") as wal:
            wal.append(OP_INSERT, 0, 100)
            wal.append(OP_INSERT, 1, 200)
            wal.append(OP_INSERT, 0, 300)
        path = lane_path(tmp_path, 1, 0)
        path.write_bytes(path.read_bytes()[:-5])
        records, torn = read_wal(tmp_path / "wal")
        assert torn
        # lane 0 lost its tail record (lsn 3); lane 1 is intact
        assert [(r.lsn, int(r.key)) for r in records] == [(1, 100), (2, 200)]


class TestHeaderCompat:
    def test_dtype_mismatch_between_header_and_reader(self, tmp_path):
        """The lane header carries the key dtype; readers honour it."""
        with WalWriter(tmp_path / "wal", np.dtype(np.int64)) as wal:
            wal.append(OP_INSERT, 0, -5)
        records, _ = read_wal(tmp_path / "wal")
        assert int(records[0].key) == -5
        assert records[0].key.dtype == np.dtype(np.int64)

    def test_future_version_rejected(self, tmp_path):
        path = self.bump_version(tmp_path)
        with pytest.raises(WalError, match="version"):
            read_lane(path)

    @staticmethod
    def bump_version(tmp_path):
        with make_writer(tmp_path, sync="always") as wal:
            wal.append(OP_INSERT, 0, 1)
        path = lane_path(tmp_path, 1, 0)
        blob = bytearray(path.read_bytes())
        blob[4:6] = struct.pack("<H", 99)
        path.write_bytes(bytes(blob))
        return path
