"""Algorithmic (non-learned) range-index baselines of Table 2, plus the
related-work skip list (§5)."""

from .art import ART, DuplicateKeyError
from .btree import BPlusTree
from .fast_tree import FASTree, KeyWidthError
from .rbs import RadixBinarySearch
from .skiplist import SkipList

__all__ = [
    "ART",
    "DuplicateKeyError",
    "BPlusTree",
    "FASTree",
    "KeyWidthError",
    "RadixBinarySearch",
    "SkipList",
]
