"""Concurrent-writer safety for ShardedIndex (ISSUE 3 satellite).

The ROADMAP flagged updates as single-threaded; the engine now carries
an explicit write lock serialising ``insert``/``delete``/``refresh``.
These tests hammer the index from concurrent threads and from
concurrent asyncio writers through the serving layer, then assert the
final key sequence and every lookup against ``np.searchsorted`` — no
silent corruption allowed.  The write-event listener contract
(span/key payloads, registration) is covered here too, since the
events fire under the same lock.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.engine import BatchExecutor, ShardedIndex, WriteEvent
from repro.serve import IndexServer


def build_index(rng, n=2000, backend="gapped", shards=4):
    keys = np.sort(rng.integers(0, 1 << 32, n, dtype=np.uint64))
    return keys, ShardedIndex.build(keys, shards, backend=backend)


def assert_matches_oracle(index: ShardedIndex, expected: np.ndarray) -> None:
    assert len(index) == len(expected)
    assert np.array_equal(index.keys, expected)
    qrng = np.random.default_rng(0)
    qs = np.concatenate([
        qrng.choice(expected, 200),
        qrng.integers(0, 1 << 33, 100, dtype=np.uint64),
    ])
    got = BatchExecutor(index).lookup_batch(qs)
    assert np.array_equal(got, np.searchsorted(expected, qs, side="left"))


@pytest.mark.parametrize("backend", ["static", "gapped", "fenwick"])
def test_concurrent_threaded_inserts_serialize(rng, backend):
    keys, index = build_index(rng, backend=backend)
    per_thread = 60
    value_sets = [
        rng.integers(0, 1 << 32, per_thread, dtype=np.uint64)
        for _ in range(6)
    ]
    errors: list[Exception] = []

    def writer(values):
        try:
            for v in values:
                index.insert(v)
        except Exception as exc:  # pragma: no cover - the failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(vs,)) for vs in value_sets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    expected = np.sort(np.concatenate([keys] + value_sets))
    assert_matches_oracle(index, expected)


def test_concurrent_mixed_writers_serialize(rng):
    keys, index = build_index(rng, backend="fenwick")
    inserts = rng.integers(0, 1 << 32, 120, dtype=np.uint64)
    # delete distinct pre-existing keys, disjoint across threads
    unique = np.unique(keys)
    victims = unique[rng.choice(len(unique), 120, replace=False)]
    errors: list[Exception] = []

    def run(fn, values):
        try:
            for v in values:
                fn(v)
        except Exception as exc:  # pragma: no cover - the failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(index.insert, inserts[:60])),
        threading.Thread(target=run, args=(index.insert, inserts[60:])),
        threading.Thread(target=run, args=(index.delete, victims[:60])),
        threading.Thread(target=run, args=(index.delete, victims[60:])),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    expected = keys.copy()
    for v in victims:
        expected = np.delete(expected, np.searchsorted(expected, v))
    expected = np.sort(np.concatenate([expected, inserts]))
    assert_matches_oracle(index, expected)


def test_write_lock_blocks_second_writer(rng):
    """The mutation path really does wait on the write lock."""
    keys, index = build_index(rng)
    index._write_lock.acquire()
    try:
        t = threading.Thread(target=index.insert, args=(np.uint64(123),))
        t.start()
        time.sleep(0.05)
        assert t.is_alive()  # parked on the lock, not corrupting state
    finally:
        index._write_lock.release()
    t.join(timeout=5)
    assert not t.is_alive()
    assert len(index) == len(keys) + 1


def test_concurrent_async_writers_through_server(rng):
    keys, index = build_index(rng, backend="gapped")
    values = rng.integers(0, 1 << 32, 200, dtype=np.uint64)

    async def scenario():
        async with IndexServer(index) as server:
            await asyncio.gather(*[server.insert(v) for v in values])
            # reads interleaved with nothing pending still agree
            q = keys[500]
            expected = np.sort(np.concatenate([keys, values]))
            assert await server.lookup(q) == int(
                np.searchsorted(expected, q, side="left")
            )
            return expected

    expected = asyncio.run(scenario())
    assert_matches_oracle(index, expected)


# ----------------------------------------------------------------------
# write-event contract
# ----------------------------------------------------------------------
def test_write_events_carry_key_and_span(rng):
    keys, index = build_index(rng, backend="static")
    events: list[WriteEvent] = []
    index.add_write_listener(events.append)

    v = np.uint64(keys[1000]) + np.uint64(1)
    s = index.insert(v)
    index.delete(v)
    index.refresh()
    assert [e.kind for e in events] == ["insert", "delete", "refresh"]
    for event in events[:2]:
        assert event.shard == s
        assert event.key == v
        lo, hi = event.span
        assert lo <= v and (hi is None or v <= hi)
        assert event.overlaps(v, v + np.uint64(1))
        assert not event.overlaps(np.uint64(0), lo)  # below the span
    assert events[2].span is None
    assert not events[2].overlaps(0, 1 << 40)

    index.remove_write_listener(events.append)
    index.insert(v)
    assert len(events) == 3  # detached listeners see nothing


def test_shard_span_partitions_the_key_domain(rng):
    keys, index = build_index(rng, shards=4)
    spans = [index.shard_span(s) for s in range(index.num_shards)]
    live = [sp for sp in spans if sp is not None]
    assert live[0][0] == keys[0]
    assert live[-1][1] is None
    for (lo, hi), (nxt_lo, _) in zip(live, live[1:]):
        assert hi == nxt_lo  # inclusive-upper meets the next shard's min
        assert lo < nxt_lo
    # a drained shard reports no span
    tiny = ShardedIndex.build(np.asarray([1, 2], dtype=np.uint64), 2)
    tiny.delete(np.uint64(1))
    assert tiny.shard_span(0) is None


# ----------------------------------------------------------------------
# runtime lock sanitizer (repro.analysis.sanitizers)
# ----------------------------------------------------------------------
class TestLockSanitizer:
    """The RPR2xx invariants, enforced at runtime instead of parse time."""

    def test_clean_under_concurrent_writers(self, rng):
        from repro.analysis import LockSanitizer

        keys, index = build_index(rng)
        san = LockSanitizer.install(index)
        try:
            fresh = np.setdiff1d(
                rng.integers(0, 1 << 32, 800, dtype=np.uint64), keys)

            def writer(chunk):
                for k in chunk:
                    index.insert(k)

            threads = [threading.Thread(target=writer, args=(c,))
                       for c in np.array_split(fresh, 4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert san.violations == 0
            assert_matches_oracle(
                index, np.sort(np.concatenate([keys, fresh])))
        finally:
            san.uninstall()

    def test_event_outside_lock_raises(self, rng):
        from repro.analysis import LockSanitizer, SanitizerError

        _, index = build_index(rng, n=64)
        # under REPRO_SANITIZE=1 install_global() already attached a
        # sanitizer whose listener would fire (and raise) before ours;
        # detach it so the violation counter below is deterministic
        global_san = getattr(index, "_lock_sanitizer", None)
        if global_san is not None:
            global_san.uninstall()
        san = LockSanitizer.install(index)
        try:
            with pytest.raises(SanitizerError, match="without holding"):
                index._notify(WriteEvent("insert", 0, np.uint64(1)))
            assert san.violations == 1
            # a real insert (which holds the lock) stays clean
            index.insert(np.uint64(3))
        finally:
            san.uninstall()
        # after uninstall the original lock object is restored
        index.insert(np.uint64(5))

    def test_wrong_shard_lock_raises(self, rng):
        # shared engine mode lets a writer mutate shard content, but
        # only under *that shard's* own lock: emitting a shard-A event
        # while holding shard B's lock must trip the sanitizer
        from repro.analysis import LockSanitizer, SanitizerError

        _, index = build_index(rng, n=512, shards=4)
        global_san = getattr(index, "_lock_sanitizer", None)
        if global_san is not None:
            global_san.uninstall()
        san = LockSanitizer.install(index)
        try:
            with index._write_lock.shared():
                with index.shards[1].lock:  # the *wrong* shard's lock
                    with pytest.raises(SanitizerError,
                                       match="without holding"):
                        index._notify(WriteEvent("insert", 0, np.uint64(7)))
            assert san.violations == 1
            # the right shard's lock under shared mode stays clean
            with index._write_lock.shared():
                with index.shards[0].lock:
                    index._notify(WriteEvent("insert", 0, np.uint64(7)))
            assert san.violations == 1
        finally:
            san.uninstall()

    def test_keys_property_locks_against_writers(self, rng):
        # regression for the race fixed in this PR: ShardedIndex.keys
        # concatenated shard arrays without the write lock, so a reader
        # could interleave with a shard split mid-copy
        from repro.analysis import LockSanitizer

        keys, index = build_index(rng, n=1000)
        san = LockSanitizer.install(index)
        try:
            # re-entrant read while the lock is already held (RLock)
            with index._write_lock:
                assert len(index.keys) == len(keys)

            stop = threading.Event()
            errors = []

            def reader():
                while not stop.is_set():
                    snap = index.keys
                    if not np.all(snap[:-1] <= snap[1:]):
                        errors.append("unsorted snapshot")

            t = threading.Thread(target=reader)
            t.start()
            try:
                for k in rng.integers(0, 1 << 32, 500, dtype=np.uint64):
                    index.insert(k)
            finally:
                stop.set()
                t.join()
            assert not errors and san.violations == 0
        finally:
            san.uninstall()


# ----------------------------------------------------------------------
# per-shard write locks (ISSUE 9): distinct shards really overlap
# ----------------------------------------------------------------------
def _fresh_key_in_shard(index, keys, rng, shard):
    """A key routed to ``shard`` that is not already stored."""
    for _ in range(20_000):
        k = np.uint64(rng.integers(0, 1 << 32, dtype=np.uint64))
        if index.route(k) == shard and not np.any(keys == k):
            return k
    raise AssertionError(f"no fresh key found for shard {shard}")


class _ParkedInsert:
    """Park a writer *inside* ``shard.insert`` (shared mode + shard lock
    held) so tests can probe what the rest of the engine may do
    meanwhile."""

    def __init__(self, index, shard_id, key):
        self.index = index
        self.shard = index.shards[shard_id]
        self.key = key
        self.entered = threading.Event()
        self.release = threading.Event()
        self.thread = threading.Thread(target=index.insert, args=(key,))

    def __enter__(self):
        orig = self.shard.insert

        def parked(key):
            self.entered.set()
            assert self.release.wait(timeout=10)
            return orig(key)

        self.shard.insert = parked
        self.thread.start()
        assert self.entered.wait(timeout=10)
        return self

    def __exit__(self, *exc):
        self.release.set()
        self.thread.join(timeout=10)
        del self.shard.insert  # restore the class method
        assert not self.thread.is_alive()


class TestPerShardLocking:
    """The engine lock's shared mode: per-shard writers overlap, while
    structural work still stops the world."""

    def test_distinct_shard_writers_overlap(self, rng):
        keys, index = build_index(rng, n=4000, shards=4)
        ka = _fresh_key_in_shard(index, keys, rng, 0)
        kb = _fresh_key_in_shard(index, keys, rng, 3)
        with _ParkedInsert(index, 0, ka) as parked:
            # writer A is wedged inside shard 0 holding shared engine
            # mode plus shard 0's lock; a shard-3 writer must not wait
            done = threading.Event()

            def other_writer():
                index.insert(kb)
                done.set()

            t = threading.Thread(target=other_writer)
            t.start()
            assert done.wait(timeout=10), (
                "a shard-3 insert blocked behind a parked shard-0 insert"
            )
            t.join(timeout=10)
            assert parked.thread.is_alive()  # A is still parked
        expected = np.sort(np.concatenate(
            [keys, np.asarray([ka, kb], dtype=np.uint64)]))
        assert_matches_oracle(index, expected)

    def test_structural_work_waits_for_shared_writers(self, rng):
        # exclusive mode (splits, merges, refreshes, checkpoints) must
        # serialise against every in-flight per-shard writer
        keys, index = build_index(rng, n=4000, shards=4)
        ka = _fresh_key_in_shard(index, keys, rng, 1)
        with _ParkedInsert(index, 1, ka):
            assert not index._write_lock.acquire(timeout=0.2), (
                "exclusive mode granted while a shared writer was live"
            )
        # the parked writer has drained: exclusive mode is available now
        assert index._write_lock.acquire(timeout=10)
        index._write_lock.release()
        assert_matches_oracle(
            index,
            np.sort(np.concatenate([keys, np.asarray([ka], np.uint64)])),
        )

    def test_cross_shard_split_serialises_with_shared_writer(self, rng):
        # a split-bound insert abandons the shared fast path and queues
        # for exclusive mode; it must wait out a parked shared writer
        # and still split correctly afterwards
        keys, index = build_index(rng, n=4000, shards=4)
        ka = _fresh_key_in_shard(index, keys, rng, 0)
        kc = _fresh_key_in_shard(index, keys, rng, 2)
        shards_before = index.num_shards
        with _ParkedInsert(index, 0, ka) as parked:
            # make any further insert split-due *after* A got parked
            index._target_shard_keys = 1
            done = threading.Event()

            def splitter():
                index.insert(kc)
                done.set()

            t = threading.Thread(target=splitter)
            t.start()
            time.sleep(0.1)
            assert not done.is_set(), (
                "a structural (split) insert ran while a shared writer "
                "held the engine lock"
            )
            assert parked.thread.is_alive()
        assert done.wait(timeout=10)
        t.join(timeout=10)
        assert index.num_shards > shards_before  # the split happened
        expected = np.sort(np.concatenate(
            [keys, np.asarray([ka, kc], dtype=np.uint64)]))
        assert_matches_oracle(index, expected)

    def test_upgrade_is_refused(self, rng):
        from repro.engine.locks import LockUpgradeError

        _, index = build_index(rng, n=64)
        with index._write_lock.shared():
            with pytest.raises(LockUpgradeError):
                index._write_lock.acquire()

    def test_hammer_per_shard_writers_with_sanitizer(self, rng):
        # many threads, disjoint key ranges → mostly distinct shards,
        # with the sanitizer auditing every emitted event's locks
        from repro.analysis import LockSanitizer

        keys, index = build_index(rng, n=4000, shards=4)
        global_san = getattr(index, "_lock_sanitizer", None)
        if global_san is not None:
            global_san.uninstall()
        san = LockSanitizer.install(index)
        try:
            fresh = np.setdiff1d(
                rng.integers(0, 1 << 32, 600, dtype=np.uint64), keys)
            fresh = fresh[rng.permutation(len(fresh))]
            errors: list[Exception] = []

            def writer(chunk):
                try:
                    for k in chunk:
                        index.insert(k)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=writer, args=(c,))
                       for c in np.array_split(fresh, 6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert san.violations == 0
            assert_matches_oracle(
                index, np.sort(np.concatenate([keys, fresh])))
        finally:
            san.uninstall()
