"""repro — a reproduction of *Shift-Table: A Low-latency Learned Index for
Range Queries using Model Correction* (Hadian & Heinis, EDBT 2021).

Public API tour
---------------
The front door is the :class:`Index` facade — build, query, mutate,
save/reopen and serve through one handle:

>>> import numpy as np
>>> import repro
>>> keys = np.sort(np.random.default_rng(0).integers(0, 1 << 40, 100_000))
>>> index = repro.Index.build(keys, repro.IndexConfig(num_shards=4))
>>> int(index.lookup(keys[123])) == int(np.searchsorted(keys, keys[123]))
True
>>> bool(np.array_equal(index.scan(keys[10], keys[20]), keys[10:20]))
True

``index.save(path)`` / ``repro.open(path)`` persist and reopen the
whole engine without refitting; ``index.serve()`` returns the asyncio
serving front end.  The paper-layer primitives stay importable for
fine-grained work:

>>> from repro import SortedData, InterpolationModel, ShiftTable, CorrectedIndex
>>> data = SortedData(keys)
>>> model = InterpolationModel(keys)          # the paper's dummy IM model
>>> layer = ShiftTable.build(keys, model)     # one-pass correction layer
>>> paper_index = CorrectedIndex(data, model, layer)
>>> int(paper_index.lookup(keys[123])) == int(index.lookup(keys[123]))
True

Subpackages: ``repro.core`` (Shift-Table, cost model, tuner),
``repro.models`` (IM, linear, RMI, RadixSpline, PGM), ``repro.search``
(binary/linear/exponential/interpolation/TIP), ``repro.algorithmic``
(ART, FAST, RBS, B+tree), ``repro.hardware`` (the simulated memory
hierarchy), ``repro.datasets`` (SOSD generators and surrogates),
``repro.bench`` (the experiment harness behind every table and figure),
``repro.engine`` (sharded vectorised batch engine with updatable shard
backends and whole-engine persistence), ``repro.serve`` (asyncio
serving front end: micro-batching, write-coherent result caching,
telemetry), ``repro.net`` (framed TCP protocol + shared-memory read
workers), ``repro.replica`` (leader/follower replication: checkpoint
shipping + WAL-tail streaming read replicas).
"""

from .api import Index, IndexConfig, open
from .core import (
    CompactShiftTable,
    CorrectedIndex,
    FenwickTree,
    LatencyCurve,
    ShiftTable,
    SortedData,
    UpdatableCorrectedIndex,
    expected_error,
    latency_with_layer,
    latency_without_layer,
    measure_latency_curve,
    tune,
    tune_radix_spline,
    tune_rmi,
)
from .hardware import MachineSpec, MemoryHierarchy, SimTracker
from .models import (
    CDFModel,
    InterpolationModel,
    LinearModel,
    PGMModel,
    RadixSplineModel,
    RMIModel,
)

__version__ = "1.1.0"

__all__ = [
    "Index",
    "IndexConfig",
    "open",
    "ShiftTable",
    "CompactShiftTable",
    "CorrectedIndex",
    "SortedData",
    "UpdatableCorrectedIndex",
    "FenwickTree",
    "LatencyCurve",
    "measure_latency_curve",
    "expected_error",
    "latency_with_layer",
    "latency_without_layer",
    "tune",
    "tune_rmi",
    "tune_radix_spline",
    "CDFModel",
    "InterpolationModel",
    "LinearModel",
    "RMIModel",
    "RadixSplineModel",
    "PGMModel",
    "MachineSpec",
    "MemoryHierarchy",
    "SimTracker",
    "__version__",
]
