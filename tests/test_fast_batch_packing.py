"""Vectorised batch lookups and in-memory entry packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compact import CompactShiftTable
from repro.core.corrected_index import CorrectedIndex
from repro.core.records import SortedData
from repro.core.shift_table import ShiftTable, pack_layer_arrays
from repro.datasets import load
from repro.models import InterpolationModel, RadixSplineModel, RMIModel

from helpers import sorted_uint_arrays

N = 30_000


def queries_mixed(keys, count=800, seed=3):
    rng = np.random.default_rng(seed)
    lo, hi = int(keys.min()), int(keys.max())
    dom = (lo + (rng.random(count) * max(hi - lo, 1)).astype(np.uint64)).astype(
        keys.dtype
    )
    return np.concatenate([rng.choice(keys, count), dom])


@pytest.mark.parametrize("dataset", ["face64", "wiki64", "logn32"])
def test_fast_batch_matches_scalar(dataset):
    keys = load(dataset, N, seed=111)
    data = SortedData(keys)
    model = InterpolationModel(keys)
    index = CorrectedIndex(data, model, ShiftTable.build(keys, model))
    qs = queries_mixed(keys)
    fast = index.lookup_batch_fast(qs)
    assert np.array_equal(fast, data.lower_bound_batch(qs))


def test_fast_batch_nonmonotone_model_still_exact():
    keys = load("face64", N, seed=111)
    data = SortedData(keys)
    model = RMIModel(keys, num_leaves=128, root="cubic")
    index = CorrectedIndex(data, model, ShiftTable.build(keys, model))
    qs = queries_mixed(keys, count=400)
    assert np.array_equal(index.lookup_batch_fast(qs),
                          data.lower_bound_batch(qs))


def test_fast_batch_falls_back_without_r_layer():
    keys = load("wiki64", N, seed=111)
    data = SortedData(keys)
    model = InterpolationModel(keys)
    for layer in (None, CompactShiftTable.build(keys, model)):
        index = CorrectedIndex(data, model, layer)
        qs = queries_mixed(keys, count=150)
        assert np.array_equal(index.lookup_batch_fast(qs),
                              data.lower_bound_batch(qs))


@settings(max_examples=40, deadline=None)
@given(keys=sorted_uint_arrays(min_size=2, max_size=250), seed=st.integers(0, 99))
def test_property_fast_batch(keys, seed):
    data = SortedData(keys)
    model = InterpolationModel(keys)
    index = CorrectedIndex(data, model, ShiftTable.build(keys, model))
    qs = queries_mixed(keys, count=24, seed=seed)
    assert np.array_equal(index.lookup_batch_fast(qs),
                          data.lower_bound_batch(qs))


def test_packing_preserves_values_and_lookups():
    keys = load("osmc64", N, seed=111)
    data = SortedData(keys)
    model = RadixSplineModel(keys, epsilon=32, radix_bits=12)
    layer = ShiftTable.build(keys, model)
    deltas_before = layer.deltas.astype(np.int64).copy()
    widths_before = layer.widths.astype(np.int64).copy()
    pack_layer_arrays(layer)
    assert layer.deltas.dtype.itemsize * 2 == layer.entry_bytes
    assert np.array_equal(layer.deltas.astype(np.int64), deltas_before)
    assert np.array_equal(layer.widths.astype(np.int64), widths_before)
    index = CorrectedIndex(data, model, layer)
    qs = queries_mixed(keys, count=300)
    assert np.array_equal(index.lookup_batch(qs), data.lower_bound_batch(qs))


def test_packing_shrinks_host_memory():
    keys = load("wiki64", N, seed=111)
    model = InterpolationModel(keys)
    layer = ShiftTable.build(keys, model)
    before = layer.deltas.nbytes + layer.widths.nbytes
    pack_layer_arrays(layer)
    after = layer.deltas.nbytes + layer.widths.nbytes
    assert after < before
    assert after == layer.size_bytes()
