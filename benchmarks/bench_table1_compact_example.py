"""T1 — Table 1: the compact Shift-Table worked example (exact match).

Rebuilds the paper's M=30 layer over the 100-key example index and prints
every row of Table 1.  This is the one experiment where our cells must
equal the paper's **exactly** — and they do.
"""

from conftest import run_once

from repro.bench.experiments import table1_compact_example
from repro.bench.reporting import format_table


def test_table1_compact_example(benchmark):
    result = run_once(benchmark, table1_compact_example)

    headers = ["row"] + [str(i) for i in result["index"]]
    rows = [
        ["key (x)"] + result["key"],
        ["Predicted index"] + result["predicted"],
        ["Error before correction"] + result["error_before"],
        ["Partition (k)"] + result["partition"],
        ["Mean drift"] + result["mean_drift"],
        ["Prediction after correction"] + result["corrected"],
        ["Error after correction"] + result["error_after"],
    ]
    print()
    print(format_table(headers, rows, title="Table 1 (M=30, N=100)"))

    for field in ("predicted", "error_before", "corrected", "error_after"):
        assert result[field] == result[f"paper_{field}"], field
    drift = dict(zip(result["partition"], result["mean_drift"]))
    assert drift == result["paper_mean_drift_by_partition"]
    print("every cell matches the paper exactly")
    benchmark.extra_info["table1"] = {
        k: v for k, v in result.items() if not k.startswith("paper_")
    }
