"""Compiled hot-path kernels with a guaranteed pure-numpy fallback.

The batch pipeline (``predict → correct → bounded-search``) has two
interchangeable implementations of every kernel:

* **numba** — per-lane loops compiled with ``@njit(cache=True,
  nogil=True)`` (:mod:`~repro.kernels.cpu` source compiled by
  :mod:`~repro.kernels.numba_backend`); ``nogil`` gives the
  ``BatchExecutor`` thread pool real CPU parallelism;
* **numpy** — the original lane-parallel array passes
  (:mod:`~repro.kernels.numpy_impl`), always available, bit-identical.

Which one is live is decided once, here, and recorded in
:data:`REGISTRY` (a :class:`~repro.kernels.registry.KernelRegistry`) so
backends, sanitizers, the linter and the benchmarks can introspect and
force the choice:

>>> from repro.kernels import REGISTRY, kernel_mode, set_kernel_mode
>>> kernel_mode() in ("numba", "numpy")
True
>>> set_kernel_mode("numpy")      # force the fallback (parity baselines)
'numpy'
>>> set_kernel_mode("auto")       # back to the import-time pick
... # doctest: +SKIP

``REPRO_KERNELS=auto|numba|numpy`` seeds the mode at import time.
Requesting ``numba`` without numba installed raises
:class:`~repro.kernels.registry.KernelUnavailableError` from
:func:`set_kernel_mode` (CLI ``--kernels=numba``) but only warns when it
comes from the environment seed.
"""

from __future__ import annotations

import os
import warnings

from . import cpu, numpy_impl
from .registry import (
    KERNEL_MODES,
    KernelEntry,
    KernelRegistry,
    KernelUnavailableError,
)

try:
    from . import numba_backend

    numba_available = True
except ImportError:  # numba not in this environment: fallback only
    numba_backend = None  # type: ignore[assignment]
    numba_available = False

REGISTRY = KernelRegistry(numba_available=numba_available)

#: (registry name, function name shared by all backend modules, summary)
_KERNELS = (
    ("search.bounded", "bounded_search",
     "bounded lower bound per lane (pre-clipped windows)"),
    ("search.validated", "validated_search",
     "bounded search + §3.8 edge-validation fallback"),
    ("predict.interpolation", "predict_interpolation",
     "IM model: (key - min) * scale"),
    ("predict.affine", "predict_affine",
     "least-squares line: slope * key + intercept"),
    ("predict.rmi_linear", "predict_rmi_linear",
     "RMI, linear root: leaf select + leaf line"),
    ("predict.rmi_cubic", "predict_rmi_cubic",
     "RMI, cubic root: leaf select + leaf line"),
    ("predict.rmi_radix_signed", "predict_rmi_radix_signed",
     "RMI, radix root over signed keys"),
    ("predict.rmi_radix_unsigned", "predict_rmi_radix_unsigned",
     "RMI, radix root over uint64 keys (no int64 wrap)"),
    ("predict.radix_spline", "predict_radix_spline",
     "RadixSpline: segment lower bound + interpolation"),
    ("fused.window_search", "fused_window_search",
     "R-mode: partition + window + validated search in one pass"),
    ("fused.point_search", "fused_point_search",
     "S-mode: drift correction + ±radius validated search"),
    ("fused.leaf_bounds_search", "fused_leaf_bounds_search",
     "bare RMI: per-leaf error bounds + validated search"),
    ("fused.const_bounds_search", "fused_const_bounds_search",
     "bare RS/PGM: constant ±ε window + validated search"),
)

for _name, _attr, _doc in _KERNELS:
    REGISTRY.register(
        _name,
        numpy_impl=getattr(numpy_impl, _attr),
        numba_impl=(
            getattr(numba_backend, _attr) if numba_backend is not None
            else None
        ),
        description=_doc,
        python_impl=getattr(cpu, _attr),
    )


def kernel_mode() -> str:
    """The backend actually serving kernel calls (``numba``/``numpy``)."""
    return REGISTRY.effective_mode()


def set_kernel_mode(mode: str, strict: bool = True) -> str:
    """Switch the live backend process-wide; returns the effective mode."""
    return REGISTRY.set_mode(mode, strict=strict)


def describe_kernels() -> list[dict[str, object]]:
    """One introspection row per registered kernel."""
    return REGISTRY.describe()


_env_mode = os.environ.get("REPRO_KERNELS", "").strip().lower()
if _env_mode:
    if _env_mode in KERNEL_MODES:
        REGISTRY.set_mode(_env_mode, strict=False)
    else:
        warnings.warn(
            f"REPRO_KERNELS={_env_mode!r} is not one of {KERNEL_MODES}; "
            "keeping 'auto'",
            RuntimeWarning,
        )

__all__ = [
    "KERNEL_MODES",
    "KernelEntry",
    "KernelRegistry",
    "KernelUnavailableError",
    "REGISTRY",
    "cpu",
    "describe_kernels",
    "kernel_mode",
    "numba_available",
    "numba_backend",
    "numpy_impl",
    "set_kernel_mode",
]
