"""Vectorised bounded batch search — the engine's last-mile hot path.

The scalar query path (Algorithm 1) resolves one window at a time with
:func:`~repro.search.local.bounded_local_search`.  The batch engine
instead carries *arrays* of per-query windows and runs a lane-parallel
binary search: every numpy pass halves all still-open windows at once, so
a batch resolves in ``O(log max_window)`` vectorised passes regardless of
batch size — no per-query Python loop anywhere.

:func:`validated_lower_bound_batch` layers the §3.8 edge validation on
top: lanes whose result is pinned to a window edge that does not actually
bracket the query (non-monotone models, merged partitions, S-mode point
estimates) are re-resolved with a full-array ``searchsorted``.  That
fallback returns the exact global lower bound, so batch results are
always element-wise identical to the scalar path's answers.
"""

from __future__ import annotations

import numpy as np


def bounded_lower_bound_batch(
    data: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Per-lane lower bound of ``queries[i]`` within ``[lo[i], hi[i])``.

    ``data`` must be sorted ascending; ``lo``/``hi`` must already be
    clipped to ``[0, len(data)]``.  Returns ``hi[i]`` for lanes whose
    window contains no element ``>= queries[i]`` (including empty
    windows), exactly like the scalar ``lower_bound``.
    """
    lo = np.asarray(lo, dtype=np.int64).copy()
    hi = np.asarray(hi, dtype=np.int64).copy()
    if lo.size == 0:
        return lo
    while True:
        active = lo < hi
        if not active.any():
            return lo
        mid = (lo + hi) >> 1
        # inactive lanes probe index 0 (masked out below) so fancy
        # indexing never reads past the array
        probe = np.where(active, mid, 0)
        go_right = active & (data[probe] < queries)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)


def validated_lower_bound_batch(
    data: np.ndarray,
    queries: np.ndarray,
    starts: np.ndarray,
    widths: np.ndarray,
) -> np.ndarray:
    """Batch window search with §3.8 edge validation (exact results).

    Each lane searches its window ``[starts[i], starts[i]+widths[i]]``;
    lanes pinned to a violated edge (the answer provably lies outside the
    window) fall back to a full-array lower bound.  For guaranteed
    R-mode windows over a monotone model the fallback never fires and
    this is a pure bounded search.
    """
    n = len(data)
    queries = np.asarray(queries)  # repro: noqa[RPR101] — inputs are shard-routed slices already cast via normalize_query_dtype
    lo = np.clip(np.asarray(starts, dtype=np.int64), 0, n)
    hi = np.clip(np.asarray(starts, dtype=np.int64) + widths + 1, lo, n)
    result = bounded_lower_bound_batch(data, queries, lo, hi)
    if result.size == 0:
        return result
    # left edge: pinned at the window start, but the predecessor already
    # satisfies >= q, so the true lower bound is further left
    left = (result == lo) & (lo > 0)
    if left.any():
        left &= data[np.maximum(lo - 1, 0)] >= queries
    # right edge: exhausted the window, but the next record is still < q
    right = (result == hi) & (hi < n)
    if right.any():
        right &= data[np.minimum(hi, n - 1)] < queries
    violated = left | right
    if violated.any():
        result[violated] = np.searchsorted(
            data, queries[violated], side="left"
        )
    return result
