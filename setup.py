"""Legacy setup shim: this offline environment lacks the `wheel` package,
so editable installs must use setuptools' develop path instead of PEP 517.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
