"""A lab tour of the simulated memory hierarchy (the §2 argument, live).

The paper's whole motivation is cache behaviour: binary search keeps its
hot midpoints cached (§2.2, Figure 1b) while a learned index's last-mile
search runs over cold memory (§2.1, Figure 1a).  This example makes both
effects visible with the simulator: per-level hit counts for binary
search at increasing depths, the cost asymmetry of the same access
pattern warm vs cold, and why one Shift-Table probe costs a flat ~36 ns.

Run:  python examples/cache_behavior_lab.py
"""

import numpy as np

from repro.core.analyze import analyze_layer, format_report
from repro.core.records import SortedData
from repro.core.shift_table import ShiftTable
from repro.datasets import load
from repro.hardware.hierarchy import MemoryHierarchy
from repro.hardware.machine import MachineSpec
from repro.hardware.tracker import SimTracker
from repro.models.interpolation import InterpolationModel
from repro.search.binary import lower_bound


def main() -> None:
    n = 500_000
    keys = load("face64", n)
    data = SortedData(keys, name="face64")
    machine = MachineSpec.paper().scaled_for(n, data.record_bytes)
    print(f"simulated machine: L1={machine.l1_bytes//1024}KB "
          f"L2={machine.l2_bytes//1024}KB L3={machine.l3_bytes//1024}KB, "
          f"DRAM={machine.dram_ns:.0f}ns (scaled for {n:,} keys)")

    # ---- Figure 1b: binary search's hot top levels stay cached --------
    hierarchy = MemoryHierarchy(machine)
    tracker = SimTracker(hierarchy)
    rng = np.random.default_rng(0)
    warm = rng.choice(keys, 2000)
    for q in warm:
        lower_bound(keys, data.region, tracker, q)
    hierarchy.reset_stats()
    measured = rng.choice(keys, 500)
    for q in measured:
        lower_bound(keys, data.region, tracker, q)
    s = hierarchy.stats
    per = len(measured)
    print("\nbinary search, steady state (per lookup):")
    print(f"  accesses {s.accesses/per:5.1f} | L1 hits {s.l1_hits/per:5.1f} "
          f"| L2 {s.l2_hits/per:4.1f} | L3 {s.l3_hits/per:4.1f} "
          f"| DRAM {s.dram_accesses/per:4.1f}")
    print(f"  -> the first ~{int(s.l1_hits/per + s.l2_hits/per + s.l3_hits/per)} "
          f"bisection steps ride the cache (Figure 1b); only the deep "
          f"steps pay DRAM")

    # ---- the same pattern cold: every step is a miss -------------------
    cold = MemoryHierarchy(machine)
    cold_tracker = SimTracker(cold)
    lower_bound(keys, data.region, cold_tracker, int(measured[0]))
    print(f"\none COLD binary search: {cold.stats.total_ns:.0f} ns "
          f"({cold.stats.dram_accesses} DRAM misses) — vs "
          f"{s.total_ns/per:.0f} ns warm")

    # ---- the Shift-Table probe: one flat DRAM access -------------------
    model = InterpolationModel(keys)
    layer = ShiftTable.build(keys, model)
    probe = MemoryHierarchy(machine)
    probe_tracker = SimTracker(probe)
    layer.window(model.predict_pos(int(measured[0])), probe_tracker)
    print(f"\none Shift-Table probe: {probe.stats.total_ns:.0f} ns "
          f"(paper §4.1: 'around 40ns') — the layer is too big to cache, "
          f"but needs exactly one touch")

    # ---- §3.6/§3.7 layer analysis --------------------------------------
    print("\nlayer analysis (§3.6/§3.7):")
    print(format_report(analyze_layer(layer)))


if __name__ == "__main__":
    main()
