#!/usr/bin/env python
"""Whole-engine persistence: build → save → reopen (fresh process) → serve.

The PR-5 acceptance drive: an auto-tuned index over 1M keys is built
and saved; a **fresh Python process** reopens it with ``repro.open``
(``build_info()["source"] == "loaded"`` — nothing refits) and serves an
oracle-verified mixed lookup / range / scan / insert / delete workload
through ``index.serve()`` with zero mismatches.  Reopening must be at
least ``--min-ratio`` (default 10×) faster than the original build —
the point of shipping the artifact instead of the build recipe.

    PYTHONPATH=src python benchmarks/bench_persist.py            # full
    PYTHONPATH=src python benchmarks/bench_persist.py --smoke    # CI

The default dataset is ``face64`` (a real-world-shaped surrogate):
model fitting is what makes learned-index builds expensive, and easy
synthetic data would understate the build side of the ratio.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"

try:
    import repro
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(SRC))
    import repro

import numpy as np  # noqa: E402  (after the path fallback, like repro)


def serve_verified_workload(index, seed: int, rounds: int,
                            reads_per_round: int) -> dict:
    """Serve a mixed workload, verifying every answer; returns counters."""
    import asyncio

    async def main() -> dict:
        rng = np.random.default_rng(seed)
        oracle = index.keys.copy()
        served = 0
        mismatches = 0
        async with index.serve(max_batch=128) as server:
            for _ in range(rounds):
                queries = np.concatenate([
                    rng.choice(oracle, reads_per_round // 2),
                    rng.integers(0, 1 << 41, reads_per_round // 2,
                                 dtype=np.uint64),
                ])
                got = await asyncio.gather(
                    *[server.lookup(q) for q in queries]
                )
                want = np.searchsorted(oracle, queries, side="left")
                mismatches += int(np.sum(np.asarray(got) != want))
                served += len(queries)

                lo, hi = np.sort(rng.choice(oracle, 2))
                count = await server.range(lo, hi)
                scanned = await server.range_keys(lo, hi)
                a, b = np.searchsorted(oracle, [lo, hi])
                mismatches += int(count != b - a)
                mismatches += int(not np.array_equal(scanned, oracle[a:b]))
                served += 2

                k = np.uint64(rng.integers(0, 1 << 40))
                await server.insert(k)
                oracle = np.insert(
                    oracle, int(np.searchsorted(oracle, k)), k)
                victim = rng.choice(oracle)
                await server.delete(victim)
                oracle = np.delete(
                    oracle, int(np.searchsorted(oracle, victim)))
                served += 2
        return {"served": served, "mismatches": mismatches}

    return asyncio.run(main())


def reopen_and_serve(args: argparse.Namespace) -> int:
    """Child-process mode: time ``repro.open``, then serve verified.

    The open is timed twice (best-of-2, both in this fresh process) so
    the reported reopen cost is the steady I/O + reconstruct cost, not
    first-touch page-cache noise; the first instance serves the
    workload.
    """
    t0 = time.perf_counter()
    index = repro.open(args.reopen)
    first_open = time.perf_counter() - t0
    t0 = time.perf_counter()
    repro.open(args.reopen)
    open_seconds = min(first_open, time.perf_counter() - t0)
    info = index.build_info()
    assert info["source"] == "loaded", info
    result = serve_verified_workload(
        index, args.seed, args.rounds, args.reads_per_round
    )
    result["first_open_seconds"] = first_open
    result["open_seconds"] = open_seconds
    result["num_keys"] = len(index)
    print(json.dumps(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1_000_000,
                        help="keys in the dataset (default 1M — the "
                             "acceptance scale)")
    parser.add_argument("--dataset", default="face64")
    parser.add_argument("--preset", default="auto",
                        choices=["read_heavy", "mixed", "auto"])
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rounds", type=int, default=60,
                        help="serve rounds in the reopened process")
    parser.add_argument("--reads-per-round", type=int, default=64)
    parser.add_argument("--min-ratio", type=float, default=10.0,
                        help="required build/open speedup (the driver "
                             "raises below it)")
    parser.add_argument("--no-enforce", action="store_true",
                        help="report the ratio without enforcing it")
    parser.add_argument("--smoke", action="store_true",
                        help="CI configuration: same 1M-key build, "
                             "smaller served workload")
    parser.add_argument("--reopen", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.reopen is not None:
        return reopen_and_serve(args)
    if args.smoke:
        args.rounds = min(args.rounds, 15)
        args.reads_per_round = min(args.reads_per_round, 32)

    from repro.api import Index, IndexConfig
    from repro.datasets import load

    keys = load(args.dataset, args.n, args.seed)
    config = IndexConfig.from_preset(args.preset, num_shards=args.shards)

    t0 = time.perf_counter()
    index = Index.build(keys, config, name=args.dataset)
    build_seconds = time.perf_counter() - t0

    # writes before saving: the archive must carry pending deltas too
    rng = np.random.default_rng(args.seed + 1)
    for k in rng.integers(0, 1 << 40, 200, dtype=np.uint64):
        index.insert(k)
    for k in rng.choice(keys, 100, replace=False):
        index.delete(k)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "engine.npz"
        t0 = time.perf_counter()
        index.save(path)
        save_seconds = time.perf_counter() - t0
        size_mb = path.stat().st_size / 1e6

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")

        def spawn(rounds: int, reads: int) -> dict:
            child = subprocess.run(
                [sys.executable, __file__, "--reopen", str(path),
                 "--seed", str(args.seed + 2), "--rounds", str(rounds),
                 "--reads-per-round", str(reads)],
                capture_output=True, text=True, env=env,
            )
            if child.returncode != 0:
                print(child.stdout)
                print(child.stderr, file=sys.stderr)
                raise RuntimeError("fresh-process reopen failed")
            return json.loads(child.stdout.strip().splitlines()[-1])

        result = spawn(args.rounds, args.reads_per_round)
        # the ratio claim is about steady reopen cost, not one noisy
        # sample on a busy box: a below-threshold first measurement is
        # re-timed (workload-free children) before the bench fails
        for _ in range(2):
            if (args.no_enforce
                    or build_seconds / result["open_seconds"]
                    >= args.min_ratio):
                break
            retimed = spawn(1, 2)
            result["open_seconds"] = min(result["open_seconds"],
                                         retimed["open_seconds"])

    ratio = build_seconds / result["open_seconds"]
    print(f"dataset:            {args.dataset} (n={args.n:,}, "
          f"preset={args.preset}, K={args.shards})")
    print(f"build:              {build_seconds:.3f} s")
    print(f"save:               {save_seconds:.3f} s ({size_mb:.1f} MB)")
    print(f"reopen (fresh proc) {result['open_seconds']:.3f} s "
          f"— {ratio:.1f}x faster than building, source=loaded")
    print(f"served:             {result['served']:,} verified requests, "
          f"{result['mismatches']} mismatches "
          f"(over {result['num_keys']:,} keys)")
    if result["mismatches"]:
        raise AssertionError(
            f"{result['mismatches']} served answers disagreed with the "
            "oracle after reopening"
        )
    if not args.no_enforce and ratio < args.min_ratio:
        raise AssertionError(
            f"reopen was only {ratio:.1f}x faster than building "
            f"(required {args.min_ratio:.1f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
