"""Fused pipeline dispatch: a CorrectedIndex becomes a kernel plan.

``predict → correct → bounded-search`` over one shard chunk is three
separate numpy passes in the fallback path, each materialising an
intermediate array.  When the compiled backend is live, this module
extracts the shard's model/layer parameters into a :class:`KernelPlan`
once (cached on the index) and runs the whole chunk as two compiled
passes: one per-lane predict kernel writing the float predictions, and
one fused correct+search kernel resolving positions.

Unsupported configurations — a model without a :meth:`kernel_spec`
(PGM, histogram, ad-hoc ``FunctionModel``\\ s), a degenerate one-point
radix spline, or a bare boundless model whose numpy path is already a
single ``searchsorted`` — return ``None`` so the caller keeps the
battle-tested numpy composition.  Layers are recognised structurally
(``deltas`` ⇒ R-mode :class:`ShiftTable`, ``drifts`` ⇒ S-mode
:class:`CompactShiftTable`) so this module never imports ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KernelPlan:
    """Extracted per-shard parameters for one fused pipeline run."""

    family: str
    spec: dict
    search_kind: str  # "window" | "point" | "leaf_bounds" | "const_bounds"
    search_args: tuple


def build_plan(model, layer, n: int) -> KernelPlan | None:
    """Plan for one model/layer pair, or ``None`` when unsupported."""
    spec = model.kernel_spec()
    if spec is None:
        return None
    family = spec["family"]
    if layer is not None and hasattr(layer, "deltas"):  # R-mode ShiftTable
        m = layer.num_partitions
        search = ("window",
                  (layer.deltas, layer.widths, m == n, m / n, m))
    elif layer is not None and hasattr(layer, "drifts"):  # S-mode compact
        radius = max(int(np.ceil(layer.mean_abs_error)), 1)
        m = layer.num_partitions
        search = ("point", (layer.drifts, m == n, m / n, m, radius))
    elif layer is not None:
        return None
    elif family == "rmi":
        search = ("leaf_bounds", (spec["err_lo"], spec["err_hi"]))
    elif "error_bounds" in spec:
        e_lo, e_hi = spec["error_bounds"]
        search = ("const_bounds", (int(e_lo), int(e_hi)))
    else:
        # boundless bare model: the fallback is one searchsorted — there
        # is no window to exploit and nothing to fuse
        return None
    return KernelPlan(family, spec, search[0], search[1])


def plan_for(index) -> KernelPlan | None:
    """Cached :func:`build_plan` for a CorrectedIndex instance."""
    cached = index.__dict__.get("_kernel_plan")
    if (
        cached is not None
        and cached[0] is index.model
        and cached[1] is index.layer
    ):
        return cached[2]
    plan = build_plan(index.model, index.layer, len(index.data.keys))
    index.__dict__["_kernel_plan"] = (index.model, index.layer, plan)
    return plan


def run_plan(plan: KernelPlan, keys, queries, impls) -> np.ndarray:
    """Execute a plan with the given kernel namespace.

    ``impls`` is any object exposing the kernel functions by name — the
    compiled :mod:`~repro.kernels.numba_backend`, the interpreted
    :mod:`~repro.kernels.cpu` (parity tests), or the array-pass
    :mod:`~repro.kernels.numpy_impl`.
    """
    nq = queries.shape[0]
    pred = np.empty(nq, dtype=np.float64)
    leaf = None
    s = plan.spec
    family = plan.family
    if family == "interpolation":
        impls.predict_interpolation(queries, s["kmin"], s["scale"], pred)
    elif family == "affine":
        impls.predict_affine(queries, s["slope"], s["intercept"], pred)
    elif family == "radix_spline":
        impls.predict_radix_spline(queries, s["sp_keys"], s["sp_pos"], pred)
    elif family == "rmi":
        leaf = np.empty(nq, dtype=np.int64)
        root = s["root"]
        if root == "linear":
            a, b = s["params"]
            impls.predict_rmi_linear(
                queries, a, b, s["slopes"], s["intercepts"],
                s["num_leaves"], leaf, pred
            )
        elif root == "cubic":
            c3, c2, c1, c0 = s["params"]
            impls.predict_rmi_cubic(
                queries, c3, c2, c1, c0, s["kmin"], s["span"], s["slopes"],
                s["intercepts"], s["num_leaves"], leaf, pred
            )
        else:  # radix: signedness follows the (normalised) query dtype
            base, shift = s["params"]
            if queries.dtype.kind == "u":
                impls.predict_rmi_radix_unsigned(
                    queries, base, shift, s["slopes"], s["intercepts"],
                    s["num_leaves"], leaf, pred
                )
            else:
                impls.predict_rmi_radix_signed(
                    queries, base, shift, s["slopes"], s["intercepts"],
                    s["num_leaves"], leaf, pred
                )
    else:  # pragma: no cover - build_plan only emits the families above
        raise ValueError(f"unknown kernel family {family!r}")

    out = np.empty(nq, dtype=np.int64)
    kind = plan.search_kind
    if kind == "window":
        deltas, widths, same, ratio, m = plan.search_args
        impls.fused_window_search(
            keys, queries, pred, deltas, widths, same, ratio, m, out
        )
    elif kind == "point":
        drifts, same, ratio, m, radius = plan.search_args
        impls.fused_point_search(
            keys, queries, pred, drifts, same, ratio, m, radius, out
        )
    elif kind == "leaf_bounds":
        err_lo, err_hi = plan.search_args
        impls.fused_leaf_bounds_search(
            keys, queries, pred, leaf, err_lo, err_hi, out
        )
    else:
        e_lo, e_hi = plan.search_args
        impls.fused_const_bounds_search(keys, queries, pred, e_lo, e_hi, out)
    return out


def fused_lookup_batch(index, keys, n, queries) -> np.ndarray | None:
    """Compiled whole-pipeline run, or ``None`` to keep the numpy path.

    Called from ``CorrectedIndex._lookup_batch_pipeline`` after query
    normalisation; a ``None`` return means "this configuration (or the
    current kernel mode) wants the numpy composition".
    """
    from . import REGISTRY, numba_backend

    if REGISTRY.effective_mode() != "numba":
        return None
    if queries.ndim != 1:
        return None
    plan = plan_for(index)
    if plan is None:
        return None
    return run_plan(plan, keys, queries, numba_backend)
