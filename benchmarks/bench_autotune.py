#!/usr/bin/env python
"""Per-shard auto-tuning vs fixed global configs, oracle-verified.

Standalone script (not a pytest-benchmark target) so CI can smoke it:

    PYTHONPATH=src python benchmarks/bench_autotune.py --smoke

Builds a skewed multi-distribution key space (dense-uniform + lognormal
+ clustered segments in disjoint ranges), sweeps every fixed global
model/layer config against ``ShardedIndex.build(auto_tune=True)`` +
``retune()``, verifies every config against a ``searchsorted`` oracle,
and reports the per-shard tuner decisions; see
:mod:`repro.bench.autotune`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    from repro.bench.autotune import (
        SMOKE_LIMITS,
        render_report,
        run_autotune_bench,
    )
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.bench.autotune import (
        SMOKE_LIMITS,
        render_report,
        run_autotune_bench,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=200_000,
                        help="keys in the multi-distribution dataset")
    parser.add_argument("--queries", type=int, default=100_000,
                        help="lookup queries per timed config")
    parser.add_argument("--shards", type=int, default=9,
                        help="number of range shards (default 9)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per config (best-of)")
    parser.add_argument("--workers", type=int, default=1,
                        help="thread-pool size for cross-shard reads")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="required auto/best-fixed throughput ratio")
    parser.add_argument("--no-enforce", action="store_true",
                        help="report the ratio without enforcing it")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration (fast, still verified)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n = min(args.n, SMOKE_LIMITS["n"])
        args.queries = min(args.queries, SMOKE_LIMITS["num_queries"])
        args.repeats = min(args.repeats, SMOKE_LIMITS["repeats"])

    out = run_autotune_bench(
        n=args.n,
        num_shards=args.shards,
        num_queries=args.queries,
        repeats=args.repeats,
        seed=args.seed,
        workers=args.workers,
        min_ratio=None if args.no_enforce else args.min_ratio,
    )
    print(render_report(out))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
