"""Gapped-array (ALEX-style) updates: the §6 design alternative."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gapped import GappedLearnedIndex
from repro.datasets import load

from helpers import sorted_uint_arrays

N = 20_000


@pytest.fixture()
def gapped():
    return GappedLearnedIndex(load("wiki64", N, seed=121), density=0.75)


def test_construction_spreads_keys(gapped):
    assert gapped.capacity > N
    assert gapped.gap_fraction == pytest.approx(0.25, abs=0.01)
    assert np.array_equal(gapped.real_keys(), load("wiki64", N, seed=121))
    assert not gapped.needs_expand()


def test_gapped_array_is_sorted(gapped):
    keys = gapped.data.keys
    assert bool(np.all(keys[1:] >= keys[:-1]))


def test_lookup_lands_on_run_start(gapped):
    keys = load("wiki64", N, seed=121)
    for q in np.random.default_rng(0).choice(keys, 200):
        pos = gapped.lookup(q)
        garr = gapped.data.keys
        assert garr[pos] >= q
        assert pos == 0 or garr[pos - 1] < q


def test_rank_matches_searchsorted(gapped):
    keys = load("wiki64", N, seed=121)
    probes = np.random.default_rng(1).choice(keys, 200)
    got = np.asarray([gapped.rank(q) for q in probes])
    assert np.array_equal(got, np.searchsorted(keys, probes))


def test_inserts_shift_few_slots(gapped):
    keys = load("wiki64", N, seed=121)
    rng = np.random.default_rng(2)
    lo, hi = int(keys.min()), int(keys.max())
    inserts = (lo + (rng.random(1000) * (hi - lo)).astype(np.uint64)).astype(
        keys.dtype
    )
    shifts = [gapped.insert(k) for k in inserts]
    # the ALEX promise: inserts move a handful of slots, not O(n)
    assert np.mean(shifts) < 20
    merged = np.sort(np.concatenate([keys, inserts]))
    assert np.array_equal(gapped.real_keys(), merged)


def test_ranks_stay_exact_after_inserts(gapped):
    keys = load("wiki64", N, seed=121)
    rng = np.random.default_rng(3)
    lo, hi = int(keys.min()), int(keys.max())
    inserts = (lo + (rng.random(500) * (hi - lo)).astype(np.uint64)).astype(
        keys.dtype
    )
    for k in inserts:
        gapped.insert(k)
    merged = np.sort(np.concatenate([keys, inserts]))
    probes = rng.choice(merged, 200)
    got = np.asarray([gapped.rank(q) for q in probes])
    assert np.array_equal(got, np.searchsorted(merged, probes))


def test_expansion_when_full():
    keys = (np.arange(64, dtype=np.uint64) * 7 + 3).astype(np.uint64)
    g = GappedLearnedIndex(keys, density=0.95)
    rng = np.random.default_rng(4)
    for _ in range(200):
        g.insert(np.uint64(rng.integers(0, 600)))
    assert g.num_keys == 64 + 200
    assert bool(np.all(np.diff(g.real_keys().astype(np.int64)) >= 0))


def test_density_validation():
    keys = np.arange(10, dtype=np.uint64)
    with pytest.raises(ValueError):
        GappedLearnedIndex(keys, density=0.01)
    with pytest.raises(ValueError):
        GappedLearnedIndex(np.asarray([], dtype=np.uint64))


@settings(max_examples=30, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=2, max_size=120, allow_duplicates=False),
    inserts=st.lists(st.integers(0, (1 << 48) - 1), min_size=1, max_size=30),
)
def test_property_gapped_inserts(keys, inserts):
    g = GappedLearnedIndex(keys, density=0.7)
    for k in inserts:
        g.insert(np.uint64(k))
    merged = np.sort(
        np.concatenate([keys, np.asarray(inserts, dtype=np.uint64)])
    )
    assert np.array_equal(g.real_keys(), merged)
    probe = merged[len(merged) // 2]
    assert g.rank(probe) == int(np.searchsorted(merged, probe))
