"""The §3.7 cost model: eq. 8 exactness, curve behaviour, eqs. 9-10, and
the §4.1 enable/disable rule."""

import numpy as np
import pytest

from repro.core.cost_model import (
    LatencyCurve,
    expected_error,
    latency_with_layer,
    latency_without_layer,
    measure_latency_curve,
    should_enable_layer,
)
from repro.datasets import load
from repro.hardware.machine import MachineSpec


def test_expected_error_formula():
    """Eq. (8): ē = (1/2N) Σ C_k²."""
    counts = np.asarray([2, 0, 3, 1], dtype=np.int64)
    n = counts.sum()
    assert expected_error(counts) == pytest.approx((4 + 9 + 1) / (2 * n))


def test_expected_error_empty():
    assert expected_error(np.zeros(4, dtype=np.int64)) == 0.0


def test_expected_error_matches_empirical_mean_error():
    """Eq. (8) against a brute-force computation of the §3.5 error model:
    querying each key of a partition with C keys and searching from the
    window start costs 0..C-1, i.e. (C-1)/2 on average per key."""
    rng = np.random.default_rng(0)
    counts = rng.integers(0, 6, size=100).astype(np.int64)
    n = counts.sum()
    empirical = sum(c * (c - 1) / 2 for c in counts) / n
    # eq. (8) uses C/2 instead of (C-1)/2 — an upper bound within C/2
    assert empirical <= expected_error(counts) <= empirical + 0.5


def test_latency_curve_interpolates_and_extrapolates():
    curve = LatencyCurve(
        np.asarray([1, 16, 256]), np.asarray([10.0, 50.0, 100.0])
    )
    assert curve(1) == pytest.approx(10.0)
    assert curve(16) == pytest.approx(50.0)
    assert 10.0 < curve(4) < 50.0
    assert curve(1024) > 100.0  # log-linear extrapolation
    assert curve(0.5) == pytest.approx(10.0)  # clamped at s=1
    out = curve(np.asarray([1.0, 256.0]))
    assert out == pytest.approx([10.0, 100.0])


def test_latency_curve_validation():
    with pytest.raises(ValueError):
        LatencyCurve(np.asarray([1]), np.asarray([10.0]))
    with pytest.raises(ValueError):
        LatencyCurve(np.asarray([4, 2]), np.asarray([1.0, 2.0]))


def test_measured_curve_is_increasing():
    keys = load("uspr32", 100_000, seed=1)
    machine = MachineSpec.paper().scaled_for(len(keys), 12)
    curve = measure_latency_curve(
        keys, machine, sizes=(1, 16, 256, 4096), queries_per_size=32
    )
    lat = list(curve.latencies_ns)
    assert lat[0] < lat[-1]
    assert all(v > 0 for v in lat)


def test_eq9_eq10_relationship():
    """For a high-error model the layer should predict a win (eq9 < eq10)
    and for a near-perfect model it should not."""
    curve = LatencyCurve(
        np.asarray([1, 10, 100, 1000, 10000]),
        np.asarray([5.0, 40.0, 150.0, 400.0, 900.0]),
    )
    n = 1000
    counts = np.ones(n, dtype=np.int64)
    # bad model: every partition is off by ~5000 records
    bad_deltas = np.full(n, 5000, dtype=np.int64)
    assert latency_with_layer(5.0, counts, curve) < latency_without_layer(
        5.0, counts, bad_deltas, curve
    )
    # perfect model: zero drift everywhere
    good_deltas = np.zeros(n, dtype=np.int64)
    assert latency_with_layer(5.0, counts, curve) > latency_without_layer(
        5.0, counts, good_deltas, curve
    )


def test_layer_lookup_cost_included():
    curve = LatencyCurve(np.asarray([1, 10]), np.asarray([5.0, 40.0]))
    counts = np.ones(10, dtype=np.int64)
    base = latency_with_layer(0.0, counts, curve, layer_ns=0.0)
    with_layer = latency_with_layer(0.0, counts, curve, layer_ns=40.0)
    assert with_layer == pytest.approx(base + 40.0)


@pytest.mark.parametrize("before,after,expected", [
    (5.0, 0.1, False),    # §4.1 rule 1: error already below 10
    (100.0, 50.0, False),  # rule 2: improvement below 10x
    (100.0, 5.0, True),
    (1e6, 10.0, True),
    (50.0, 0.0, True),
])
def test_should_enable_layer(before, after, expected):
    assert should_enable_layer(before, after) is expected
