"""Per-shard write-ahead log: CRC-framed mutation records, group commit.

The durability layer's first half (the second is
:mod:`repro.engine.durability`): every ``insert``/``delete`` the sharded
engine applies is appended here *before* it is acknowledged, so a crash
can lose at most the un-fsynced tail — never a write the caller was told
succeeded.

Layout
------
A WAL lives under ``<root>/wal/`` as numbered **generations** (one per
checkpoint pass — rotating at a pass's start is what lets whole older
generations be deleted once the pass publishes):

.. code-block:: text

    wal/
      g0000000001/
        lane-0000.wal      # records applied to shard 0
        lane-0003.wal      # records applied to shard 3
      g0000000002/
        ...

Within a generation the log is **per shard**: each record is appended to
the lane file of the shard that absorbed the write, so a future
multi-writer engine appends without cross-shard contention and
checkpoint bookkeeping stays per shard.  Every record carries a global,
monotonically increasing **LSN**; readers merge all lanes by LSN, which
restores the exact apply order the engine's write lock serialised.

Record framing (little-endian)::

    u32 crc32(payload) | u32 payload_length | payload
    payload = u64 lsn | u8 op | u32 shard | key bytes (dtype.itemsize)

Each lane file starts with a header: ``b"RWAL"``, a format version, and
the key dtype string.  A torn tail — the frame being written when the
process died — fails its CRC (or runs out of bytes) and ends that
lane's replay; anything framed *before* it is intact because appends
never rewrite earlier bytes.

Durability contract
-------------------
``append()`` buffers; a record is only *durable* once :meth:`WalWriter.commit`
has returned, which flushes and ``fsync``\\ s every dirty lane (and, the
first time a lane file is created, its directory).  Three sync modes:

* ``"always"`` — the owner commits after every append: one fsync per
  write, strongest guarantee, slowest.
* ``"group"``  — appends accumulate and a later ``commit()`` makes the
  whole group durable with one fsync (the serving layer batches
  concurrent writers onto one commit; the engine path auto-commits
  every ``group_ops`` appends as a backstop).
* ``"async"``  — ``commit()`` flushes to the OS but never fsyncs; a
  process crash loses nothing, a power loss may lose the tail.

:attr:`WalWriter.durable_lsn` reports the highest LSN guaranteed to
survive, which is what "acknowledged" means one layer up.
"""

from __future__ import annotations

import os
import re
import shutil
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: Lane-file magic; a file not starting with it is not a WAL lane.
WAL_MAGIC = b"RWAL"

#: On-disk WAL format version; bump on incompatible framing changes.
WAL_VERSION = 1

#: Sync policies a :class:`WalWriter` can be opened with.
WAL_SYNC_MODES = ("always", "group", "async")

#: Record opcodes.
OP_INSERT = 1
OP_DELETE = 2

_HEADER = struct.Struct("<4sHH")  # magic, version, dtype-string length
_FRAME = struct.Struct("<II")  # crc32(payload), payload length
_PAYLOAD_HEAD = struct.Struct("<QBI")  # lsn, op, shard

_GEN_RE = re.compile(r"^g(\d{10})$")
_LANE_RE = re.compile(r"^lane-(\d{4})\.wal$")


class WalError(ValueError):
    """A WAL file could not be written or read back.

    Raised for unreadable lane headers, dtype mismatches between lanes,
    or corruption *before* the tail (a bad frame followed by intact
    frames means the file was damaged, not torn by a crash).
    """


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation: ``(lsn, op, shard, key)``.

    ``op`` is :data:`OP_INSERT` or :data:`OP_DELETE`; ``shard`` is the
    shard id the engine applied the write to at log time (used by
    recovery to decide whether a checkpoint segment already contains the
    effect); ``key`` is a numpy scalar in the index's key dtype.
    """

    lsn: int
    op: int
    shard: int
    key: object


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry to disk (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)


def generation_dirname(generation: int) -> str:
    """Directory name of WAL generation ``generation`` (``g<10 digits>``)."""
    if generation < 0:
        raise ValueError("WAL generation must be non-negative")
    return f"g{generation:010d}"


def list_generations(wal_root: Path) -> list[int]:
    """Sorted generation numbers present under ``wal_root``."""
    if not wal_root.is_dir():
        return []
    found = []
    for child in wal_root.iterdir():
        match = _GEN_RE.match(child.name)
        if match and child.is_dir():
            found.append(int(match.group(1)))
    return sorted(found)


class _Lane:
    """One shard's append-only lane file (buffered, fsync on commit)."""

    def __init__(self, path: Path, key_dtype: np.dtype) -> None:
        self.path = path
        created = not path.exists()
        self._fh = open(path, "ab")
        if created or self._fh.tell() == 0:
            dtype_bytes = key_dtype.str.encode("ascii")
            self._fh.write(
                _HEADER.pack(WAL_MAGIC, WAL_VERSION, len(dtype_bytes))
            )
            self._fh.write(dtype_bytes)
            self.newly_created = True
        else:
            self.newly_created = False
        self.dirty = False

    def append(self, frame: bytes) -> None:
        self._fh.write(frame)
        self.dirty = True

    def flush(self, fsync: bool) -> None:
        if not self.dirty:
            return
        self._fh.flush()
        if fsync:
            os.fsync(self._fh.fileno())
        self.dirty = False

    def close(self) -> None:
        self._fh.close()


class WalWriter:
    """Appends CRC-framed mutation records to per-shard lane files.

    One writer owns the log at a time (the engine's write lock already
    serialises mutations; a small internal lock additionally makes
    ``commit()`` safe to call from a different thread than ``append()``,
    which is how the serving layer runs group fsyncs off the event
    loop).  ``start_lsn`` seeds the LSN counter — recovery reopens the
    log with ``max replayed LSN + 1`` so LSNs stay globally unique
    across crashes.
    """

    def __init__(
        self,
        wal_root: str | Path,
        key_dtype: np.dtype,
        *,
        generation: int = 1,
        start_lsn: int = 1,
        sync: str = "group",
        group_ops: int = 256,
    ) -> None:
        if sync not in WAL_SYNC_MODES:
            raise ValueError(
                f"sync must be one of {WAL_SYNC_MODES}, got {sync!r}"
            )
        if group_ops < 1:
            raise ValueError("group_ops must be >= 1")
        self.wal_root = Path(wal_root)
        self.key_dtype = np.dtype(key_dtype)
        self.sync = sync
        self.group_ops = group_ops
        self._lock = threading.Lock()
        self._lanes: dict[int, _Lane] = {}
        self._next_lsn = int(start_lsn)
        self._durable_lsn = int(start_lsn) - 1
        self._flushed_lsn = self._durable_lsn  # visible to the OS
        self._uncommitted = 0
        self._closed = False
        self._open_generation(int(generation))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The generation new records append to (rotates per checkpoint)."""
        return self._generation

    @property
    def next_lsn(self) -> int:
        """The LSN the next appended record will carry."""
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended record (0 before any)."""
        return self._next_lsn - 1

    @property
    def durable_lsn(self) -> int:
        """Highest LSN guaranteed to survive a crash (post-``commit``).

        Under ``sync="async"`` this tracks flushes (the strongest
        statement that mode can make).
        """
        return self._durable_lsn

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, op: int, shard: int, key) -> int:
        """Frame and buffer one record; returns its LSN.

        Durable only after :meth:`commit` (which ``sync="always"`` runs
        inline).  A ``sync="group"`` writer auto-commits every
        ``group_ops`` appends as a backstop so an owner that forgets to
        commit still bounds the window of loss.
        """
        if self._closed:
            raise WalError("cannot append to a closed WAL writer")
        key_scalar = self.key_dtype.type(key)
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            payload = _PAYLOAD_HEAD.pack(lsn, op, shard) + \
                key_scalar.tobytes()
            frame = _FRAME.pack(zlib.crc32(payload), len(payload)) + payload
            lane = self._lanes.get(shard)
            if lane is None:
                lane = self._open_lane(shard)
            lane.append(frame)
            self._uncommitted += 1
        if self.sync == "always" or (
            self.sync == "group" and self._uncommitted >= self.group_ops
        ):
            self.commit()
        return lsn

    def commit(self) -> int:
        """Make every appended record durable; returns the durable LSN.

        Flushes all dirty lanes and — except under ``sync="async"`` —
        ``fsync``\\ s them, plus the generation directory the first time
        each lane file appears in it.  One fsync covers however many
        appends accumulated: this *is* the group commit.
        """
        with self._lock:
            if self._closed:
                return self._durable_lsn
            head = self._next_lsn - 1
            fsync = self.sync != "async"
            synced_new = False
            for lane in self._lanes.values():
                if lane.newly_created:
                    synced_new = True
                    lane.newly_created = False
                lane.flush(fsync=fsync)
            if synced_new and fsync:
                _fsync_dir(self._gen_dir)
            self._flushed_lsn = head
            self._durable_lsn = head
            self._uncommitted = 0
            return self._durable_lsn

    def rotate(self, generation: int) -> None:
        """Close the current generation and append to a new one.

        Called at the start of a checkpoint pass: records before the
        rotation land in generations the pass will supersede, records
        after it in the generation the new manifest references.
        """
        self.commit()
        with self._lock:
            if generation <= self._generation:
                raise WalError(
                    f"cannot rotate backwards (at generation "
                    f"{self._generation}, asked for {generation})"
                )
            for lane in self._lanes.values():
                lane.close()
            self._lanes = {}
            self._open_generation(generation)

    def drop_generations_below(self, generation: int) -> int:
        """Delete whole generations older than ``generation``; returns count.

        Safe once a manifest of generation ``generation`` is published:
        every record in an older generation predates all of that
        manifest's per-shard flush LSNs.
        """
        dropped = 0
        for gen in list_generations(self.wal_root):
            if gen < generation:
                shutil.rmtree(
                    self.wal_root / generation_dirname(gen),
                    ignore_errors=True,
                )
                dropped += 1
        if dropped:
            _fsync_dir(self.wal_root)
        return dropped

    def close(self) -> None:
        """Commit outstanding records and release every lane handle."""
        if self._closed:
            return
        self.commit()
        with self._lock:
            self._closed = True
            for lane in self._lanes.values():
                lane.close()
            self._lanes = {}

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _open_generation(self, generation: int) -> None:
        self._generation = generation
        self._gen_dir = self.wal_root / generation_dirname(generation)
        self._gen_dir.mkdir(parents=True, exist_ok=True)
        _fsync_dir(self.wal_root)

    def _open_lane(self, shard: int) -> _Lane:
        if shard < 0:
            raise WalError(f"invalid shard id {shard} in WAL append")
        lane = _Lane(self._gen_dir / f"lane-{shard:04d}.wal",
                     self.key_dtype)
        self._lanes[shard] = lane
        return lane


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def read_lane(path: str | Path) -> tuple[list[WalRecord], bool]:
    """Decode one lane file: ``(records, torn)``.

    Reads frames until the file ends cleanly or a frame fails (short
    header, short payload, CRC mismatch).  A failing *final* frame is a
    torn tail — the crash the WAL exists to survive — and simply ends
    the lane (``torn=True``).  A failing frame with intact frames after
    it means mid-file damage and raises :class:`WalError`: replaying
    past silent corruption would resurrect an inconsistent history.
    """
    path = Path(path)
    blob = path.read_bytes()
    if len(blob) < _HEADER.size:
        # a crash during the lane's very first append can leave a
        # truncated (or empty) header: a torn, record-less lane, not
        # corruption
        return [], True
    magic, version, dtype_len = _HEADER.unpack_from(blob, 0)
    if magic != WAL_MAGIC:
        raise WalError(f"{path} is not a WAL lane (bad magic)")
    if version > WAL_VERSION or version < 1:
        raise WalError(
            f"{path} uses WAL format version {version}; this library "
            f"reads versions 1..{WAL_VERSION}"
        )
    offset = _HEADER.size
    if offset + dtype_len > len(blob):
        return [], True  # header torn mid-dtype-string
    try:
        key_dtype = np.dtype(blob[offset:offset + dtype_len].decode("ascii"))
    except (TypeError, UnicodeDecodeError) as exc:
        raise WalError(f"{path} has an unreadable key dtype: {exc}") from exc
    offset += dtype_len
    expected_payload = _PAYLOAD_HEAD.size + key_dtype.itemsize

    records: list[WalRecord] = []
    torn = False
    while offset < len(blob):
        frame_end = offset + _FRAME.size
        if frame_end > len(blob):
            torn = True
            break
        crc, length = _FRAME.unpack_from(blob, offset)
        payload = blob[frame_end:frame_end + length]
        if (
            length != expected_payload
            or len(payload) != length
            or zlib.crc32(payload) != crc
        ):
            torn = True
            break
        lsn, op, shard = _PAYLOAD_HEAD.unpack_from(payload, 0)
        key = np.frombuffer(
            payload, dtype=key_dtype, count=1, offset=_PAYLOAD_HEAD.size
        )[0]
        records.append(WalRecord(lsn, op, shard, key))
        offset = frame_end + length
    if torn and _has_intact_frame_after(blob, offset, expected_payload):
        raise WalError(
            f"{path} is corrupted mid-file (bad frame followed by an "
            "intact one) — refusing to replay past silent damage"
        )
    return records, torn


def _has_intact_frame_after(blob: bytes, offset: int,
                            expected_payload: int) -> bool:
    """Scan past a bad frame for any later frame that still checks out."""
    probe = offset + 1
    frame_size = _FRAME.size + expected_payload
    while probe + frame_size <= len(blob):
        crc, length = _FRAME.unpack_from(blob, probe)
        if length == expected_payload:
            payload = blob[probe + _FRAME.size:probe + frame_size]
            if zlib.crc32(payload) == crc:
                return True
        probe += 1
    return False


def read_generation(gen_dir: str | Path) -> tuple[list[WalRecord], bool]:
    """All records of one generation, merged by LSN: ``(records, torn)``."""
    gen_dir = Path(gen_dir)
    records: list[WalRecord] = []
    torn = False
    for lane_path in sorted(gen_dir.iterdir()):
        if not _LANE_RE.match(lane_path.name):
            continue
        lane_records, lane_torn = read_lane(lane_path)
        records.extend(lane_records)
        torn = torn or lane_torn
    records.sort(key=lambda r: r.lsn)
    return records, torn


def read_wal(wal_root: str | Path, min_generation: int = 0,
             ) -> tuple[list[WalRecord], bool]:
    """Merge every generation ``>= min_generation`` into one LSN-ordered
    record list: ``(records, torn)``.

    ``torn`` reports whether any lane ended in a torn tail — expected
    after a crash, interesting for diagnostics either way.
    """
    wal_root = Path(wal_root)
    records: list[WalRecord] = []
    torn = False
    for gen in list_generations(wal_root):
        if gen < min_generation:
            continue
        gen_records, gen_torn = read_generation(
            wal_root / generation_dirname(gen)
        )
        records.extend(gen_records)
        torn = torn or gen_torn
    records.sort(key=lambda r: r.lsn)
    return records, torn


__all__ = [
    "OP_DELETE",
    "OP_INSERT",
    "WAL_MAGIC",
    "WAL_SYNC_MODES",
    "WAL_VERSION",
    "WalError",
    "WalRecord",
    "WalWriter",
    "generation_dirname",
    "list_generations",
    "read_generation",
    "read_lane",
    "read_wal",
]
