"""Sharded, vectorised batch-query engine (ROADMAP: scale the repro).

Composes the repo's existing pieces end-to-end for throughput-oriented
serving: :class:`ShardedIndex` range-partitions the keys and fits a
shard-local model + Shift-Table correction per shard;
:class:`BatchExecutor` routes, groups and executes whole query batches
through the vectorised predict → correct → bounded-search pipeline;
:class:`ExecutionPlan` is the inspectable EXPLAIN of a batch.

>>> from repro.engine import ShardedIndex, BatchExecutor
>>> index = ShardedIndex.build(keys, num_shards=8, model="interpolation")
>>> positions = BatchExecutor(index).lookup_batch(queries)
"""

from .backends import (
    BACKEND_KINDS,
    BackendConfig,
    FenwickBackend,
    GappedBackend,
    ShardBackend,
    StaticBackend,
    make_backend,
)
from .executor import MODES, BatchExecutor
from .plan import ExecutionPlan, ShardSlice
from .sharded import LAYER_MODES, ShardedIndex, WriteEvent, snap_offsets

__all__ = [
    "BACKEND_KINDS",
    "BackendConfig",
    "BatchExecutor",
    "ExecutionPlan",
    "FenwickBackend",
    "GappedBackend",
    "LAYER_MODES",
    "MODES",
    "ShardBackend",
    "ShardSlice",
    "ShardedIndex",
    "StaticBackend",
    "WriteEvent",
    "snap_offsets",
]
