"""SOSD-style datasets: synthetic generators plus real-world surrogates.

See DESIGN.md substitution S2 for what each surrogate preserves from the
original dataset it stands in for.
"""

from .cdf import (
    cdf_series,
    key_positions,
    local_linearity,
    lower_bound_positions,
    upper_bound_positions,
)
from .realworld import amzn, face, osmc, wiki
from .stats import (
    CongestionProfile,
    burstiness,
    congestion_profile,
    duplication_ratio,
    gap_tail_index,
)
from .registry import (
    REALWORLD_NAMES,
    SYNTHETIC_NAMES,
    TABLE2_DATASETS,
    clear_cache,
    dataset_names,
    is_real_world,
    load,
    parse_name,
)
from .synthetic import logn, norm, uden, uspr

__all__ = [
    "logn",
    "norm",
    "uden",
    "uspr",
    "amzn",
    "face",
    "osmc",
    "wiki",
    "load",
    "parse_name",
    "dataset_names",
    "is_real_world",
    "clear_cache",
    "TABLE2_DATASETS",
    "SYNTHETIC_NAMES",
    "REALWORLD_NAMES",
    "lower_bound_positions",
    "key_positions",
    "upper_bound_positions",
    "local_linearity",
    "cdf_series",
    "duplication_ratio",
    "gap_tail_index",
    "congestion_profile",
    "CongestionProfile",
    "burstiness",
]
