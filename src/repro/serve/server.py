"""The asyncio serving front end over the sharded batch engine.

:class:`IndexServer` is what a network handler would call: concurrent
``lookup``/``range`` coroutines are micro-batched through the vectorised
:class:`~repro.engine.executor.BatchExecutor`
(:mod:`repro.serve.batcher`), answered from a write-coherent LRU
:class:`~repro.serve.cache.ResultCache` when possible, and accounted in
:class:`~repro.serve.stats.ServerStats`.

Coherence model (single event loop):

* **Writes are read barriers.**  ``insert``/``delete`` first drain the
  pending micro-batch, so every request admitted before a write is
  answered against the pre-write index; requests submitted after it see
  the post-write index.
* **Invalidation is synchronous.**  The server registers a write
  listener on the :class:`~repro.engine.sharded.ShardedIndex`; by the
  time a write call returns, stale cache entries are gone (point
  entries above the written key, cached ranges overlapping the mutated
  shard's span — see :mod:`repro.serve.cache`).
* **Stale fills cannot sneak in.**  A write bumps an epoch counter;
  a read only caches its answer if no write landed while it was in
  flight, closing the resolve-then-cache race.

Backpressure: at most ``max_inflight`` requests may be waiting on the
executor; beyond that, new requests park on a FIFO of waiter events
(counted in ``stats.backpressure_waits``) instead of growing the batch
queue without bound.  Claiming a free slot is a plain counter
decrement — the await machinery only engages once the server
saturates.
"""

from __future__ import annotations

import asyncio
from collections import deque

import numpy as np

from ..core.corrected_index import CorrectedIndex
from ..engine.executor import BatchExecutor
from ..engine.sharded import ShardedIndex, WriteEvent
from .batcher import MicroBatcher
from .cache import ResultCache, scalar
from .stats import ServerStats


class IndexServer:
    """Async point/range serving over a (sharded) learned index."""

    def __init__(
        self,
        index: ShardedIndex | CorrectedIndex,
        max_batch: int = 256,
        max_wait_us: float = 200.0,
        workers: int = 1,
        point_cache: int = 65536,
        range_cache: int = 4096,
        max_inflight: int = 8192,
        stats: ServerStats | None = None,
        retune_interval: float | None = None,
        durability=None,
        checkpoint_interval: float | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if retune_interval is not None and retune_interval <= 0:
            raise ValueError("retune_interval must be positive seconds")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive seconds")
        if checkpoint_interval is not None and durability is None:
            raise ValueError(
                "checkpoint_interval needs a durability manager to drive"
            )
        self.executor = BatchExecutor(index, workers=workers)
        self.index = self.executor.index
        self.stats = stats if stats is not None else ServerStats()
        self.cache = ResultCache(point_cache, range_cache)
        self.batcher = MicroBatcher(
            self.executor, max_batch=max_batch, max_wait_us=max_wait_us,
            stats=self.stats,
        )
        self.max_inflight = max_inflight
        #: seconds between background §3.9 maintenance passes (None: the
        #: caller retunes explicitly).  The timer task starts lazily on
        #: the first served request — construction happens outside any
        #: event loop — and is cancelled and awaited by :meth:`close`.
        self.retune_interval = retune_interval
        self._retune_task: asyncio.Task | None = None
        #: the exception that stopped the background retune timer, if any
        self.retune_error: Exception | None = None
        #: the :class:`~repro.engine.durability.DurabilityManager` whose
        #: index this server fronts (None: writes are memory-only).  The
        #: manager must already be attached to ``index``; the server
        #: adds acknowledgment (awaited writes are durable writes) and
        #: scheduling (``checkpoint_interval``) on top.
        self.durability = durability
        #: seconds between background incremental checkpoints (None: the
        #: caller checkpoints explicitly); same lazy-start/cancel
        #: lifecycle as ``retune_interval``.
        self.checkpoint_interval = checkpoint_interval
        self._checkpoint_task: asyncio.Task | None = None
        #: the exception that stopped the checkpoint timer, if any
        self.checkpoint_error: Exception | None = None
        # the in-flight leader group commit concurrent writers piggyback
        # on — one fsync (off-loop) acknowledges every write that
        # appended before it ran
        self._commit_task: asyncio.Task | None = None
        self._write_epoch = 0
        # backpressure slots: a plain counter (sync fast path — no
        # coroutine allocation per request) plus a FIFO of waiter
        # events, only touched once the server saturates
        self._slots = max_inflight
        self._slot_waiters: deque = deque()
        self.index.add_write_listener(self._on_write)
        self._closed = False

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    async def lookup(self, q) -> int:
        """Global lower-bound position of ``q`` (cache, then micro-batch)."""
        self._maybe_start_background_timers()
        self.stats.request_started()
        try:
            cached = self.cache.get_point(q)
            if cached is not None:
                self.stats.record_cache_hit()
                return cached
            epoch = self._write_epoch
            if self._slots > 0:  # uncontended: skip the await machinery
                self._slots -= 1
            else:
                await self._take_slot()
            try:
                position = await self.batcher.lookup(q)
            finally:
                self._release_slot()
            if epoch == self._write_epoch:  # no write raced the dispatch
                self.cache.put_point(q, position)
            return position
        finally:
            self.stats.request_finished()

    async def range(self, lo, hi) -> int:
        """Cardinality of ``lo <= key < hi`` (cache, then micro-batch).

        Range answers are served as cardinalities — value-domain, hence
        immune to the global rank shifts that writes to *other* shards
        cause — which is what makes shard-aware cache invalidation
        exact.  Use :meth:`range_positions` for the raw bounds and
        :meth:`range_keys` for the materialised keys.
        """
        self._maybe_start_background_timers()
        self.stats.request_started()
        try:
            cached = self.cache.get_range(lo, hi)
            if cached is not None:
                self.stats.record_cache_hit()
                return cached
            epoch = self._write_epoch
            if self._slots > 0:
                self._slots -= 1
            else:
                await self._take_slot()
            try:
                first, last = await self.batcher.range(lo, hi)
            finally:
                self._release_slot()
            count = last - first
            if epoch == self._write_epoch:
                self.cache.put_range(lo, hi, count)
            return count
        finally:
            self.stats.request_finished()

    async def range_positions(self, lo, hi) -> tuple[int, int]:
        """``[first, last)`` global positions of a range (uncached)."""
        self._maybe_start_background_timers()
        self.stats.request_started()
        try:
            if self._slots > 0:
                self._slots -= 1
            else:
                await self._take_slot()
            try:
                return await self.batcher.range(lo, hi)
            finally:
                self._release_slot()
        finally:
            self.stats.request_finished()

    async def range_keys(self, lo, hi):
        """Materialised keys in ``lo <= key < hi`` (the served scan).

        Closes the serving parity gap with the engine's
        ``BatchExecutor.scan_batch``: :meth:`range` answers only the
        *cardinality*; this returns the key slice itself.  Key arrays
        are unbounded-size answers, so they **bypass the result cache**
        entirely — nothing to invalidate, nothing stale to serve.  The
        positions still resolve through the micro-batcher; a write
        landing between the batched position resolve and the slice
        would make the slice stale, so the result is only used when no
        write raced it (the same epoch guard the cache fill uses) and
        the rare raced request retries, falling back to a synchronous
        in-loop scan under sustained write pressure.
        """
        self._maybe_start_background_timers()
        self.stats.request_started()
        try:
            for _ in range(4):
                epoch = self._write_epoch
                if self._slots > 0:
                    self._slots -= 1
                else:
                    await self._take_slot()
                try:
                    first, last = await self.batcher.range(lo, hi)
                finally:
                    self._release_slot()
                if epoch == self._write_epoch:
                    # no await between the check and the slice: the keys
                    # cannot move under a single event loop
                    return self.index.keys[first:last]
            # writes keep racing the batched path: answer synchronously
            # (exact — no suspension point between resolve and slice)
            first_arr, last_arr = self.executor.range_batch([lo], [hi])
            return self.index.keys[int(first_arr[0]):int(last_arr[0])]
        finally:
            self.stats.request_finished()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    async def insert(self, key) -> int:
        """Insert ``key``; pending reads flush first (write barrier).

        With a durability manager attached, the await also covers the
        WAL acknowledgment: under ``sync="group"`` concurrent writers
        ride one leader fsync (see :meth:`_ensure_durable`), so by the
        time this returns the write survives a crash.
        """
        self._maybe_start_background_timers()
        await self.batcher.drain()
        shard = self.index.insert(key)
        await self._ensure_durable()
        return shard

    async def delete(self, key) -> int:
        """Delete one occurrence of ``key``; pending reads flush first.

        Durable on return under the same contract as :meth:`insert`.
        """
        self._maybe_start_background_timers()
        await self.batcher.drain()
        shard = self.index.delete(key)
        await self._ensure_durable()
        return shard

    async def refresh(self) -> None:
        """Fold buffered updates into every shard (no cache impact)."""
        await self.batcher.drain()
        self.index.refresh()

    async def retune(self, tuner=None) -> list[dict]:
        """Run the §3.9 per-shard auto-tuner as an online maintenance pass.

        Drains pending reads first (same barrier as a write) so no
        batch straddles the shard rebuilds, then calls
        :meth:`ShardedIndex.retune
        <repro.engine.sharded.ShardedIndex.retune>` — which sees the
        read/write mix this server's executor and write path have been
        recording per shard.  Retuning preserves the logical key
        sequence, so cached answers stay valid and no invalidation
        happens.  Returns the per-shard action list.
        """
        await self.batcher.drain()
        actions = self.index.retune(tuner)
        self.stats.retunes += 1
        return actions

    async def checkpoint(self) -> dict:
        """Run one incremental checkpoint without stalling the loop.

        The per-shard flush (the slow, fsync-heavy part) runs in a
        worker thread — safe because every engine mutation it performs
        happens under the engine write lock the in-loop write path also
        takes, and reads never see structure move (maintenance is
        deferred for the duration).  The structural catch-up
        (:meth:`ShardedIndex.resume_maintenance`) then runs *on* the
        loop behind a drain, ordered with the lock-free readers like
        any other write.  Returns the published manifest.
        """
        mgr = self.durability
        if mgr is None:
            raise ValueError("this server has no durability manager")
        loop = asyncio.get_running_loop()
        # a failing pass resumes maintenance itself before raising, so
        # no structural work is left pending on the error path
        manifest = await loop.run_in_executor(
            None, lambda: mgr.checkpoint(resume=False)
        )
        await self.batcher.drain()
        self.index.resume_maintenance()
        self.stats.checkpoints += 1
        return manifest

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    async def _ensure_durable(self) -> None:
        """Await the WAL acknowledgment for the write just applied.

        ``sync="always"`` already fsynced inside the write call and
        ``sync="async"`` promises nothing, so only ``"group"`` waits:
        the first writer to arrive becomes the *leader* and runs one
        ``commit()`` in a worker thread; writers landing meanwhile
        await the same task — their records were appended before the
        fsync, so the leader's commit acknowledges them too.  This is
        the group in group commit: N concurrent writers, one fsync.
        """
        mgr = self.durability
        if mgr is None or mgr.sync != "group":
            return
        lsn = mgr.last_lsn
        while mgr.durable_lsn < lsn:
            if self._commit_task is None:
                self._commit_task = asyncio.get_running_loop().create_task(
                    self._group_commit()
                )
            await asyncio.shield(self._commit_task)

    async def _group_commit(self) -> None:
        try:
            await asyncio.get_running_loop().run_in_executor(
                None, self.durability.commit
            )
            self.stats.group_commits += 1
        finally:
            self._commit_task = None

    # ------------------------------------------------------------------
    # background maintenance
    # ------------------------------------------------------------------
    def _maybe_start_background_timers(self) -> None:
        """Start the maintenance timers once a loop exists (lazy, idempotent).

        Construction happens outside any event loop, so the retune and
        checkpoint timers both start on the first served request and
        are cancelled and awaited by :meth:`close`.
        """
        if self._closed:
            return
        if self.retune_interval is not None and self._retune_task is None:
            self._retune_task = asyncio.get_running_loop().create_task(
                self._retune_loop()
            )
        if (
            self.checkpoint_interval is not None
            and self._checkpoint_task is None
        ):
            self._checkpoint_task = asyncio.get_running_loop().create_task(
                self._checkpoint_loop()
            )

    async def _retune_loop(self) -> None:
        """The scheduled maintenance pass: sleep, retune, repeat.

        Runs the same drain-then-retune sequence an explicit
        :meth:`retune` call does, so batches never straddle shard
        rebuilds; each pass is counted in
        ``stats.background_retunes`` (on top of ``stats.retunes``).
        A failing pass stops the timer and is surfaced as
        ``stats.background_retune_errors`` (and ``retune_error``) —
        maintenance must never take the serving path down with it.
        Cancelled — after a final drain — by :meth:`close`.
        """
        while not self._closed:
            await asyncio.sleep(self.retune_interval)
            if self._closed:
                return
            try:
                await self.retune()
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self.retune_error = exc
                self.stats.background_retune_errors += 1
                return
            self.stats.background_retunes += 1

    async def _checkpoint_loop(self) -> None:
        """The scheduled durability pass: sleep, checkpoint, repeat.

        Mirrors :meth:`_retune_loop`: each pass runs the same
        incremental flush an explicit :meth:`checkpoint` call does and
        is counted in ``stats.background_checkpoints``; a failing pass
        stops the timer and is surfaced as ``checkpoint_error`` (and
        ``stats.background_checkpoint_errors``) rather than taking the
        serving path down.  An index drained to empty simply skips the
        pass — the WAL alone keeps it recoverable.
        """
        while not self._closed:
            await asyncio.sleep(self.checkpoint_interval)
            if self._closed:
                return
            if len(self.index) == 0:
                continue
            try:
                await self.checkpoint()
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self.checkpoint_error = exc
                self.stats.background_checkpoint_errors += 1
                return
            self.stats.background_checkpoints += 1

    def _on_write(self, event: WriteEvent) -> None:
        if event.kind in ("refresh", "retune"):
            return  # logical key sequence unchanged: cache stays valid
        self._write_epoch += 1
        dropped_points, dropped_ranges = self.cache.on_write(event)
        self.stats.record_write(dropped_points, dropped_ranges)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _take_slot(self) -> None:
        """Claim a dispatch slot, queueing once ``max_inflight`` is hit."""
        while self._slots <= 0:
            self.stats.backpressure_waits += 1
            waiter = asyncio.Event()
            self._slot_waiters.append(waiter)
            try:
                await waiter.wait()
            except asyncio.CancelledError:
                # don't strand the queue: a wakeup consumed by a
                # cancelled waiter must pass to the next one, and an
                # unconsumed waiter must not absorb a future wakeup
                if waiter.is_set():
                    self._wake_next_waiter()
                else:
                    self._slot_waiters.remove(waiter)
                raise
        self._slots -= 1

    def _wake_next_waiter(self) -> None:
        if self._slot_waiters and self._slots > 0:
            self._slot_waiters.popleft().set()

    def _release_slot(self) -> None:
        self._slots += 1
        self._wake_next_waiter()

    async def drain(self) -> None:
        """Flush the micro-batch queue without writing anything."""
        await self.batcher.drain()

    async def close(self) -> None:
        """Flush pending requests, detach from the index, stop the pool.

        The background retune timer (``retune_interval``) is cancelled
        and awaited first, so no maintenance pass can start after the
        server is closed.
        """
        if self._closed:
            return
        self._closed = True
        timers = [self._retune_task, self._checkpoint_task]
        self._retune_task = self._checkpoint_task = None
        for task in timers:
            if task is not None:
                task.cancel()
        live = [t for t in timers if t is not None]
        if live:
            # gather with return_exceptions: a timer that already died
            # (its failure is recorded in retune_error /
            # checkpoint_error) must not abort the shutdown below
            await asyncio.gather(*live, return_exceptions=True)
        commit = self._commit_task
        if commit is not None:
            # let an in-flight group commit acknowledge its writers
            await asyncio.gather(commit, return_exceptions=True)
        await self.batcher.drain()
        if self.durability is not None:
            # final group fsync: every applied write is durable on close
            await asyncio.get_running_loop().run_in_executor(
                None, self.durability.commit
            )
        self.index.remove_write_listener(self._on_write)
        self.executor.close()

    async def __aenter__(self) -> "IndexServer":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def describe(self) -> str:
        """One-screen server + cache + index summary."""
        info = self.index.build_info()
        head = ", ".join(f"{k}={v}" for k, v in info.items())
        cache = ", ".join(f"{k}={v}" for k, v in self.cache.info().items())
        return f"index: {head}\ncache: {cache}\n{self.stats.describe()}"


# keep the canonical cache-key helper importable from the server module
__all__ = ["IndexServer", "scalar"]
