"""Async serving front end: micro-batching + result caching + telemetry.

Turns the sharded batch engine into something that can take traffic:

>>> from repro.engine import ShardedIndex
>>> from repro.serve import IndexServer
>>> server = IndexServer(ShardedIndex.build(keys, num_shards=8))
>>> position = await server.lookup(q)        # micro-batched + cached
>>> count = await server.range(lo, hi)       # shard-aware cached
>>> await server.insert(new_key)             # drains + invalidates

See :mod:`repro.serve.server` for the coherence model,
:mod:`repro.serve.batcher` for the time/size flush policy and
:mod:`repro.serve.cache` for why point and range answers invalidate
differently under writes.
"""

from .batcher import KINDS, BatchQueue, MicroBatcher, Request
from .cache import ResultCache, scalar
from .server import IndexServer
from .stats import ServerStats

__all__ = [
    "BatchQueue",
    "IndexServer",
    "KINDS",
    "MicroBatcher",
    "Request",
    "ResultCache",
    "ServerStats",
    "scalar",
]
