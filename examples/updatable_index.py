"""The paper's §6 future work, working: updates via Fenwick drift tracking.

"One idea is to capture the drifts in data distribution using
update-tracking segments, and use Fenwick trees to estimate and correct
the drifts in both the model and the Shift-Table."  This example builds
that design: a static IM+Shift-Table index absorbs a stream of inserts
into a delta buffer while a Fenwick tree tracks how far each base
position has drifted, keeping merged-view lookups exact the whole time.

Run:  python examples/updatable_index.py
"""

import time

import numpy as np

from repro import (
    CorrectedIndex,
    InterpolationModel,
    ShiftTable,
    SortedData,
    UpdatableCorrectedIndex,
)
from repro.bench.workload import env_num_keys
from repro.datasets import load


def main() -> None:
    n = min(env_num_keys(), 500_000)
    keys = load("wiki64", n)
    data = SortedData(keys, name="wiki64")
    model = InterpolationModel(keys)
    base = CorrectedIndex(data, model, ShiftTable.build(keys, model))
    index = UpdatableCorrectedIndex(base, merge_threshold=10_000)
    print(f"static base: {n:,} keys ({base.name})")

    rng = np.random.default_rng(3)
    lo, hi = int(keys.min()), int(keys.max())
    inserts = (lo + (rng.random(5_000) * (hi - lo)).astype(np.uint64)).astype(
        keys.dtype
    )
    t0 = time.perf_counter()
    for key in inserts:
        index.insert(key)
    took = time.perf_counter() - t0
    print(f"inserted {len(inserts):,} keys in {took:.2f}s "
          f"({took / len(inserts) * 1e6:.0f} µs each)")

    # the Fenwick tree reports how far the static model has drifted
    quarter = len(keys) // 4
    for pos in (quarter, 2 * quarter, 3 * quarter, len(keys)):
        print(f"  drift before base position {pos:>9,}: "
              f"{index.merged_shift(pos):,} inserted keys")

    # merged-view lookups stay exact throughout
    merged = index.merged_keys()
    probes = rng.choice(merged, 3_000)
    expected = np.searchsorted(merged, probes, side="left")
    got = np.asarray([index.lookup(q) for q in probes])
    assert np.array_equal(got, expected)
    print(f"verified {len(probes):,} merged-view lookups; "
          f"pending buffer: {index.pending_inserts:,} "
          f"(merge due: {index.needs_merge()})")


def compare_with_gapped() -> None:
    """Contrast the Fenwick/delta design with the ALEX-style gapped array."""
    from repro.core.gapped import GappedLearnedIndex

    n = min(env_num_keys(), 200_000)
    keys = load("wiki64", n)
    rng = np.random.default_rng(4)
    lo, hi = int(keys.min()), int(keys.max())
    inserts = (lo + (rng.random(2_000) * (hi - lo)).astype(np.uint64)).astype(
        keys.dtype
    )

    gapped = GappedLearnedIndex(keys, density=0.75)
    t0 = time.perf_counter()
    shifts = [gapped.insert(k) for k in inserts]
    gap_s = time.perf_counter() - t0
    print(f"\ngapped-array design ({n:,} keys, 25% slack):")
    print(f"  {len(inserts):,} inserts in {gap_s:.2f}s "
          f"({gap_s / len(inserts) * 1e6:.0f} µs each, "
          f"mean {np.mean(shifts):.1f} slots shifted)")
    merged = np.sort(np.concatenate([keys, inserts]))
    probes = rng.choice(merged, 1_000)
    got = np.asarray([gapped.rank(q) for q in probes])
    assert np.array_equal(got, np.searchsorted(merged, probes))
    print("  merged-view ranks verified — same guarantee, different cost "
          "profile (in-place shifts vs buffer + Fenwick)")


if __name__ == "__main__":
    main()
    compare_with_gapped()
