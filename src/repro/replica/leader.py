"""Leader half of replication: segment shipping + WAL-tail streaming.

Two services share one framed TLV connection per follower
(:mod:`repro.net.protocol`):

* :class:`SegmentShipper` — serves the published checkpoint generation
  (segments + manifest) in chunked, checksum-verifiable fetches.  A
  follower's ``repl_manifest`` pins the generation against checkpoint
  GC (:meth:`~repro.engine.durability.DurabilityManager.pin_current`)
  so the files it is mid-fetch can never vanish under it; pins release
  on ``repl_unpin`` and on disconnect.
* :class:`WalStreamer` — tails committed WAL records to subscribed
  followers.  Records are captured at the engine apply point (a
  :meth:`~repro.engine.durability.DurabilityManager.add_record_listener`
  tap fires under the owning shard's write lock), reassembled into
  contiguous LSN order by a bounded :class:`_RecordBuffer`, and pushed
  as columnar frames — only records at or below ``durable_lsn``, so a
  follower never applies a write the leader could lose in a crash.

``repl_subscribe`` decides *resume vs. resync*: if the on-disk WAL
still holds every record past the follower's cursor (``from_lsn``),
the backlog streams and live pushes take over; a gap (the leader GC'd
the needed generations — see ``keep_generations``) or a cursor ahead
of the leader (diverged history) answers ``mode="resync"`` and the
follower re-ships the whole generation instead.

Op table (requests are ``{"op", "id", ...}`` dicts; pushes carry a
``"kind"`` and no id):

==================  ==================================================
``repl_hello``      → generation, last/durable LSN, key dtype, size
``repl_manifest``   pin + return the published manifest and file sizes
``repl_fetch``      ``name``, ``offset`` → one chunk of a pinned segment
``repl_subscribe``  ``from_lsn`` → ``mode="stream"`` (backlog pushed)
                    or ``mode="resync"``
``repl_ack``        follower progress report (no response)
``repl_unpin``      release this connection's generation pin
==================  ==================================================
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

import numpy as np

from ..engine.wal import read_wal
from ..net.ops import error_response
from ..net.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)
from ..serve.stats import ServerStats

__all__ = ["ReplicationServer", "SegmentShipper", "WalStreamer"]

#: records per pushed WAL frame (8192 * ~21 bytes ≈ 172 KiB, far under
#: the frame limit even for 8-byte keys)
DEFAULT_BATCH_RECORDS = 8192

#: per-connection transport write-buffer high water: stop pushing to a
#: follower that stopped reading instead of buffering without bound
_HIGH_WATER = 32 * 1024 * 1024


def _read_chunk(path: Path, offset: int, size: int) -> tuple[bytes, int]:
    """One ``(chunk, total file size)`` read (sync; run in an executor)."""
    with open(path, "rb") as fh:
        fh.seek(0, 2)
        total = fh.tell()
        fh.seek(offset)
        data = fh.read(size)
    return data, total


class _RecordBuffer:
    """Bounded in-memory WAL tail, reassembled into contiguous LSN order.

    Record listeners fire per append under the owning shard's write
    lock, so concurrent distinct-shard writers deliver out of LSN
    order; the buffer keys by LSN and :meth:`run_from` hands out only
    *contiguous* runs, restoring the total order followers apply.
    ``floor`` is the highest LSN the buffer no longer holds — a
    subscriber whose cursor falls below it missed evicted records and
    must resync from disk (or re-ship the generation).
    """

    def __init__(self, floor: int, capacity: int) -> None:
        self.capacity = capacity
        self.floor = floor
        self._lock = threading.Lock()
        self._records: dict[int, tuple[int, int, object]] = {}

    def add(self, lsn: int, op: int, shard: int, key) -> None:
        with self._lock:
            if lsn <= self.floor:
                return
            self._records[lsn] = (op, shard, key)
            while len(self._records) > self.capacity:
                oldest = min(self._records)
                del self._records[oldest]
                if oldest > self.floor:
                    self.floor = oldest

    def run_from(self, after_lsn: int, upto_lsn: int,
                 limit: int) -> list[tuple[int, int, int, object]]:
        """The contiguous run past ``after_lsn``, capped at ``limit``."""
        out: list[tuple[int, int, int, object]] = []
        with self._lock:
            lsn = after_lsn + 1
            while lsn <= upto_lsn and len(out) < limit:
                rec = self._records.get(lsn)
                if rec is None:
                    break
                out.append((lsn, rec[0], rec[1], rec[2]))
                lsn += 1
        return out


class _Follower:
    """Per-connection replication state (one subscribed follower)."""

    def __init__(self, fid: int, rec, writer: asyncio.StreamWriter) -> None:
        self.fid = fid
        self.rec = rec  # FollowerStats
        self.writer = writer
        self.streaming = False
        self.sent_lsn = 0
        self.pin_token: int | None = None
        self.manifest: dict | None = None


class SegmentShipper:
    """Serves pinned checkpoint generations in chunked segment fetches."""

    def __init__(self, manager, *, chunk_bytes: int = 256 * 1024) -> None:
        self.manager = manager
        self.chunk_bytes = chunk_bytes

    async def manifest(self, follower: _Follower) -> dict:
        """Pin the published generation for ``follower`` and describe it."""
        self.release(follower)
        token, manifest = self.manager.pin_current()
        follower.pin_token = token
        follower.manifest = manifest
        loop = asyncio.get_running_loop()
        sizes = await loop.run_in_executor(
            None, self._sizes, list(manifest["segments"]))
        return {"manifest": manifest, "sizes": sizes}

    def _sizes(self, names: list[str]) -> dict[str, int]:
        root = self.manager.root
        return {name: (root / name).stat().st_size for name in names}

    async def fetch(self, follower: _Follower, name, offset) -> dict:
        """One chunk of a pinned segment file: ``{data, eof, size}``.

        Only names listed in this follower's pinned manifest are
        servable — the whitelist is also what makes the path safe (no
        client-supplied path ever reaches the filesystem).
        """
        if not isinstance(name, str) or not isinstance(offset, int) \
                or offset < 0:
            raise ValueError("repl_fetch needs a segment name and a "
                             "non-negative integer offset")
        manifest = follower.manifest
        if follower.pin_token is None or manifest is None \
                or name not in manifest["segments"]:
            raise ValueError(
                f"segment {name!r} is not in this connection's pinned "
                "generation (call repl_manifest first)")
        loop = asyncio.get_running_loop()
        data, total = await loop.run_in_executor(
            None, _read_chunk, self.manager.root / name, offset,
            self.chunk_bytes)
        follower.rec.ship_bytes += len(data)
        return {"data": data, "eof": offset + len(data) >= total,
                "size": total}

    def release(self, follower: _Follower) -> None:
        """Drop the follower's generation pin (idempotent)."""
        if follower.pin_token is not None:
            self.manager.unpin(follower.pin_token)
            follower.pin_token = None
            follower.manifest = None


class WalStreamer:
    """Tails committed WAL records to subscribed followers.

    :meth:`subscribe` resolves a follower's cursor against the on-disk
    WAL (resume vs. resync) and pushes the backlog; :meth:`tick` —
    driven by the server's flush loop — pushes whatever contiguous,
    durable records accumulated in the in-memory buffer since.
    """

    def __init__(self, manager, *,
                 buffer_records: int = 65536,
                 batch_records: int = DEFAULT_BATCH_RECORDS,
                 max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.manager = manager
        self.batch_records = batch_records
        self.max_frame = max_frame
        self.buffer = _RecordBuffer(floor=0, capacity=buffer_records)
        self._attached = False

    # ------------------------------------------------------------------
    # record capture
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Start capturing records at the engine apply point."""
        if self._attached:
            return
        self.manager.add_record_listener(self._on_record)
        # records at or below the floor predate the tap; subscribers
        # needing them read the on-disk backlog at subscribe time
        self.buffer.floor = max(self.buffer.floor, self.manager.last_lsn)
        self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.manager.remove_record_listener(self._on_record)
            self._attached = False

    def _on_record(self, lsn: int, op: int, shard: int, key) -> None:
        # fires under the owning shard's write lock: just buffer it
        self.buffer.add(lsn, op, shard, key)

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------
    async def subscribe(self, follower: _Follower, from_lsn: int) -> dict:
        """Resume the stream past ``from_lsn``, or demand a resync."""
        follower.streaming = False
        manager = self.manager
        loop = asyncio.get_running_loop()
        # one commit so the on-disk WAL holds every acknowledged record
        await loop.run_in_executor(None, manager.commit)
        head = manager.durable_lsn
        if from_lsn > head:
            follower.rec.resyncs += 1
            return {"mode": "resync",
                    "reason": f"follower LSN {from_lsn} is ahead of the "
                              f"leader ({head}) — diverged history"}
        records = []
        if from_lsn < head:
            records = await loop.run_in_executor(
                None, self._disk_backlog, from_lsn)
            if not records or records[0].lsn != from_lsn + 1:
                follower.rec.resyncs += 1
                return {"mode": "resync",
                        "reason": f"records past LSN {from_lsn} were "
                                  "garbage-collected (raise "
                                  "keep_generations to resume farther "
                                  "back)"}
        follower.rec.subscribed_from = from_lsn
        key_dtype = manager.wal.key_dtype
        sent = from_lsn
        for start in range(0, len(records), self.batch_records):
            chunk = records[start:start + self.batch_records]
            self._push_frame(follower, _wal_frame(
                [r.lsn for r in chunk], [r.op for r in chunk],
                [r.shard for r in chunk], [r.key for r in chunk],
                key_dtype))
            sent = chunk[-1].lsn
            await follower.writer.drain()
        follower.sent_lsn = sent
        follower.streaming = True
        return {"mode": "stream", "start_lsn": from_lsn + 1,
                "last_lsn": manager.last_lsn}

    def _disk_backlog(self, from_lsn: int):
        records, _torn = read_wal(self.manager.root / "wal")
        return [r for r in records if r.lsn > from_lsn]

    # ------------------------------------------------------------------
    # live pushes
    # ------------------------------------------------------------------
    def tick(self, follower: _Follower) -> int:
        """Push contiguous durable records past the follower's cursor.

        Returns the number of records pushed.  A cursor that fell below
        the buffer floor (eviction outran this follower) downgrades it
        to ``resync`` — it will re-subscribe and resolve against disk.
        """
        if not follower.streaming:
            return 0
        transport = follower.writer.transport
        if transport is None \
                or transport.get_write_buffer_size() > _HIGH_WATER:
            return 0
        if follower.sent_lsn < self.buffer.floor:
            follower.streaming = False
            follower.rec.resyncs += 1
            self._push_frame(follower, {"kind": "resync"})
            return 0
        upto = self.manager.durable_lsn
        key_dtype = self.manager.wal.key_dtype
        pushed = 0
        while True:
            run = self.buffer.run_from(
                follower.sent_lsn, upto, self.batch_records)
            if not run:
                break
            self._push_frame(follower, _wal_frame(
                [r[0] for r in run], [r[1] for r in run],
                [r[2] for r in run], [r[3] for r in run], key_dtype))
            follower.rec.streamed_records += len(run)
            follower.sent_lsn = run[-1][0]
            pushed += len(run)
            if transport.get_write_buffer_size() > _HIGH_WATER:
                break
        return pushed

    def _push_frame(self, follower: _Follower, payload: dict) -> None:
        data = encode_frame(payload, self.max_frame)
        follower.rec.stream_bytes += len(data)
        if not follower.writer.is_closing():
            follower.writer.write(data)


def _wal_frame(lsns, ops, shards, keys, key_dtype: np.dtype) -> dict:
    """Columnar push frame for one run of WAL records."""
    return {
        "kind": "wal",
        "lsn": np.asarray(lsns, dtype=np.uint64),
        "op": np.asarray(ops, dtype=np.uint8),
        "shard": np.asarray(shards, dtype=np.uint32),
        "key": np.asarray(keys, dtype=key_dtype),
    }


class ReplicationServer:
    """TCP replication endpoint over one leader's durability manager.

    Wraps a :class:`~repro.engine.durability.DurabilityManager` (the
    index keeps serving through whatever front end it already has) and
    speaks the op table in the module docstring.  Follower health
    lands in ``stats.followers`` (:class:`~repro.serve.stats.FollowerStats`)
    — pass the serving tier's :class:`~repro.serve.stats.ServerStats`
    to surface replication in its snapshot, or let it create its own.
    """

    def __init__(
        self,
        manager,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        stats: ServerStats | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        flush_interval: float = 0.02,
        heartbeat_interval: float = 1.0,
        buffer_records: int = 65536,
        chunk_bytes: int = 256 * 1024,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.stats = stats if stats is not None else ServerStats()
        self.max_frame = max_frame
        self.flush_interval = flush_interval
        self.heartbeat_interval = heartbeat_interval
        self.shipper = SegmentShipper(manager, chunk_bytes=chunk_bytes)
        self.streamer = WalStreamer(
            manager, buffer_records=buffer_records, max_frame=max_frame)
        self._followers: dict[int, _Follower] = {}
        self._server: asyncio.base_events.Server | None = None
        self._flusher: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Attach the WAL tap, bind, start the flush loop."""
        self.streamer.attach()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._flusher = asyncio.create_task(self._flush_loop())
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def close(self) -> None:
        """Stop the flusher, detach the tap, drop every follower."""
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except (asyncio.CancelledError, Exception):
                pass
            self._flusher = None
        self.streamer.detach()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for follower in list(self._followers.values()):
            follower.writer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        self._followers.clear()

    async def __aenter__(self) -> "ReplicationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # flush loop
    # ------------------------------------------------------------------
    async def _flush_loop(self) -> None:
        loop = asyncio.get_running_loop()
        last_hb = loop.time()
        while True:
            await asyncio.sleep(self.flush_interval)
            manager = self.manager
            if manager.needs_commit:
                try:
                    await loop.run_in_executor(None, manager.commit)
                except Exception:
                    continue  # manager closing mid-shutdown
            hb_due = loop.time() - last_hb >= self.heartbeat_interval
            for follower in list(self._followers.values()):
                try:
                    self.streamer.tick(follower)
                    if hb_due and follower.streaming:
                        self.streamer._push_frame(follower, {
                            "kind": "hb",
                            "last_lsn": manager.last_lsn,
                            "durable_lsn": manager.durable_lsn,
                            "generation": manager.generation,
                        })
                except (ConnectionError, OSError):
                    follower.streaming = False
            if hb_due:
                last_hb = loop.time()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        fid, rec = self.stats.open_follower(str(peer))
        follower = _Follower(fid, rec, writer)
        self._followers[fid] = follower
        self._conn_tasks.add(asyncio.current_task())
        decoder = FrameDecoder(self.max_frame)
        try:
            while True:
                data = await reader.read(1 << 16)
                if not data:
                    break
                try:
                    msgs = decoder.feed(data)
                except ProtocolError as exc:
                    self._reply(follower, {
                        "id": None, "ok": False,
                        "error": "ProtocolError", "message": str(exc),
                    })
                    break
                for msg in msgs:
                    await self._handle(follower, msg)
                await writer.drain()
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError, TimeoutError,
                OSError):
            pass
        finally:
            self._conn_tasks.discard(asyncio.current_task())
            follower.streaming = False
            self._followers.pop(fid, None)
            self.shipper.release(follower)
            self.stats.close_follower(fid)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle(self, follower: _Follower, msg) -> None:
        if not isinstance(msg, dict) or not isinstance(msg.get("op"), str):
            self._reply(follower, {
                "id": None, "ok": False, "error": "ProtocolError",
                "message": "request must be a dict with a string 'op'",
            })
            return
        op = msg["op"]
        rid = msg.get("id")
        manager = self.manager
        try:
            if op == "repl_hello":
                r: object = {
                    "generation": manager.generation,
                    "last_lsn": manager.last_lsn,
                    "durable_lsn": manager.durable_lsn,
                    "key_dtype": manager.wal.key_dtype.str,
                    "keys": len(manager.index),
                }
            elif op == "repl_manifest":
                r = await self.shipper.manifest(follower)
            elif op == "repl_fetch":
                r = await self.shipper.fetch(
                    follower, msg.get("name"), msg.get("offset"))
            elif op == "repl_subscribe":
                r = await self.streamer.subscribe(
                    follower, int(msg.get("from_lsn", 0)))
            elif op == "repl_ack":
                acked = int(msg.get("lsn", 0))
                follower.rec.acked_lsn = max(follower.rec.acked_lsn, acked)
                follower.rec.lag_lsn = max(0, manager.last_lsn - acked)
                follower.rec.lag_s = float(msg.get("lag_s", 0.0))
                return  # fire-and-forget: no response frame
            elif op == "repl_unpin":
                self.shipper.release(follower)
                r = True
            else:
                raise ValueError(f"unknown replication op {op!r}")
        except Exception as exc:
            self._reply(follower, error_response(rid, exc))
            return
        self._reply(follower, {"id": rid, "ok": True, "r": r})

    def _reply(self, follower: _Follower, payload: dict) -> None:
        try:
            data = encode_frame(payload, self.max_frame)
        except ProtocolError as exc:
            data = encode_frame(
                error_response(payload.get("id"), exc), self.max_frame)
        if not follower.writer.is_closing():
            follower.writer.write(data)

    def describe(self) -> dict:
        """One-line health dict: address, followers, stream state."""
        return {
            "address": list(self.address),
            "followers": len(self._followers),
            "streaming": sum(
                1 for f in self._followers.values() if f.streaming),
            "buffer_floor": self.streamer.buffer.floor,
            "last_lsn": self.manager.last_lsn,
            "durable_lsn": self.manager.durable_lsn,
            "generation": self.manager.generation,
        }
