"""Lint fixture: lock-disciplined code that must produce zero findings.

This file is never imported, only parsed.
"""

import threading

from repro.engine.locks import EngineWriteLock
from repro.engine.sharded import WriteEvent


class Engine:
    def __init__(self):
        self._write_lock = threading.RLock()
        self._count = 0

    def insert(self, key):
        with self._write_lock:
            self._count += 1
            self._maybe_split()
            return WriteEvent("insert", 0, key)

    def _maybe_split(self):
        # private helper called only under the lock: locked-only, so its
        # own mutations of protected state are fine
        self._count += 0

    def snapshot(self):
        with self._write_lock:
            self._count += 0
            return self._count


def emit_locked(index, key):
    with index._write_lock:
        return WriteEvent("insert", 0, key)


class ShardedEngine:
    """Two-level lock discipline: shared fast path done right."""

    def __init__(self):
        self._write_lock = EngineWriteLock()
        self._meta_lock = threading.RLock()
        self._dirty = False
        self.offsets = [0]

    def split(self):
        # exclusive mode licenses structural state
        with self._write_lock:
            self.offsets = [0, 1]
            self._dirty = True
            return WriteEvent("insert", 0, 1)

    def insert_fast(self, shard, key):
        # shared mode + the shard's own lock covers per-shard content;
        # cross-shard metadata moves under the meta lock
        with self._write_lock.shared():
            with shard.lock:
                shard.insert(key)
                with self._meta_lock:
                    self._dirty = True
                    return WriteEvent("insert", 0, key)
