"""F2 — Figure 2: cost of the last-mile search vs prediction error.

Reproduces both panels: (a) lookup time and (b) LLC misses per lookup,
for linear / exponential / bounded-binary local search, full binary
search without a model, FAST, and the DRAM-latency floor.
"""

from conftest import run_once

from repro.bench.experiments import fig2_local_search
from repro.bench.figures import ascii_chart, series_from_rows
from repro.bench.reporting import format_table


def test_fig2_local_search(benchmark):
    rows = run_once(benchmark, fig2_local_search)

    by_method: dict[str, dict[int, dict]] = {}
    errors = sorted({r["error"] for r in rows if r["error"] is not None})
    for r in rows:
        if r["error"] is not None:
            by_method.setdefault(r["method"], {})[r["error"]] = r

    for metric, title in (("ns", "Figure 2a — lookup time (ns)"),
                          ("llc_misses", "Figure 2b — LLC misses")):
        table = [
            [method] + [series.get(e, {}).get(metric, float("nan"))
                        for e in errors]
            for method, series in sorted(by_method.items())
        ]
        print()
        print(format_table(["method"] + [str(e) for e in errors], table,
                           title=title))

    dram = next(r["ns"] for r in rows if r["method"] == "DRAM latency")
    print(f"\nDRAM latency floor: {dram:.0f} ns")
    chart_rows = [r for r in rows if r["error"] is not None]
    print()
    print(ascii_chart(
        series_from_rows(chart_rows, "method", "error", "ns"),
        title="Figure 2a (log-log): local-search ns vs error",
    ))

    linear = by_method["Linear"]
    binary = by_method["Binary"]
    exp = by_method["Exponential"]
    fast_ns = next(iter(by_method["FAST"].values()))["ns"]

    # paper shapes: linear degrades fastest; bounded binary slowest;
    # FAST is flat and crosses linear/exponential in the hundreds region
    assert linear[errors[-1]]["ns"] > binary[errors[-1]]["ns"]
    assert binary[errors[0]]["ns"] < fast_ns
    assert linear[errors[-1]]["ns"] > fast_ns
    assert exp[errors[-1]]["ns"] > fast_ns

    def crossover(series):
        for e in errors:
            if series[e]["ns"] > fast_ns:
                return e
        return None

    print(f"FAST({fast_ns:.0f}ns) crossovers: "
          f"linear at {crossover(linear)}, exponential at {crossover(exp)}, "
          f"binary at {crossover(binary)} (paper: ~300 / ~300 / ~1000)")

    benchmark.extra_info["series"] = {
        m: {str(e): round(r["ns"], 1) for e, r in s.items()}
        for m, s in by_method.items()
    }
