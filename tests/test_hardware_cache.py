"""Unit tests for the LRU cache level."""

import pytest

from repro.hardware.cache import LRUCacheLevel


def test_miss_then_hit():
    level = LRUCacheLevel(capacity_lines=4, latency_ns=1.0)
    assert not level.lookup(10)
    level.fill(10)
    assert level.lookup(10)
    assert level.hits == 1
    assert level.misses == 1


def test_eviction_is_lru_order():
    level = LRUCacheLevel(capacity_lines=2, latency_ns=1.0)
    level.fill(1)
    level.fill(2)
    level.fill(3)  # evicts 1
    assert 1 not in level
    assert 2 in level and 3 in level


def test_hit_promotes_line():
    level = LRUCacheLevel(capacity_lines=2, latency_ns=1.0)
    level.fill(1)
    level.fill(2)
    assert level.lookup(1)  # 1 becomes MRU
    level.fill(3)  # evicts 2, not 1
    assert 1 in level
    assert 2 not in level


def test_fill_existing_promotes_without_eviction():
    level = LRUCacheLevel(capacity_lines=2, latency_ns=1.0)
    level.fill(1)
    level.fill(2)
    level.fill(1)  # already present: promote, no eviction
    assert len(level) == 2
    level.fill(3)  # evicts 2 (LRU after 1's promotion)
    assert 1 in level and 2 not in level


def test_capacity_never_exceeded():
    level = LRUCacheLevel(capacity_lines=8, latency_ns=1.0)
    for line in range(100):
        level.fill(line)
    assert len(level) == 8


def test_flush_clears_lines_keeps_stats():
    level = LRUCacheLevel(capacity_lines=4, latency_ns=1.0)
    level.fill(1)
    level.lookup(1)
    level.flush()
    assert 1 not in level
    assert level.hits == 1


def test_fill_many():
    level = LRUCacheLevel(capacity_lines=4, latency_ns=1.0)
    level.fill_many(range(10))
    assert len(level) == 4
    assert all(line in level for line in (6, 7, 8, 9))


def test_reset_stats():
    level = LRUCacheLevel(capacity_lines=4, latency_ns=1.0)
    level.lookup(1)
    level.fill(1)
    level.lookup(1)
    level.reset_stats()
    assert level.hits == 0 and level.misses == 0
    assert 1 in level  # contents survive a stats reset


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCacheLevel(capacity_lines=0, latency_ns=1.0)
