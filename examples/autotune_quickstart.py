"""Auto-tuning quickstart: the §3.9 cost model picks per-shard configs.

Builds a key space whose ranges follow *different* distributions, lets
``ShardedIndex.build(auto_tune=True)`` choose each shard's model family
and layer mode from its local slice, then drives a write-heavy workload
at one region and calls ``retune()`` — the tuner sees the observed
read/write mix and moves the hot shard onto a write-optimised backend.
Every answer is checked against ``np.searchsorted`` on the live keys.

Run:  PYTHONPATH=src python examples/autotune_quickstart.py
"""

import numpy as np

from repro.bench.autotune import multi_distribution_keys
from repro.engine import BatchExecutor, ShardedIndex


def check(executor, live, queries) -> None:
    """Raise unless the engine matches the searchsorted oracle."""
    got = executor.lookup_batch(queries)
    assert np.array_equal(got, np.searchsorted(live, queries, side="left"))


def main() -> None:
    # 1. a skewed multi-distribution key space: dense-uniform, lognormal
    #    and clustered segments occupy disjoint key ranges
    keys = multi_distribution_keys(60_000, seed=7)
    rng = np.random.default_rng(7)

    # 2. build with auto-tuning: each shard gets the model + layer the
    #    §3.9 cost model predicts fastest for ITS slice
    index = ShardedIndex.build(keys, num_shards=6, auto_tune=True)
    executor = BatchExecutor(index)
    print("per-shard decisions at build time:")
    for s in index._nonempty:
        shard = index.shards[int(s)]
        print(f"  shard {int(s)}: {len(shard):>7,} keys -> "
              f"{shard.decision_label}")

    queries = rng.choice(keys, 20_000)
    check(executor, keys, queries)
    print("\nread phase: 20,000 lookups, oracle-exact")

    # 3. hammer one region with writes; the engine's per-shard counters
    #    record the mix (reads from the executor, writes from routing)
    hot_shard = int(index._nonempty[0])
    hot_min = index.shards[hot_shard].min_key()
    for key in rng.integers(int(hot_min), int(hot_min) + 10_000,
                            2_000).astype(np.uint64):
        index.insert(key)

    # 4. retune: the hot shard's observed write fraction justifies a
    #    write-optimised backend; cold shards keep their configs
    actions = index.retune()
    print("\nretune actions:")
    for a in actions:
        print(f"  shard {a['shard']}: {a['action']:>8} -> {a['label']}")

    live = np.sort(index.keys)
    check(executor, live, queries)
    print("\npost-retune: same queries, still oracle-exact")
    print("\nEXPLAIN after retune (origin + tuner-decision columns):")
    print(executor.explain(queries[:512]))


if __name__ == "__main__":
    main()
