"""Unit tests for MachineSpec."""

import pytest

from repro.hardware.machine import PAPER_NUM_KEYS, MachineSpec


def test_paper_machine_matches_section4():
    m = MachineSpec.paper()
    assert m.l1_bytes == 32 * 1024
    assert m.l2_bytes == 256 * 1024
    assert m.l3_bytes == 8 * 1024 * 1024
    assert m.dram_ns == 36.0  # Intel MLC measurement from §4


def test_line_counts():
    m = MachineSpec.paper()
    assert m.l1_lines == 512
    assert m.l3_lines == 131072


def test_scaled_for_preserves_ratio():
    m = MachineSpec.paper()
    scaled = m.scaled_for(PAPER_NUM_KEYS // 100)
    assert scaled.l3_bytes == pytest.approx(m.l3_bytes / 100, rel=0.05)
    assert scaled.dram_ns == m.dram_ns  # latencies unchanged


def test_scaled_for_full_size_is_identity():
    m = MachineSpec.paper()
    assert m.scaled_for(PAPER_NUM_KEYS) is m
    assert m.scaled_for(PAPER_NUM_KEYS * 2) is m


def test_scaled_for_floors_tiny_caches():
    m = MachineSpec.paper()
    scaled = m.scaled_for(1000)
    assert scaled.l1_bytes >= 8 * scaled.line_size
    assert scaled.l1_bytes <= scaled.l2_bytes <= scaled.l3_bytes


def test_scaled_for_rejects_nonpositive():
    with pytest.raises(ValueError):
        MachineSpec.paper().scaled_for(0)


def test_validation_rejects_bad_line_size():
    with pytest.raises(ValueError):
        MachineSpec(line_size=48)


def test_validation_rejects_inverted_cache_sizes():
    with pytest.raises(ValueError):
        MachineSpec(l1_bytes=1 << 20, l2_bytes=1 << 10)


def test_validation_rejects_nonpositive_latency():
    with pytest.raises(ValueError):
        MachineSpec(dram_ns=0.0)
