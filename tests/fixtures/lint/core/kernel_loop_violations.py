"""Lint fixture: RPR5xx unregistered-lane-loop violations.

Each offending line carries a trailing ``# expect: RPRxxx`` marker;
``tests/test_analysis.py`` asserts the linter reports exactly those.
This file is never imported, only parsed.
"""

import numpy as np


def lookup_batch_slow(index, queries):
    out = np.empty(len(queries), dtype=np.int64)
    for i, q in enumerate(queries):  # expect: RPR501
        out[i] = index.lookup(q)
    return out


def predict_all(model, keys):
    return [model.predict(k) for k in keys]  # expect: RPR501


def windows_inline(data, queries):
    return list(np.searchsorted(data, q) for q in queries)  # expect: RPR501


def per_key_scan(keys):
    total = 0
    for k in keys[:128]:  # expect: RPR501
        total += int(k)
    return total
