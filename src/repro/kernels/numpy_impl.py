"""Pure-numpy kernel implementations (the guaranteed fallback).

Every function mirrors a :mod:`repro.kernels.cpu` kernel with the *same
signature* (preallocated int64/float64 ``out``), so the registry can swap
backends without callers caring which one is live, and the parity suite
can run the interpreted per-lane kernels against these array passes
input-for-input.

The search kernels are the engine's original lane-parallel
implementations (formerly in :mod:`repro.search.batch`): every numpy pass
halves all still-open windows at once, so a batch resolves in
``O(log max_window)`` vectorised passes regardless of batch size.  The
predict/fused mirrors compose the exact expressions the model classes use
in ``predict_pos_batch`` — same float64 operation order, so results are
bit-identical to the model-object path.
"""

from __future__ import annotations

import numpy as np


# ----------------------------------------------------------------------
# search
# ----------------------------------------------------------------------
def _lanes_lower_bound(data, queries, lo, hi):
    """Lane-parallel bounded binary search (int64 ``lo``/``hi`` copies)."""
    lo = lo.copy()
    hi = hi.copy()
    if lo.size == 0:
        return lo
    while True:
        active = lo < hi
        if not active.any():
            return lo
        mid = (lo + hi) >> 1
        # inactive lanes probe index 0 (masked out below) so fancy
        # indexing never reads past the array
        probe = np.where(active, mid, 0)
        go_right = active & (data[probe] < queries)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)


def bounded_search(data, queries, lo, hi, out):
    """Per-lane lower bound within ``[lo[i], hi[i])`` (pre-clipped)."""
    out[:] = _lanes_lower_bound(data, queries, lo, hi)
    return out


def _validated(data, queries, lo, hi):
    """Bounded lanes plus the §3.8 edge-validation fallback."""
    n = len(data)
    result = _lanes_lower_bound(data, queries, lo, hi)
    if result.size == 0:
        return result
    # left edge: pinned at the window start, but the predecessor already
    # satisfies >= q, so the true lower bound is further left
    left = (result == lo) & (lo > 0)
    if left.any():
        left &= data[np.maximum(lo - 1, 0)] >= queries
    # right edge: exhausted the window, but the next record is still < q
    right = (result == hi) & (hi < n)
    if right.any():
        right &= data[np.minimum(hi, n - 1)] < queries
    violated = left | right
    if violated.any():
        result[violated] = np.searchsorted(
            data, queries[violated], side="left"
        )
    return result


def validated_search(data, queries, starts, widths, out):
    """Window search with §3.8 edge validation (exact results)."""
    n = len(data)
    lo = np.clip(starts, 0, n)
    hi = np.clip(starts + widths + 1, lo, n)
    out[:] = _validated(data, queries, lo, hi)
    return out


# ----------------------------------------------------------------------
# predict (array mirrors of the model classes' predict_pos_batch)
# ----------------------------------------------------------------------
def predict_interpolation(keys, kmin, scale, out):
    out[:] = (keys.astype(np.float64) - kmin) * scale
    return out


def predict_affine(keys, slope, intercept, out):
    out[:] = slope * keys.astype(np.float64) + intercept
    return out


def predict_rmi_linear(keys, a, b, slopes, intercepts, nleaves, leaf, out):
    x = keys.astype(np.float64)
    leaf[:] = np.clip(a * x + b, 0, nleaves - 1).astype(np.int64)
    out[:] = slopes[leaf] * x + intercepts[leaf]
    return out


def predict_rmi_cubic(keys, c3, c2, c1, c0, kmin, span, slopes, intercepts,
                      nleaves, leaf, out):
    x = keys.astype(np.float64)
    t = (x - kmin) / span
    raw = ((c3 * t + c2) * t + c1) * t + c0
    leaf[:] = np.clip(raw, 0, nleaves - 1).astype(np.int64)
    out[:] = slopes[leaf] * x + intercepts[leaf]
    return out


def predict_rmi_radix_signed(keys, base, shift, slopes, intercepts, nleaves,
                             leaf, out):
    raw = (
        (np.maximum(keys.astype(np.int64) - base, 0)) >> shift
    ).astype(np.float64)
    leaf[:] = np.clip(raw, 0, nleaves - 1).astype(np.int64)
    out[:] = slopes[leaf] * keys.astype(np.float64) + intercepts[leaf]
    return out


def predict_rmi_radix_unsigned(keys, base, shift, slopes, intercepts,
                               nleaves, leaf, out):
    # stay in uint64: keys >= 2^63 would wrap through int64
    k = keys.astype(np.uint64)
    b = np.uint64(base)
    diff = np.where(k > b, k - b, np.uint64(0))
    leaf[:] = np.minimum(
        diff >> np.uint64(shift), np.uint64(nleaves - 1)
    ).astype(np.int64)
    out[:] = slopes[leaf] * keys.astype(np.float64) + intercepts[leaf]
    return out


def predict_radix_spline(keys, sp_keys, sp_pos, out):
    k = keys.astype(np.float64)
    npts = len(sp_keys)
    right = np.searchsorted(sp_keys, k, side="left")
    right = np.clip(right, 1, npts - 1)
    x0 = sp_keys[right - 1]
    x1 = sp_keys[right]
    y0 = sp_pos[right - 1]
    y1 = sp_pos[right]
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.where(x1 > x0, (k - x0) / (x1 - x0), 1.0)
    pred = y0 + np.clip(frac, 0.0, 1.0) * (y1 - y0)
    pred = np.where(k <= sp_keys[0], 0.0, pred)
    out[:] = np.where(k >= sp_keys[-1], sp_pos[-1], pred)
    return out


# ----------------------------------------------------------------------
# fused correct + search (array mirrors of layer.window_batch /
# layer.correct_batch composed with the validated search)
# ----------------------------------------------------------------------
def _predicted(pred, n):
    """``predicted_index_batch``: clip in float space, then cast."""
    return np.clip(pred, 0, n - 1).astype(np.int64)


def _partition(pred, same, ratio, m):
    """``partition_index_batch`` with the pre-rounded build ratio."""
    scaled = pred if same else pred * ratio
    return np.clip(scaled, 0, m - 1).astype(np.int64)


def fused_window_search(keys, queries, pred, deltas, widths, same, ratio, m,
                        out):
    n = len(keys)
    j = _partition(pred, same, ratio, m)
    predi = _predicted(pred, n)
    return validated_search(
        keys, queries, predi + deltas[j].astype(np.int64),
        widths[j].astype(np.int64), out
    )


def fused_point_search(keys, queries, pred, drifts, same, ratio, m, radius,
                       out):
    n = len(keys)
    j = _partition(pred, same, ratio, m)
    corrected = np.clip(_predicted(pred, n) + drifts[j], 0, n - 1)
    widths = np.full(queries.shape, 2 * radius, dtype=np.int64)
    return validated_search(keys, queries, corrected - radius, widths, out)


def fused_leaf_bounds_search(keys, queries, pred, leaf, err_lo, err_hi, out):
    e_lo = err_lo[leaf]
    starts = _predicted(pred, len(keys)) + e_lo
    return validated_search(keys, queries, starts, err_hi[leaf] - e_lo, out)


def fused_const_bounds_search(keys, queries, pred, e_lo, e_hi, out):
    starts = _predicted(pred, len(keys)) + e_lo
    widths = np.full(queries.shape, e_hi - e_lo, dtype=np.int64)
    return validated_search(keys, queries, starts, widths, out)
