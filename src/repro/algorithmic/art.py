"""Adaptive Radix Tree (Leis et al., ICDE 2013) — the paper's ``ART``.

A byte-wise radix tree with adaptive node sizes (Node4 / Node16 / Node48 /
Node256) and path compression, bulk-loaded from the sorted key array with
vectorised byte partitioning.  Inner nodes carry the covered position
range ``[lo, hi)`` of the sorted array, which turns a failed descent into
an exact lower bound without a restart:

* child byte missing  → the first child with a larger byte starts the
  lower-bound range;
* compressed-path mismatch → compare the query's prefix bytes against the
  stored prefix and return the subtree's ``lo`` or ``hi``.

Exactly like the original (and like Table 2, where six datasets show
"N/A"), duplicate keys are rejected at build time: a radix tree keyed by
the full key bytes has nowhere to put a second identical key.
"""

from __future__ import annotations

import numpy as np

from ..core.records import SortedData
from ..hardware.tracker import NULL_TRACKER, NullTracker, alloc_region
from ..search.linear import linear_lower_bound

#: Node-kind thresholds and per-node byte costs from the ART paper.
_NODE_COSTS = (
    (4, 16 + 4 + 4 * 8),       # Node4: header + 4 key bytes + 4 pointers
    (16, 16 + 16 + 16 * 8),    # Node16
    (48, 16 + 256 + 48 * 8),   # Node48: 256-byte index + 48 pointers
    (256, 16 + 256 * 8),       # Node256: direct pointer array
)

#: A leaf run this short is searched directly instead of splitting further.
#: 8 records of 12-16 bytes span at most two cache lines, so the run scan
#: costs about as much as the single-key leaf of a textbook ART while
#: keeping the bulk-loaded node count (and Python object count) tractable.
_LEAF_RUN = 8


class DuplicateKeyError(ValueError):
    """Raised when building an ART over data with duplicate keys."""


class _Node:
    """One inner node: children partitioned by the byte at ``depth``."""

    __slots__ = ("lo", "hi", "prefix", "child_bytes", "children", "offset", "kind")

    def __init__(self, lo: int, hi: int, prefix: bytes) -> None:
        self.lo = lo
        self.hi = hi
        self.prefix = prefix
        self.child_bytes: np.ndarray | None = None
        self.children: list | None = None
        self.offset = 0  # byte offset inside the node region
        self.kind = 4

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class ART:
    """Bulk-loaded adaptive radix tree supporting lower-bound queries."""

    def __init__(self, data: SortedData) -> None:
        if data.has_duplicates():
            raise DuplicateKeyError(
                "ART does not support duplicate keys (Table 2: N/A)"
            )
        self.data = data
        self.name = "ART"
        self.key_bytes = data.keys.dtype.itemsize
        self._size_bytes = 0
        self._node_count = 0
        keys = data.keys.astype(np.uint64)
        self._root = self._build(keys, 0, len(keys), 0)
        self._region = alloc_region(
            f"art_{id(self):x}", 1, max(self._size_bytes, 1)
        )

    # ------------------------------------------------------------------
    # bulk load
    # ------------------------------------------------------------------
    def _byte_column(self, keys: np.ndarray, depth: int) -> np.ndarray:
        shift = np.uint64(8 * (self.key_bytes - 1 - depth))
        return ((keys >> shift) & np.uint64(0xFF)).astype(np.uint8)

    def _build(self, keys: np.ndarray, lo: int, hi: int, depth: int) -> _Node:
        span = keys[lo:hi]
        if hi - lo <= _LEAF_RUN or depth >= self.key_bytes:
            node = _Node(lo, hi, b"")
            self._account(node, 0)
            return node
        # path compression: skip byte levels shared by the whole range
        prefix = bytearray()
        while depth < self.key_bytes:
            col = self._byte_column(span, depth)
            if col[0] != col[-1]:
                break
            prefix.append(int(col[0]))
            depth += 1
        if depth >= self.key_bytes:
            # identical keys would have been rejected; this is a single key
            node = _Node(lo, hi, bytes(prefix))
            self._account(node, 0)
            return node
        col = self._byte_column(span, depth)
        # children boundaries via the sorted byte column
        change = np.flatnonzero(col[1:] != col[:-1]) + 1
        starts = np.concatenate(([0], change, [len(col)]))
        node = _Node(lo, hi, bytes(prefix))
        node.child_bytes = col[starts[:-1]].astype(np.uint8)
        node.children = [
            self._build(keys, lo + int(starts[i]), lo + int(starts[i + 1]), depth + 1)
            for i in range(len(starts) - 1)
        ]
        self._account(node, len(node.children))
        return node

    def _account(self, node: _Node, num_children: int) -> None:
        node.offset = self._size_bytes
        self._node_count += 1
        if num_children == 0:
            node.kind = 0
            self._size_bytes += 16  # leaf stub: position + length
            return
        for capacity, cost in _NODE_COSTS:
            if num_children <= capacity:
                node.kind = capacity
                self._size_bytes += cost + len(node.prefix)
                return

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Position of the first record with key >= q."""
        keys = self.data.keys
        n = len(keys)
        if n == 0:
            return 0
        q_int = int(q)
        if q_int < 0:
            return 0
        node = self._root
        depth = 0
        while True:
            tracker.touch(self._region, node.offset)
            tracker.instr(6)
            # compressed path: compare the query bytes against the prefix
            for p_byte in node.prefix:
                q_byte = self._query_byte(q_int, depth)
                if q_byte != p_byte:
                    return node.lo if q_byte < p_byte else node.hi
                depth += 1
            if node.is_leaf:
                return self._leaf_lower_bound(node, q, tracker)
            q_byte = self._query_byte(q_int, depth)
            child_bytes = node.child_bytes
            tracker.instr(4)
            # Node48/Node256 resolve the child in O(1); smaller nodes scan.
            # Either way it is within the already-touched node, so only
            # instructions are charged here.
            idx = int(np.searchsorted(child_bytes, q_byte))
            if idx == len(child_bytes):
                return node.hi
            if child_bytes[idx] != q_byte:
                return node.children[idx].lo
            node = node.children[idx]
            depth += 1

    def _query_byte(self, q_int: int, depth: int) -> int:
        if depth >= self.key_bytes:
            return 0
        return (q_int >> (8 * (self.key_bytes - 1 - depth))) & 0xFF

    def _leaf_lower_bound(self, node: _Node, q, tracker: NullTracker) -> int:
        # returning node.hi when the whole run is below q is correct: every
        # record past the run diverged from q's prefix on a larger byte
        return linear_lower_bound(
            self.data.keys, self.data.region, tracker, q, node.lo, node.hi
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return self._node_count

    def size_bytes(self) -> int:
        return self._size_bytes
