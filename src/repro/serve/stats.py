"""Serving telemetry: latency percentiles, batch shapes, cache health.

:class:`ServerStats` is deliberately boring — bounded-memory counters a
hot path can feed with O(1) appends.  Latencies go into a fixed-size
ring (oldest samples fall off under sustained load, which is what a
serving dashboard wants anyway); batch sizes into a histogram dict;
cache and backpressure activity into plain counters.  ``snapshot()``
renders the lot into one flat dict the CLI and benchmarks print.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np


@dataclass
class ConnectionStats:
    """Per-connection counters the network front end maintains.

    One record per accepted TCP connection (kept after close so a
    post-mortem snapshot still shows what the peer did).  ``errors``
    counts per-request failures answered with an error frame;
    ``protocol_errors`` counts framing violations, which also close
    the connection.
    """

    peer: str = "?"
    requests: int = 0
    responses: int = 0
    writes: int = 0
    errors: int = 0
    protocol_errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    open: bool = True

    def to_dict(self) -> dict[str, object]:
        return {
            "peer": self.peer, "requests": self.requests,
            "responses": self.responses, "writes": self.writes,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "bytes_in": self.bytes_in, "bytes_out": self.bytes_out,
            "open": self.open,
        }


@dataclass
class WorkerStats:
    """Per-read-worker counters the dispatcher maintains.

    ``rerouted`` counts frames re-dispatched elsewhere after the worker
    died mid-flight; ``events`` counts write events fanned out to it.
    """

    pid: int = 0
    dispatched: int = 0
    completed: int = 0
    rerouted: int = 0
    events: int = 0
    alive: bool = True

    def to_dict(self) -> dict[str, object]:
        return {
            "pid": self.pid, "dispatched": self.dispatched,
            "completed": self.completed, "rerouted": self.rerouted,
            "events": self.events, "alive": self.alive,
        }


@dataclass
class FollowerStats:
    """Per-follower counters the replication server maintains.

    One record per subscribed replica (kept after disconnect, like
    :class:`ConnectionStats`).  ``ship_bytes`` counts full-sync segment
    chunk payloads; ``stream_bytes`` counts live WAL-batch payloads —
    the two counters the acceptance test uses to prove a reconnect
    resumed incrementally instead of re-shipping the generation.
    ``lag_lsn``/``lag_s`` are the follower's last self-reported
    staleness (piggybacked on its acks).
    """

    peer: str = "?"
    subscribed_from: int = 0
    acked_lsn: int = 0
    lag_lsn: int = 0
    lag_s: float = 0.0
    streamed_records: int = 0
    stream_bytes: int = 0
    ship_bytes: int = 0
    resyncs: int = 0
    connected: bool = True

    def to_dict(self) -> dict[str, object]:
        return {
            "peer": self.peer, "subscribed_from": self.subscribed_from,
            "acked_lsn": self.acked_lsn, "lag_lsn": self.lag_lsn,
            "lag_s": self.lag_s,
            "streamed_records": self.streamed_records,
            "stream_bytes": self.stream_bytes,
            "ship_bytes": self.ship_bytes, "resyncs": self.resyncs,
            "connected": self.connected,
        }


@dataclass
class _NetStats:
    """Roll-up of the per-connection / per-worker maps."""

    connections: dict = field(default_factory=dict)
    workers: dict = field(default_factory=dict)


class ServerStats:
    """Aggregated serving metrics (latency ring, histograms, counters)."""

    def __init__(self, latency_window: int = 65536) -> None:
        self._latencies: deque = deque(maxlen=latency_window)
        self.batch_sizes: Counter = Counter()
        self.served = 0
        self.cache_hits = 0
        self.writes = 0
        self.invalidated_points = 0
        self.invalidated_ranges = 0
        self.inflight = 0
        self.peak_inflight = 0
        self.backpressure_waits = 0
        self.retunes = 0
        self.background_retunes = 0
        self.background_retune_errors = 0
        self.group_commits = 0
        self.checkpoints = 0
        self.background_checkpoints = 0
        self.background_checkpoint_errors = 0
        #: per-connection / per-worker counter maps (network front end)
        self.connections: dict[int, ConnectionStats] = {}
        self.workers: dict[int, WorkerStats] = {}
        #: per-follower counter map (replication tier)
        self.followers: dict[int, FollowerStats] = {}
        self._next_conn_id = 0
        self._next_follower_id = 0

    # ------------------------------------------------------------------
    # network front-end feeds
    # ------------------------------------------------------------------
    def open_connection(self, peer: str) -> tuple[int, ConnectionStats]:
        """Register an accepted connection; returns (id, its counters)."""
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        rec = ConnectionStats(peer=peer)
        self.connections[conn_id] = rec
        return conn_id, rec

    def close_connection(self, conn_id: int) -> None:
        """Mark a connection closed (its counters stay readable)."""
        rec = self.connections.get(conn_id)
        if rec is not None:
            rec.open = False

    def register_worker(self, worker_id: int, pid: int) -> WorkerStats:
        """Register a read-worker process under its dispatcher id."""
        rec = WorkerStats(pid=pid)
        self.workers[worker_id] = rec
        return rec

    def open_follower(self, peer: str) -> tuple[int, FollowerStats]:
        """Register a subscribed replica; returns (id, its counters)."""
        fid = self._next_follower_id
        self._next_follower_id += 1
        rec = FollowerStats(peer=peer)
        self.followers[fid] = rec
        return fid, rec

    def close_follower(self, fid: int) -> None:
        """Mark a follower disconnected (its counters stay readable)."""
        rec = self.followers.get(fid)
        if rec is not None:
            rec.connected = False

    # ------------------------------------------------------------------
    # hot-path feeds
    # ------------------------------------------------------------------
    def record_latency(self, seconds: float) -> None:
        """One served request's submit-to-answer latency."""
        self._latencies.append(seconds)
        self.served += 1

    def record_batch(self, size: int) -> None:
        """One dispatched batch of ``size`` requests."""
        self.batch_sizes[int(size)] += 1

    def record_cache_hit(self) -> None:
        """One request answered straight from the result cache."""
        self.served += 1
        self.cache_hits += 1

    def record_write(self, dropped_points: int = 0, dropped_ranges: int = 0) -> None:
        """One applied write and the cache entries it invalidated."""
        self.writes += 1
        self.invalidated_points += dropped_points
        self.invalidated_ranges += dropped_ranges

    def request_started(self) -> None:
        """A request entered the server (tracks peak concurrency)."""
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def request_finished(self) -> None:
        """The matching exit bookend of :meth:`request_started`."""
        self.inflight -= 1

    # ------------------------------------------------------------------
    # readouts
    # ------------------------------------------------------------------
    def latency_us(self, percentile: float) -> float:
        """Latency percentile in microseconds (NaN before any sample)."""
        if not self._latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self._latencies), percentile) * 1e6)

    @property
    def num_batches(self) -> int:
        return sum(self.batch_sizes.values())

    @property
    def mean_batch_size(self) -> float:
        total = self.num_batches
        if total == 0:
            return float("nan")
        return sum(s * c for s, c in self.batch_sizes.items()) / total

    @property
    def cache_hit_rate(self) -> float:
        """Hits over all served requests (0.0 before any request)."""
        return self.cache_hits / self.served if self.served else 0.0

    def batch_histogram(self, bins=(1, 2, 4, 8, 16, 32, 64, 128, 256)) -> dict:
        """Batch-size counts rolled up into ``<=bin`` buckets."""
        out = {f"<={b}": 0 for b in bins}
        out[f">{bins[-1]}"] = 0
        for size, count in self.batch_sizes.items():
            for b in bins:
                if size <= b:
                    out[f"<={b}"] += count
                    break
            else:
                out[f">{bins[-1]}"] += count
        return out

    def snapshot(self) -> dict[str, object]:
        """Flat metrics dict (what the CLI and benchmarks print)."""
        return {
            "served": self.served,
            "p50_us": self.latency_us(50),
            "p99_us": self.latency_us(99),
            "batches": self.num_batches,
            "mean_batch": self.mean_batch_size,
            "cache_hit_rate": self.cache_hit_rate,
            "writes": self.writes,
            "invalidated_points": self.invalidated_points,
            "invalidated_ranges": self.invalidated_ranges,
            "peak_inflight": self.peak_inflight,
            "backpressure_waits": self.backpressure_waits,
            "retunes": self.retunes,
            "background_retunes": self.background_retunes,
            "background_retune_errors": self.background_retune_errors,
            "group_commits": self.group_commits,
            "checkpoints": self.checkpoints,
            "background_checkpoints": self.background_checkpoints,
            "background_checkpoint_errors": self.background_checkpoint_errors,
            "connections": len(self.connections),
            "open_connections": sum(
                1 for c in self.connections.values() if c.open),
            "protocol_errors": sum(
                c.protocol_errors for c in self.connections.values()),
            "net_workers": len(self.workers),
            "live_workers": sum(
                1 for w in self.workers.values() if w.alive),
            "rerouted": sum(w.rerouted for w in self.workers.values()),
            "followers": len(self.followers),
            "connected_followers": sum(
                1 for f in self.followers.values() if f.connected),
            "max_follower_lag_lsn": max(
                (f.lag_lsn for f in self.followers.values()
                 if f.connected), default=0),
            "max_follower_lag_s": max(
                (f.lag_s for f in self.followers.values()
                 if f.connected), default=0.0),
            "ship_bytes": sum(
                f.ship_bytes for f in self.followers.values()),
            "stream_bytes": sum(
                f.stream_bytes for f in self.followers.values()),
            "follower_resyncs": sum(
                f.resyncs for f in self.followers.values()),
        }

    def net_snapshot(self) -> dict[str, object]:
        """Per-connection and per-worker counter maps, keyed by id."""
        return {
            "connections": {
                cid: c.to_dict() for cid, c in self.connections.items()},
            "workers": {
                wid: w.to_dict() for wid, w in self.workers.items()},
            "followers": {
                fid: f.to_dict() for fid, f in self.followers.items()},
        }

    def describe(self) -> str:  # pragma: no cover - formatting aid
        """Multi-line text rendering of :meth:`snapshot` + histogram."""
        snap = self.snapshot()
        lines = [f"{k:>20}: {v}" for k, v in snap.items()]
        hist = self.batch_histogram()
        lines.append(f"{'batch histogram':>20}: "
                     + ", ".join(f"{k}:{v}" for k, v in hist.items() if v))
        return "\n".join(lines)
