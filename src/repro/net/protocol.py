"""Length-prefixed binary wire protocol for the serving tier.

A **frame** is ``b"RP" + version(1) + u32 big-endian payload length +
payload``; the payload is one value in a small TLV encoding (msgpack is
not a baked-in dependency, and the subset below is all the protocol
needs):

====  =========  =======================================================
tag   type       payload
====  =========  =======================================================
0x00  None       empty
0x01  bool       one byte, 0 or 1
0x02  int        minimal-length big-endian two's complement (any size)
0x03  float      8-byte IEEE-754 double
0x04  str        UTF-8 bytes
0x05  bytes      raw
0x06  list       concatenated packed items
0x07  dict       concatenated packed (key, value) pairs
0x08  ndarray    packed dtype string + packed shape list + raw buffer
====  =========  =======================================================

Every element is ``tag(1) + u32 length + payload``, so a decoder always
knows how many bytes to expect before touching them — the property that
makes the incremental :class:`FrameDecoder` safe against truncated
frames, garbage bytes and slowloris peers: nothing is interpreted until
the full frame has arrived, and any malformed byte raises
:class:`ProtocolError` identifying exactly what was wrong.  Requests and
responses are plain dicts (``{"op": ..., "id": ..., ...}`` — see
:mod:`repro.net.server` for the op table).

Integers use arbitrary-precision encoding because query keys span the
full uint64 domain *and* clients may probe outside it (the server
clamps, exactly as the in-process path does); floats and numpy scalars
round-trip losslessly.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME",
    "MAX_DEPTH",
    "ProtocolError",
    "pack",
    "unpack",
    "encode_frame",
    "FrameDecoder",
]

MAGIC = b"RP"
VERSION = 1
#: frame header: magic(2) + version(1) + payload length(4)
HEADER_SIZE = 7
#: refuse frames above this (a garbage length prefix must not make the
#: server try to buffer gigabytes for one connection)
DEFAULT_MAX_FRAME = 16 * 1024 * 1024
#: refuse TLV nesting deeper than this: each level costs the peer only
#: 5 bytes, so without a bound a sub-kilobyte frame of nested lists
#: would blow the decoder's stack (RecursionError escapes the
#: ProtocolError handling that closes bad connections cleanly)
MAX_DEPTH = 100

_T_NONE, _T_BOOL, _T_INT, _T_FLOAT = 0x00, 0x01, 0x02, 0x03
_T_STR, _T_BYTES, _T_LIST, _T_DICT, _T_ARRAY = 0x04, 0x05, 0x06, 0x07, 0x08

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


class ProtocolError(ValueError):
    """A malformed frame or TLV payload (reject the connection loudly)."""


# ----------------------------------------------------------------------
# TLV values
# ----------------------------------------------------------------------
def _element(tag: int, payload: bytes, out: list) -> None:
    out.append(bytes((tag,)))
    out.append(_U32.pack(len(payload)))
    out.append(payload)


def _pack_into(value, out: list) -> None:
    if value is None:
        _element(_T_NONE, b"", out)
    elif isinstance(value, (bool, np.bool_)):
        _element(_T_BOOL, b"\x01" if value else b"\x00", out)
    elif isinstance(value, (int, np.integer)):
        value = int(value)
        length = max(1, (value.bit_length() + 8) // 8)  # +1 sign bit
        _element(_T_INT, value.to_bytes(length, "big", signed=True), out)
    elif isinstance(value, (float, np.floating)):
        _element(_T_FLOAT, _F64.pack(float(value)), out)
    elif isinstance(value, str):
        _element(_T_STR, value.encode("utf-8"), out)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        _element(_T_BYTES, bytes(value), out)
    elif isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            raise ProtocolError("cannot pack object-dtype arrays")
        sub: list = []
        _pack_into(value.dtype.str, sub)
        _pack_into(list(value.shape), sub)
        _pack_into(np.ascontiguousarray(value).tobytes(), sub)
        _element(_T_ARRAY, b"".join(sub), out)
    elif isinstance(value, (list, tuple)):
        sub = []
        for item in value:
            _pack_into(item, sub)
        _element(_T_LIST, b"".join(sub), out)
    elif isinstance(value, dict):
        sub = []
        for k, v in value.items():
            _pack_into(k, sub)
            _pack_into(v, sub)
        _element(_T_DICT, b"".join(sub), out)
    else:
        raise ProtocolError(
            f"cannot pack {type(value).__name__} onto the wire")


def pack(value) -> bytes:
    """Encode one value into TLV bytes (see the module table)."""
    out: list = []
    _pack_into(value, out)
    return b"".join(out)


def _unpack_one(buf: memoryview, offset: int, depth: int = 0):
    """Decode the element at ``offset``; returns (value, next offset)."""
    if depth > MAX_DEPTH:
        raise ProtocolError(
            f"TLV nesting deeper than {MAX_DEPTH} levels")
    if offset + 5 > len(buf):
        raise ProtocolError("truncated TLV element header")
    tag = buf[offset]
    (length,) = _U32.unpack_from(buf, offset + 1)
    start = offset + 5
    end = start + length
    if end > len(buf):
        raise ProtocolError(
            f"TLV element claims {length} bytes but only "
            f"{len(buf) - start} remain")
    payload = buf[start:end]
    if tag == _T_NONE:
        if length:
            raise ProtocolError("None element with a non-empty payload")
        return None, end
    if tag == _T_BOOL:
        if length != 1 or payload[0] not in (0, 1):
            raise ProtocolError("malformed bool element")
        return bool(payload[0]), end
    if tag == _T_INT:
        if length == 0:
            raise ProtocolError("empty int element")
        return int.from_bytes(payload, "big", signed=True), end
    if tag == _T_FLOAT:
        if length != 8:
            raise ProtocolError("float element must be 8 bytes")
        return _F64.unpack(payload)[0], end
    if tag == _T_STR:
        try:
            return str(payload, "utf-8"), end
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in str element: {exc}") \
                from None
    if tag == _T_BYTES:
        return bytes(payload), end
    if tag == _T_LIST:
        items = []
        pos = start
        while pos < end:
            item, pos = _unpack_one(buf[:end], pos, depth + 1)
            items.append(item)
        return items, end
    if tag == _T_DICT:
        mapping = {}
        pos = start
        while pos < end:
            key, pos = _unpack_one(buf[:end], pos, depth + 1)
            if pos >= end:
                raise ProtocolError("dict element with a dangling key")
            value, pos = _unpack_one(buf[:end], pos, depth + 1)
            mapping[key] = value
        return mapping, end
    if tag == _T_ARRAY:
        pos = start
        dtype_str, pos = _unpack_one(buf[:end], pos, depth + 1)
        shape, pos = _unpack_one(buf[:end], pos, depth + 1)
        raw, pos = _unpack_one(buf[:end], pos, depth + 1)
        if pos != end:
            raise ProtocolError("trailing bytes inside ndarray element")
        if not isinstance(dtype_str, str) or not isinstance(shape, list) \
                or not isinstance(raw, bytes):
            raise ProtocolError("malformed ndarray element")
        try:
            dtype = np.dtype(dtype_str)
        except TypeError as exc:
            raise ProtocolError(f"bad ndarray dtype {dtype_str!r}: {exc}") \
                from None
        if dtype.hasobject:
            raise ProtocolError("object-dtype arrays are not decodable")
        count = 1
        for dim in shape:
            if not isinstance(dim, int) or dim < 0:
                raise ProtocolError(f"bad ndarray shape {shape!r}")
            count *= dim
        if count * dtype.itemsize != len(raw):
            raise ProtocolError(
                f"ndarray payload is {len(raw)} bytes, expected "
                f"{count * dtype.itemsize} for shape {shape} {dtype}")
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy(), end
    raise ProtocolError(f"unknown TLV tag 0x{tag:02x}")


def unpack(data: bytes):
    """Decode one TLV value; rejects trailing bytes."""
    value, end = _unpack_one(memoryview(data), 0)
    if end != len(data):
        raise ProtocolError(
            f"{len(data) - end} trailing bytes after the TLV value")
    return value


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_frame(value, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """One wire frame carrying ``value`` (header + TLV payload)."""
    payload = pack(value)
    if len(payload) > max_frame:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame limit")
    return MAGIC + bytes((VERSION,)) + _U32.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder for one connection's byte stream.

    Feed it whatever the socket produced; it yields every complete
    frame's decoded value and buffers the rest.  All framing violations
    raise :class:`ProtocolError` immediately — the caller must treat
    the stream as poisoned and drop the connection (request/TLV-level
    errors never corrupt neighbouring connections: each connection owns
    its own decoder).
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buf = bytearray()

    def __len__(self) -> int:
        """Bytes currently buffered (tests / slowloris accounting)."""
        return len(self._buf)

    def feed(self, data: bytes) -> list:
        """Buffer ``data``; returns the values of every completed frame."""
        self._buf.extend(data)
        values = []
        while True:
            if len(self._buf) < HEADER_SIZE:
                break
            if self._buf[:2] != MAGIC:
                raise ProtocolError(
                    f"bad frame magic {bytes(self._buf[:2])!r} "
                    f"(expected {MAGIC!r})")
            if self._buf[2] != VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {self._buf[2]} "
                    f"(speaking {VERSION})")
            (length,) = _U32.unpack_from(self._buf, 3)
            if length > self.max_frame:
                raise ProtocolError(
                    f"frame claims {length} bytes, above the "
                    f"{self.max_frame}-byte limit")
            end = HEADER_SIZE + length
            if len(self._buf) < end:
                break  # half a frame (slowloris): wait for more bytes
            payload = bytes(self._buf[HEADER_SIZE:end])
            del self._buf[:end]
            values.append(unpack(payload))
        return values
