"""Read-op execution shared by the worker loop and the inline fallback.

One request dict in, one response dict out, never raises: request-level
failures (a malformed query, an unknown op) come back as error payloads
so one bad request fails *itself* and nothing else — the same isolation
the in-process batcher gets from submit-time validation.

Scalar queries answer with python ints; vector queries (a list or
ndarray of keys) answer with ndarrays, which the wire codec ships as
one contiguous buffer — the network analogue of the engine's batch
pipeline.
"""

from __future__ import annotations

import numpy as np

from ..core.records import coerce_query_array
from ..engine.executor import BatchExecutor
from ..serve.batcher import check_query

__all__ = ["READ_OPS", "WRITE_OPS", "execute_read", "error_response"]

#: ops a read worker can answer from its attached engine state
READ_OPS = frozenset({"ping", "lookup", "range", "range_keys"})
#: ops only the single writer process may execute
WRITE_OPS = frozenset({"insert", "delete"})


def error_response(rid, exc: BaseException) -> dict:
    """The error payload for one failed request (connection stays up)."""
    return {
        "id": rid, "ok": False,
        "error": type(exc).__name__, "message": str(exc),
    }


def _is_vector(value) -> bool:
    return isinstance(value, (list, np.ndarray))


def execute_read(executor: BatchExecutor, msg: dict) -> dict:
    """Execute one read-op request dict against ``executor``."""
    rid = msg.get("id")
    try:
        op = msg.get("op")
        index = executor.index
        n = len(index)
        if op == "ping":
            return {"id": rid, "ok": True, "r": "pong"}
        if op == "lookup":
            q = msg["q"]
            vector = _is_vector(q)
            if not vector:
                check_query(q)
                q = [q]
            arr, oob = coerce_query_array(q, index.key_dtype)
            positions = executor.lookup_batch(arr)
            if oob is not None:
                positions[oob] = n  # above every representable key
            if vector:
                return {"id": rid, "ok": True, "r": positions}
            return {"id": rid, "ok": True, "r": int(positions[0])}
        if op == "range":
            lo, hi = msg["lo"], msg["hi"]
            vector = _is_vector(lo)
            if not vector:
                check_query(lo)
                check_query(hi)
                lo, hi = [lo], [hi]
            counts = executor.count_batch(lo, hi)
            if vector:
                return {"id": rid, "ok": True, "r": counts}
            return {"id": rid, "ok": True, "r": int(counts[0])}
        if op == "range_keys":
            lo, hi = msg["lo"], msg["hi"]
            check_query(lo)
            check_query(hi)
            keys = executor.scan_batch([lo], [hi])[0]
            return {"id": rid, "ok": True, "r": keys}
        raise ValueError(f"unknown op {op!r}")
    except Exception as exc:
        return error_response(rid, exc)
