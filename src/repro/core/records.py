"""The clustered record array every index searches over (paper §4 setup).

SOSD's layout: records sorted by key, each record a 32- or 64-bit key
plus a 64-bit payload, physically clustered so a range scan is sequential
once the first result is found.  The *record stride* matters to the
simulator: a 12-byte record means ~5 records per cache line, which is why
the last iterations of a binary search are free and why "hot keys are
cached with their payload ... which wastes cache space" (§2.2).
"""

from __future__ import annotations

import numpy as np

from ..hardware.machine import DEFAULT_PAYLOAD_BYTES
from ..hardware.tracker import Region, alloc_region


class SortedData:
    """Sorted keys + implicit payloads, with a simulated memory region."""

    def __init__(
        self,
        keys: np.ndarray,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        name: str = "data",
    ) -> None:
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        if len(keys) > 1 and not bool(np.all(keys[1:] >= keys[:-1])):
            raise ValueError("keys must be sorted ascending")
        self.keys = keys
        self.payload_bytes = int(payload_bytes)
        self.record_bytes = int(keys.dtype.itemsize) + self.payload_bytes
        self.name = name
        self.region: Region = alloc_region(
            f"{name}_records", self.record_bytes, len(keys)
        )

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def key_bits(self) -> int:
        return self.keys.dtype.itemsize * 8

    def lower_bound_batch(self, queries: np.ndarray) -> np.ndarray:
        """Ground-truth lower-bound positions (used for verification)."""
        return np.searchsorted(self.keys, queries, side="left")

    def has_duplicates(self) -> bool:
        """True if any key occupies more than one slot (ART rejects these)."""
        if len(self.keys) < 2:
            return False
        return bool(np.any(self.keys[1:] == self.keys[:-1]))

    def size_bytes(self) -> int:
        """Total clustered-record footprint (keys + payloads)."""
        return self.record_bytes * len(self.keys)
