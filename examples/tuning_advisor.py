"""The §3.9 tuning procedure as a user-facing advisor.

Given a dataset, the advisor measures the machine's error-to-latency
curve L(s) (§2.3 micro-benchmark), builds a candidate Shift-Table layer,
evaluates eqs. (9) and (10) of the cost model, and recommends whether the
layer should be enabled — without running a full benchmark.

Run:  python examples/tuning_advisor.py
"""

from repro import (
    InterpolationModel,
    SortedData,
    latency_with_layer,
    latency_without_layer,
    measure_latency_curve,
    tune,
)
from repro.bench.workload import env_num_keys
from repro.core.shift_table import ShiftTable
from repro.datasets import load
from repro.hardware.machine import MachineSpec


def advise(dataset: str, n: int) -> None:
    keys = load(dataset, n)
    data = SortedData(keys, name=dataset)
    machine = MachineSpec.paper().scaled_for(n, data.record_bytes)

    print(f"\n=== {dataset} (n={n:,}) ===")
    curve = measure_latency_curve(keys, machine, record_bytes=data.record_bytes)
    pts = ", ".join(
        f"L({s})={l:.0f}ns" for s, l in
        zip(curve.sizes[::3], curve.latencies_ns[::3])
    )
    print(f"measured error-to-latency curve: {pts}")

    model = InterpolationModel(keys)
    layer = ShiftTable.build(keys, model)
    model_ns = 2.0  # IM is register-resident
    eq9 = latency_with_layer(model_ns, layer.counts, curve)
    eq10 = latency_without_layer(model_ns, layer.counts, layer.deltas, curve)
    print(f"eq. (9)  latency with Shift-Table:    {eq9:8.1f} ns")
    print(f"eq. (10) latency without Shift-Table: {eq10:8.1f} ns")

    index, report = tune(data, model, curve=curve, model_ns=model_ns)
    verdict = "ENABLE" if report.layer_enabled else "SKIP"
    print(
        f"advisor: {verdict} the layer "
        f"(error {report.error_before:,.0f} -> {report.error_after:,.1f}; "
        f"memory cost {layer.size_bytes() / 1e6:.1f} MB)"
    )
    print(f"resulting index: {index.name}")


def main() -> None:
    n = env_num_keys()
    # a dataset where the layer is a big win, and one where it is useless
    advise("osmc64", n)
    advise("uden64", n)


if __name__ == "__main__":
    main()
