"""Unit tests for regions and access trackers."""

import pytest

from repro.hardware.hierarchy import MemoryHierarchy
from repro.hardware.machine import MachineSpec
from repro.hardware.tracker import NULL_TRACKER, Region, SimTracker, alloc_region


def test_alloc_region_alignment_and_disjointness():
    a = alloc_region("a", 8, 100)
    b = alloc_region("b", 8, 100)
    assert a.base % 64 == 0 and b.base % 64 == 0
    # no shared cache line between consecutive regions
    last_line_a = (a.base + a.nbytes - 1) // 64
    first_line_b = b.base // 64
    assert first_line_b > last_line_a


def test_alloc_region_validation():
    with pytest.raises(ValueError):
        alloc_region("bad", 0, 10)
    with pytest.raises(ValueError):
        alloc_region("bad", 8, -1)


def test_region_nbytes():
    r = Region("r", 0, 16, 10)
    assert r.nbytes == 160


def test_null_tracker_is_noop():
    r = alloc_region("nt", 8, 10)
    NULL_TRACKER.touch(r, 3)
    NULL_TRACKER.scan(r, 0, 10)
    NULL_TRACKER.instr(100)  # nothing to assert: must simply not fail


def test_sim_tracker_touch_maps_to_lines():
    machine = MachineSpec()
    h = MemoryHierarchy(machine)
    t = SimTracker(h)
    r = alloc_region("st", 8, 64)
    t.touch(r, 0)
    t.touch(r, 7)  # same 64-byte line (8 items x 8 bytes)
    assert h.stats.accesses == 2
    assert h.stats.dram_accesses == 1  # second touch hits L1
    t.touch(r, 8)  # next line
    assert h.stats.dram_accesses == 2


def test_sim_tracker_scan_line_count():
    machine = MachineSpec()
    h = MemoryHierarchy(machine)
    t = SimTracker(h)
    r = alloc_region("scan", 8, 1024)
    t.scan(r, 0, 16)  # 128 bytes = 2 lines
    assert h.stats.accesses == 2


def test_sim_tracker_scan_empty_range():
    h = MemoryHierarchy(MachineSpec())
    t = SimTracker(h)
    r = alloc_region("empty", 8, 16)
    t.scan(r, 5, 5)
    assert h.stats.accesses == 0


def test_sim_tracker_instr_and_stats_passthrough():
    h = MemoryHierarchy(MachineSpec())
    t = SimTracker(h)
    t.instr(7)
    assert t.stats.instructions == 7
    t.reset_stats()
    assert t.stats.instructions == 0
