"""The package's front door: one facade over the whole serving stack.

The library grew four layers — the paper-layer ``CorrectedIndex`` you
assemble by hand, the sharded batch engine, the updatable backends with
per-shard auto-tuning, and the asyncio serving front end — each with its
own construction idiom.  :class:`Index` puts one coherent API in front
of all of them, the way the learned-index systems we build on hide
their model hierarchies behind a single lookup interface (Kraska et
al.'s RMI; Abu-Libdeh et al.'s Bigtable integration):

>>> import numpy as np, repro
>>> keys = np.sort(np.random.default_rng(0).integers(0, 1 << 40, 100_000))
>>> index = repro.Index.build(keys, repro.IndexConfig(num_shards=4))
>>> int(index.lookup(keys[123])) == int(np.searchsorted(keys, keys[123]))
True

:class:`IndexConfig` consolidates every construction knob the deep
layers scattered across ``ShardedIndex.build``, the backend configs and
the auto-tuner, behind validation, presets
(:meth:`IndexConfig.from_preset`) and a round-trippable
``to_dict()/from_dict()``.  The facade exposes the full lifecycle —
``lookup / lookup_many / range / scan``, ``insert / delete / refresh /
retune``, ``save`` / :func:`repro.open <open>`, and
:meth:`Index.serve` for the asyncio front end.  The deep-import paths
(``repro.engine``, ``repro.serve``, ``repro.core``) keep working; the
facade is delegation, not replacement.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .core.records import coerce_query_array
from .engine.autotune import AutoTuneConfig
from .engine.backends import BACKEND_KINDS, BackendConfig
from .engine.executor import BatchExecutor
from .engine.sharded import LAYER_MODES, ShardedIndex
from .engine.wal import WAL_SYNC_MODES
from .hardware.machine import DEFAULT_PAYLOAD_BYTES
from .models.factory import MODEL_FACTORIES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .serve.server import IndexServer

#: Version of the :class:`IndexConfig` dict layout (``to_dict``).
#: v2 added the ``durability`` field; v1 dicts load with it defaulted.
CONFIG_VERSION = 2

#: Named configuration profiles for :meth:`IndexConfig.from_preset`.
PRESETS: dict[str, dict] = {
    # read-dominated serving: rebuild-on-write shards keep reads as fast
    # as the read-only engine
    "read_heavy": {"backend": "static", "layer": "R"},
    # mixed read/write traffic: ALEX-style gapped shards absorb writes
    # at O(nearest gap) instead of O(shard)
    "mixed": {"backend": "gapped", "layer": "R"},
    # let the §3.9 cost model pick model family + layer per shard at
    # build time, and everything (incl. backend) at retune() time
    "auto": {"backend": "gapped", "layer": "R", "auto_tune": True},
}


@dataclass(frozen=True)
class IndexConfig:
    """Every construction knob of the engine, in one validated place.

    Consolidates what used to be scattered across
    ``ShardedIndex.build(...)`` kwargs, ``BackendConfig`` and
    ``AutoTuneConfig``:

    * ``num_shards`` — range partitions (run-aligned cuts);
    * ``model`` — shard-local model family, a name from
      ``repro.models.MODEL_FACTORIES`` (names only: a config must stay
      serialisable, use the deep API for custom callables);
    * ``layer`` — correction mode: ``"R"`` (guaranteed-window
      Shift-Table), ``"S"`` (compact layer) or ``None`` (bare model);
    * ``layer_partitions`` — the paper's ``M`` per shard (``None`` =
      ``M = N_shard``);
    * ``backend`` — shard storage engine: ``"static"`` | ``"gapped"``
      | ``"fenwick"``;
    * ``density`` / ``merge_threshold`` — gapped slack / fenwick merge
      trigger;
    * ``payload_bytes`` — simulated record payload stride;
    * ``auto_tune`` — ``False``, ``True`` (default
      :class:`~repro.engine.autotune.AutoTuneConfig`) or an explicit
      ``AutoTuneConfig``: run the §3.9 cost model per shard;
    * ``workers`` — thread-pool width for cross-shard batch execution;
    * ``durability`` — WAL fsync policy when the index is built with a
      ``durable_dir`` (:data:`~repro.engine.wal.WAL_SYNC_MODES`):
      ``"always"`` fsyncs every write, ``"group"`` amortises one fsync
      over a commit group, ``"async"`` flushes without fsync; ``None``
      means ``"group"`` when a durable directory is used.

    Validation happens at construction; ``to_dict()``/``from_dict()``
    round-trip the config (including the auto-tune sub-config) for
    persistence, and :meth:`from_preset` names three starting points:
    ``"read_heavy"``, ``"mixed"``, ``"auto"``.
    """

    num_shards: int = 8
    model: str = "interpolation"
    layer: str | None = "R"
    layer_partitions: int | None = None
    backend: str = "static"
    density: float = 0.75
    merge_threshold: int = 4096
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    auto_tune: bool | AutoTuneConfig = False
    workers: int = 1
    durability: str | None = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not isinstance(self.model, str):
            raise ValueError(
                "IndexConfig.model must be a model family name (configs "
                "are serialisable); pass custom callables to "
                "repro.engine.ShardedIndex.build instead"
            )
        if self.model not in MODEL_FACTORIES:
            raise ValueError(
                f"unknown model family {self.model!r}; "
                f"known: {sorted(MODEL_FACTORIES)}"
            )
        if self.layer not in LAYER_MODES:
            raise ValueError(
                f"layer must be one of {LAYER_MODES}, got {self.layer!r}"
            )
        if self.backend not in BACKEND_KINDS:
            raise ValueError(
                f"backend must be one of {BACKEND_KINDS}, "
                f"got {self.backend!r}"
            )
        if not (0.1 <= self.density <= 1.0):
            raise ValueError("density must be in [0.1, 1.0]")
        if self.merge_threshold < 1:
            raise ValueError("merge_threshold must be >= 1")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        if not isinstance(self.auto_tune, (bool, AutoTuneConfig)):
            raise ValueError(
                "auto_tune must be a bool or an AutoTuneConfig, "
                f"got {type(self.auto_tune).__name__}"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.durability is not None and \
                self.durability not in WAL_SYNC_MODES:
            raise ValueError(
                f"durability must be one of {WAL_SYNC_MODES} or None, "
                f"got {self.durability!r}"
            )

    @classmethod
    def from_preset(cls, name: str, **overrides) -> "IndexConfig":
        """A named profile (:data:`PRESETS`), with keyword overrides.

        >>> IndexConfig.from_preset("mixed", num_shards=4).backend
        'gapped'
        """
        try:
            preset = PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown preset {name!r}; known: {sorted(PRESETS)}"
            ) from None
        return cls(**{**preset, **overrides})

    def to_dict(self) -> dict:
        """JSON-safe dict, inverted by :meth:`from_dict`.

        Carries a ``config_version`` so persisted configs can evolve.
        """
        payload = dataclasses.asdict(self)
        if isinstance(self.auto_tune, AutoTuneConfig):
            payload["auto_tune"] = self.auto_tune.to_dict()
        payload["config_version"] = CONFIG_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "IndexConfig":
        """Rebuild (and re-validate) a config written by :meth:`to_dict`."""
        payload = dict(payload)
        version = int(payload.pop("config_version", CONFIG_VERSION))
        if version > CONFIG_VERSION:
            raise ValueError(
                f"IndexConfig version {version} is newer than this "
                f"library understands ({CONFIG_VERSION})"
            )
        auto_tune = payload.get("auto_tune", False)
        if isinstance(auto_tune, dict):
            payload["auto_tune"] = AutoTuneConfig.from_dict(auto_tune)
        return cls(**payload)

    def backend_config(self) -> BackendConfig:
        """The engine-level :class:`BackendConfig` this config implies."""
        return BackendConfig(
            model=self.model,
            layer=self.layer,
            layer_partitions=self.layer_partitions,
            payload_bytes=self.payload_bytes,
            density=self.density,
            merge_threshold=self.merge_threshold,
        )


def _as_config(config, overrides: dict) -> IndexConfig:
    """Normalise build()'s config argument: None | preset name | config."""
    if config is None:
        config = IndexConfig()
    elif isinstance(config, str):
        config = IndexConfig.from_preset(config)
    elif not isinstance(config, IndexConfig):
        raise TypeError(
            "config must be an IndexConfig, a preset name or None, "
            f"got {type(config).__name__}"
        )
    if overrides:
        config = replace(config, **overrides)
    return config


class Index:
    """One handle over the whole stack: build, query, mutate, persist,
    serve.

    Constructed by :meth:`build` (fit models + layers over a sorted key
    array) or :func:`open` (reopen a saved index, no refitting).  Reads
    run through the vectorised
    :class:`~repro.engine.executor.BatchExecutor`; writes route through
    the sharded engine's run-aligned update machinery; :meth:`serve`
    returns the asyncio front end.  The underlying layers stay
    reachable as :attr:`engine` and :attr:`executor` — the facade adds
    no state of its own beyond the config it was built from.
    """

    def __init__(
        self,
        engine: ShardedIndex,
        config: IndexConfig,
        *,
        executor: BatchExecutor | None = None,
        durability=None,
    ) -> None:
        self.engine = engine
        self._config = config
        self.executor = (
            executor if executor is not None
            else BatchExecutor(engine, workers=config.workers)
        )
        #: the :class:`~repro.engine.durability.DurabilityManager`
        #: logging this index's writes (None: memory-only).  Owned by
        #: the facade: :meth:`close` commits and releases it.
        self.durability = durability

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        keys: np.ndarray,
        config: IndexConfig | str | None = None,
        *,
        name: str = "index",
        durable_dir: str | Path | None = None,
        **overrides,
    ) -> "Index":
        """Fit a full engine over sorted ``keys``.

        ``config`` is an :class:`IndexConfig`, a preset name
        (``"read_heavy"`` | ``"mixed"`` | ``"auto"``) or ``None`` (the
        defaults); keyword overrides patch individual fields either
        way:

        >>> index = Index.build(keys, "mixed", num_shards=4)  # doctest: +SKIP

        ``durable_dir`` makes the index crash-safe from birth: a WAL +
        checkpoint directory (:mod:`repro.engine.durability`) is
        initialised there, every subsequent ``insert``/``delete`` is
        logged, and :func:`repro.open <open>` on that directory
        recovers the index after a crash.  The fsync policy comes from
        ``config.durability`` (default ``"group"``).
        """
        config = _as_config(config, overrides)
        engine = ShardedIndex.build(
            np.asarray(keys),
            config.num_shards,
            model=config.model,
            layer=config.layer,
            layer_partitions=config.layer_partitions,
            payload_bytes=config.payload_bytes,
            name=name,
            backend=config.backend,
            density=config.density,
            merge_threshold=config.merge_threshold,
            auto_tune=config.auto_tune,
        )
        manager = None
        if durable_dir is not None:
            from .engine.durability import DurabilityManager

            manager = DurabilityManager.create(
                engine, durable_dir,
                sync=config.durability or "group",
                index_config=config.to_dict(),
            )
        return cls(engine, config, durability=manager)

    @classmethod
    def open(cls, path: str | Path) -> "Index":
        """Reopen an index saved with :meth:`save` — no refitting.

        ``path`` may be a ``.npz`` snapshot written by :meth:`save`
        **or** a durable directory created by
        ``build(durable_dir=...)``: directories recover through the
        checkpoint + WAL-replay path (:mod:`repro.engine.durability`)
        and come back with logging live, snapshots load read-the-file
        style with no durability attached.

        The loaded engine answers bit-identically to the saved one
        (models, layers, pending update buffers, tuner decisions all
        restored); ``build_info()["source"]`` reads ``"loaded"`` (or
        ``"recovered"``).  Raises
        :class:`~repro.engine.persist.IndexPersistError` for corrupted,
        truncated or version-incompatible files and
        :class:`~repro.engine.durability.DurabilityError` for
        unrecoverable directories.
        """
        from .engine.durability import DurabilityManager, is_durable_dir

        if Path(path).is_dir() or is_durable_dir(path):
            manager = DurabilityManager.recover(path)
            saved = manager.index_config
            config = (
                IndexConfig.from_dict(saved) if saved is not None
                else cls._derive_config(manager.index)
            )
            return cls(manager.index, config, durability=manager)
        from .engine.persist import load_index

        engine, manifest = load_index(path)
        saved = manifest.get("index_config")
        config = (
            IndexConfig.from_dict(saved) if saved is not None
            else cls._derive_config(engine)
        )
        return cls(engine, config)

    @staticmethod
    def _derive_config(engine: ShardedIndex) -> IndexConfig:
        """Facade view of an engine persisted without an ``index_config``
        (saved or checkpointed straight from the engine layer)."""
        bc = engine.config
        return IndexConfig(
            num_shards=engine.num_shards,
            model=bc.model if isinstance(bc.model, str)
            else "interpolation",
            layer=bc.layer,
            layer_partitions=bc.layer_partitions,
            backend=engine.backend_kind,
            density=bc.density,
            merge_threshold=bc.merge_threshold,
            payload_bytes=bc.payload_bytes,
            auto_tune=(engine.tuner.config if engine.tuner is not None
                       else False),
        )

    def save(self, path: str | Path) -> dict:
        """Serialise the whole engine to ``path`` (one ``.npz`` file).

        Includes the facade config, every shard's model + correction
        layer, backend storage with pending deltas, tuner decisions,
        a format version and a checksum — see
        :mod:`repro.engine.persist`.  Returns the written manifest.
        """
        from .engine.persist import save_index

        return save_index(self.engine, path,
                          index_config=self._config.to_dict())

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def lookup(self, q) -> int:
        """Global lower-bound position of ``q`` in the live key sequence."""
        return self.engine.lookup(q)

    def _coerce(self, values) -> tuple[np.ndarray, np.ndarray | None]:
        """Key-exact query array + above-domain mask for raw client input.

        A bare ``np.asarray`` over a mixed python list (a ``>2**63``
        key next to a negative probe) infers float64 and corrupts keys
        above 2**53; :func:`~repro.core.records.coerce_query_array`
        clamps into the key domain exactly instead.  Masked lanes sit
        above every representable key, so their lower bound is
        ``len(self)``.
        """
        return coerce_query_array(values, self.engine.key_dtype)

    def lookup_many(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`lookup` over a query batch (original order)."""
        queries, oob = self._coerce(queries)
        positions = self.executor.lookup_batch(queries)
        if oob is not None:
            positions[oob] = len(self)
        return positions

    def range(self, lo, hi) -> tuple[int, int]:
        """``[first, last)`` global positions of ``lo <= key < hi``."""
        first, last = self.range_many([lo], [hi])
        return int(first[0]), int(last[0])

    def range_many(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`range` over aligned bound arrays."""
        lows, oob_lo = self._coerce(lows)
        highs, oob_hi = self._coerce(highs)
        first, last = self.executor.range_batch(lows, highs)
        n = len(self)
        if oob_lo is not None:
            first[oob_lo] = n
        if oob_hi is not None:
            last[oob_hi] = n
        return first, np.maximum(first, last)

    def count(self, lo, hi) -> int:
        """Cardinality of ``lo <= key < hi``."""
        first, last = self.range(lo, hi)
        return last - first

    def scan(self, lo, hi) -> np.ndarray:
        """Materialised key slice of ``lo <= key < hi`` (clustered scan)."""
        return self.scan_many([lo], [hi])[0]

    def scan_many(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> list[np.ndarray]:
        """Materialised key slices per ``(lo, hi)`` range."""
        lows_c, oob_lo = self._coerce(lows)
        highs_c, oob_hi = self._coerce(highs)
        if oob_lo is None and oob_hi is None:
            return self.executor.scan_batch(lows_c, highs_c)
        # out-of-domain extremes: slice via the (mask-patched) positions
        # so a bound above the key domain still covers the last key
        first, last = self.range_many(lows, highs)
        keys = self.engine.keys
        return [keys[int(a):int(b)] for a, b in zip(first, last)]

    def explain(self, queries: np.ndarray) -> str:
        """The engine's EXPLAIN for a batch: routing + per-shard strategy."""
        queries, _ = self._coerce(queries)
        return self.executor.explain(queries)

    # ------------------------------------------------------------------
    # writes and maintenance
    # ------------------------------------------------------------------
    def insert(self, key) -> int:
        """Insert ``key``; returns the shard that absorbed it."""
        return self.engine.insert(key)

    def delete(self, key) -> int:
        """Delete one occurrence of ``key`` (KeyError if absent)."""
        return self.engine.delete(key)

    def refresh(self) -> None:
        """Fold buffered updates back into every shard."""
        self.engine.refresh()

    def retune(self, tuner=None) -> list[dict]:
        """Run the §3.9 per-shard maintenance pass; returns the actions."""
        return self.engine.retune(tuner)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @property
    def durable(self) -> bool:
        """Whether writes to this index are WAL-logged."""
        return self.durability is not None

    def _require_durability(self):
        if self.durability is None:
            raise ValueError(
                "this index has no durability layer; build it with "
                "durable_dir=... or open a durable directory"
            )
        return self.durability

    def commit(self) -> int:
        """Group-commit the WAL: fsync every logged write; returns the
        durable LSN.  Under ``durability="always"`` writes commit
        themselves and this is a cheap no-op barrier."""
        return self._require_durability().commit()

    def checkpoint(self) -> dict:
        """Flush all shards to a new checkpoint generation incrementally
        (one shard at a time — writers in other threads are never
        blocked for longer than one shard's snapshot) and prune the WAL
        behind it.  Returns the published manifest."""
        return self._require_durability().checkpoint()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve(self, addr=None, *, net_workers: int = 0,
              max_frame: int | None = None, replicate_addr=None,
              **server_opts):
        """A configured serving front end (in-process or TCP).

        Without ``addr`` this returns the asyncio
        :class:`~repro.serve.server.IndexServer`; keyword options pass
        straight through (``max_batch``, ``max_wait_us``,
        ``point_cache``, ``range_cache``, ``max_inflight``,
        ``retune_interval``, …) and ``workers`` defaults to the build
        config's value.  Use as an async context manager::

            async with index.serve(retune_interval=30.0) as server:
                position = await server.lookup(q)

        With ``addr=(host, port)`` the same server is wrapped in a
        :class:`~repro.net.server.NetServer` speaking the framed binary
        protocol (:mod:`repro.net`); ``port=0`` binds an ephemeral
        port, ``net_workers=N`` forks N shared-memory read-worker
        processes, and closing the net server closes the inner one::

            async with index.serve(addr=("127.0.0.1", 0)) as net:
                async with repro.net.Client(*net.address) as client:
                    position = await client.lookup(q)

        A durable index hands its manager to the server automatically,
        so awaited writes are acknowledged writes and
        ``checkpoint_interval=`` schedules background checkpoints.

        ``replicate_addr=(host, port)`` (durable indexes only) also
        binds a :class:`~repro.replica.leader.ReplicationServer` so
        read replicas can full-sync the published checkpoint and
        stream the WAL tail (:func:`repro.replica.follow`); its bound
        address is ``net.replication_address``.
        """
        from .serve.server import IndexServer

        server_opts.setdefault("workers", self._config.workers)
        if self.durability is not None:
            server_opts.setdefault("durability", self.durability)
        server = IndexServer(self.engine, **server_opts)
        if addr is None:
            if net_workers:
                raise ValueError("net_workers needs addr=(host, port)")
            if replicate_addr is not None:
                raise ValueError(
                    "replicate_addr needs addr=(host, port) — replication "
                    "runs alongside the TCP front end")
            return server
        from .net.protocol import DEFAULT_MAX_FRAME
        from .net.server import NetServer

        host, port = addr
        if replicate_addr is not None:
            rhost, rport = replicate_addr
            replicate_addr = (rhost, int(rport))
        return NetServer(
            server, host, int(port), workers=net_workers,
            max_frame=DEFAULT_MAX_FRAME if max_frame is None else max_frame,
            own_server=True, replicate_addr=replicate_addr,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> IndexConfig:
        """The (immutable) configuration this index was built with."""
        return self._config

    @property
    def source(self) -> str:
        """``"built"`` for fresh fits, ``"loaded"`` for reopened indexes."""
        return self.engine.source

    @property
    def keys(self) -> np.ndarray:
        """The live, sorted global key array."""
        return self.engine.keys

    @property
    def key_dtype(self) -> np.dtype:
        """Dtype of the indexed keys (queries are normalised to it)."""
        return self.engine.key_dtype

    def __len__(self) -> int:
        return len(self.engine)

    def build_info(self) -> dict[str, object]:
        """One-line engine summary (shards, sizes, staleness, source)."""
        return self.engine.build_info()

    def close(self) -> None:
        """Commit + release the durability layer and the worker pool."""
        if self.durability is not None:
            self.durability.close()
        self.executor.close()

    def __enter__(self) -> "Index":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Index(N={len(self)}, K={self.engine.num_shards}, "
            f"backend={self.engine.backend_kind!r}, source={self.source!r})"
        )


def open(path: str | Path) -> Index:
    """Reopen a saved index from ``path`` — ``repro.open(index.save(...))``.

    Module-level alias of :meth:`Index.open`, mirroring the stdlib's
    ``open``-a-resource idiom: load every shard's model, correction
    layer and pending update state without refitting anything.
    """
    return Index.open(Path(path))


__all__ = ["CONFIG_VERSION", "PRESETS", "Index", "IndexConfig", "open"]
