"""Lint fixture: lane-loop-free variants that must produce zero findings.

This file is never imported, only parsed.
"""

import numpy as np


def lookup_batch_vectorised(data, queries):
    # whole-batch array pass: the sanctioned non-kernel shape
    return np.searchsorted(data, queries, side="left").astype(np.int64)


def per_shard_chunks(spans, chunks):
    # looping over shard spans (not lanes) is orchestration, not a kernel
    for a, b in spans:
        chunks.append((a, b))
    return chunks


def per_row_build(rows):
    # generic build-time record iteration: not query/key lane traffic
    return [r.cost for r in rows]


def count_bounds(num_queries, n_keys):
    # count-like names must not trip the query/key heuristic
    return [i for i in range(num_queries)] + [n_keys]
