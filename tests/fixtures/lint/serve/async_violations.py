"""Lint fixture: RPR4xx blocking calls inside ``async def``.

This file is never imported, only parsed.
"""

import os
import time


async def handle(request, lock, path):
    time.sleep(0.01)  # expect: RPR401
    lock.acquire()  # expect: RPR401
    with open(path) as fh:  # expect: RPR401
        data = fh.read()
    os.fsync(3)  # expect: RPR401
    return data
