#!/usr/bin/env python
"""Updatable engine: insert throughput + read latency vs write fraction.

Standalone script (not a pytest-benchmark target) so CI can smoke it:

    PYTHONPATH=src python benchmarks/bench_engine_updates.py --smoke

Every cell is oracle-verified after its workload ran (the driver raises
if any engine answer diverges); see :mod:`repro.bench.engine_updates`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    from repro.bench.engine_updates import (
        DEFAULT_WRITE_FRACTIONS,
        run_engine_updates,
    )
    from repro.bench.reporting import format_table
    from repro.engine import BACKEND_KINDS
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.bench.engine_updates import (
        DEFAULT_WRITE_FRACTIONS,
        run_engine_updates,
    )
    from repro.bench.reporting import format_table
    from repro.engine import BACKEND_KINDS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000,
                        help="keys in the dataset (default 100k)")
    parser.add_argument("--ops", type=int, default=50_000,
                        help="operations per cell (default 50k)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--dataset", default="uden64")
    parser.add_argument("--model", default="interpolation")
    parser.add_argument("--layer", default="R", choices=["R", "S", "none"])
    parser.add_argument("--backends", nargs="*", default=list(BACKEND_KINDS))
    parser.add_argument("--write-fractions", nargs="*", type=float,
                        default=list(DEFAULT_WRITE_FRACTIONS))
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--workers", type=int, default=1,
                        help="thread-pool size for cross-shard reads")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration (fast, still verified)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n = min(args.n, 20_000)
        args.ops = min(args.ops, 4_000)
        args.write_fractions = [0.0, 0.1]

    rows = run_engine_updates(
        n=args.n,
        num_shards=args.shards,
        dataset=args.dataset,
        model=args.model,
        layer=None if args.layer == "none" else args.layer,
        backends=tuple(args.backends),
        write_fractions=tuple(args.write_fractions),
        ops=args.ops,
        batch_size=args.batch_size,
        seed=args.seed,
        workers=args.workers,
    )
    table = [
        [r["backend"], r["write_fraction"], r["inserts"],
         r["inserts_per_sec"], r["read_ns_per_lookup"], r["read_qps"],
         r["final_shards"], r["pending_updates"], r["exact"]]
        for r in rows
    ]
    print(format_table(
        ["backend", "write frac", "inserts", "inserts/s", "read ns/op",
         "read qps", "shards", "pending", "exact"],
        table,
        title=(f"engine updates — {args.dataset}, n={args.n:,}, "
               f"K={args.shards}, model={args.model}, layer={args.layer}"),
        float_digits=2,
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
