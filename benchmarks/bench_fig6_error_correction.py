"""F6 — Figure 6: Shift-Table correcting a single straight-line model on
the osmc dataset.

The paper: "While the average error of the model is 28 million keys,
Shift-Table reduces the error to only 129 keys" (200M keys).  At our
scale the absolute numbers shrink, but the collapse by several orders of
magnitude is the reproduced shape.
"""

from conftest import run_once

from repro.bench.experiments import fig6_error_correction
from repro.bench.reporting import format_table


def test_fig6_error_correction(benchmark):
    r = run_once(benchmark, fig6_error_correction)

    print()
    print(
        format_table(
            ["metric", "before correction", "after correction"],
            [
                ["mean |error|", r["mean_error_before"], r["mean_error_after"]],
                ["p99 |error|", r["p99_before"], r["p99_after"]],
                ["max |error|", r["max_before"], r["max_after"]],
            ],
            title=f"Figure 6 — linear model on osmc64 (n={r['n']:,})",
        )
    )
    print(f"error reduction factor: {r['reduction_factor']:,.0f}x "
          f"(paper at 200M keys: ~217,000x)")

    assert r["reduction_factor"] > 100
    assert r["mean_error_after"] < r["mean_error_before"] / 100
    benchmark.extra_info["fig6"] = {
        k: round(v, 2) for k, v in r.items() if isinstance(v, float)
    }
