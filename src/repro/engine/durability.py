"""Durable writes: WAL + incremental checkpoints + crash recovery.

:class:`DurabilityManager` turns a live :class:`~repro.engine.sharded.ShardedIndex`
into a crash-safe one, following the production pattern of learned
indexes over immutable on-disk runs plus delta buffers ("Learned
Indexes for a Google-scale Disk-based Database"): models are expensive
to fit and cheap to use, so recovery *replays data into buffers* and
never refits models.

Three cooperating pieces, one directory::

    index.db/
      MANIFEST.json                  # generation-counted root pointer
      segments/g<gen>-s<shard>.npz   # one checkpointed shard each
      wal/g<gen>/lane-<shard>.wal    # CRC-framed mutation log

* **WAL** (:mod:`repro.engine.wal`) — every applied ``insert``/``delete``
  is appended (via the engine's :class:`~repro.engine.sharded.WriteEvent`
  hook, under the write lock, so LSN order *is* apply order) and group-
  commit fsynced.  A write is *acknowledged* once its LSN is
  ``durable_lsn`` or below.
* **Incremental checkpoints** — :meth:`DurabilityManager.checkpoint`
  flushes **one shard at a time**: the engine write lock is held only
  while a shard is snapshotted into owned array copies
  (:func:`~repro.engine.persist.encode_shard_state`); serialising and
  fsyncing the segment file happens with no lock held.  Writers are
  never blocked for longer than one shard's snapshot — the whole point,
  versus :func:`~repro.engine.persist.save_index` holding the lock
  across the full archive.  Structural maintenance (splits/merges) is
  deferred for the duration (:meth:`ShardedIndex.defer_maintenance`) so
  shard ids in segment files and WAL records agree; it catches up the
  moment the pass ends.  Each segment records the WAL position
  (``flushed_lsn``) its state already contains.
* **Crash recovery** — :meth:`DurabilityManager.recover` loads the last
  *published* manifest (manifests are fsynced and atomically replaced,
  so a crash mid-pass leaves the previous generation intact), decodes
  every segment without refitting, and replays the WAL tail: a record
  is applied unless its LSN is at or below the flushed LSN of the shard
  it was originally applied to.  Replayed writes flow through the
  ordinary ``insert``/``delete`` paths, which the ``gapped``/``fenwick``
  backends absorb into their pending-update buffers — stale model plus
  fresh deltas, refit only when ordinary maintenance decides to.

Consistency argument (why the per-shard LSN filter is exact): shard
structure is frozen during a pass, so a record tagged ``s`` with
``lsn <= flushed_lsn[s]`` was applied before shard ``s`` was
snapshotted — its effect is inside the segment; one with a larger LSN
was applied after — its effect is not, and cannot be inside any *other*
segment because the key routed to ``s`` for as long as the structure
stayed frozen.  Records from before the pass are below every flushed
LSN (the WAL rotates to a fresh generation at pass start); records
after it are above every flushed LSN; both fall out of the same test.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .persist import (
    _config_from_dict,
    _config_to_dict,
    _fsync_dir,
    encode_shard_state,
    load_shard_segment,
    save_shard_segment,
)
from .sharded import ShardedIndex, WriteEvent
from .wal import (
    OP_DELETE,
    OP_INSERT,
    WalWriter,
    list_generations,
    read_wal,
)

#: Manifest magic marking a directory as a durable index.
DURABLE_FORMAT_NAME = "repro-durable-index"

#: Durable-directory layout version; bump on incompatible changes.
DURABLE_FORMAT_VERSION = 1

#: The generation-counted root pointer file.
MANIFEST_NAME = "MANIFEST.json"

_SEGMENT_RE = re.compile(r"^g(\d{10})-s(\d{4})\.npz$")


class DurabilityError(ValueError):
    """A durable index directory could not be written or recovered.

    Raised with a human-readable reason: not a durable index directory,
    an unsupported layout version, an unrecoverable (empty) state, or a
    checkpoint attempted on an empty index.
    """


def is_durable_dir(path: str | Path) -> bool:
    """Whether ``path`` looks like a durable index directory."""
    return (Path(path) / MANIFEST_NAME).is_file()


def _atomic_write_text(path: Path, text: str) -> None:
    """Durably publish a small text file (fsync + rename + dir fsync)."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp_path = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)


@dataclass
class RecoveredState:
    """Everything :func:`replay_directory` rebuilt from a durable dir.

    ``index`` is ``None`` when the checkpoint was empty and no insert
    survived in the WAL tail (the caller decides whether that is an
    error — :meth:`DurabilityManager.recover` refuses it, a replication
    follower falls back to a fresh sync).
    """

    manifest: dict
    index: "ShardedIndex | None"
    key_dtype: np.dtype
    flushed_lsns: list[int]
    max_lsn: int
    replayed: int
    skipped: int
    torn: bool

    @property
    def generation(self) -> int:
        """Generation of the manifest the state was rebuilt from."""
        return int(self.manifest["generation"])


def replay_directory(root: str | Path) -> RecoveredState:
    """Rebuild the live engine state a durable directory describes.

    The shared read side of crash recovery:
    :meth:`DurabilityManager.recover` and the replication follower
    (:mod:`repro.replica`) both boot through it.  Loads the published
    manifest's segments (checksum-verified, no refitting) and replays
    the WAL tail in LSN order through the ordinary write paths,
    applying the per-shard flushed-LSN filter documented in the module
    docstring.  Pure read: opens no WAL writer, attaches no listeners,
    mutates nothing on disk.
    """
    root = Path(root)
    manifest = DurabilityManager._read_manifest(root)
    key_dtype = np.dtype(manifest["key_dtype"])

    shards, flushed_lsns, lengths = [], [], []
    for name in manifest["segments"]:
        seg_manifest, shard = load_shard_segment(root / name)
        shards.append(shard)
        flushed_lsns.append(int(seg_manifest["flushed_lsn"]))
        lengths.append(int(seg_manifest["length"]))

    records, torn = read_wal(
        root / "wal", min_generation=int(manifest["generation"])
    )
    index = DurabilityManager._build_engine(
        manifest, shards, lengths, key_dtype
    )
    replayed = skipped = 0
    for record in records:
        if (
            record.shard < len(flushed_lsns)
            and record.lsn <= flushed_lsns[record.shard]
        ):
            continue  # effect already inside that shard's segment
        if index is None:
            if record.op != OP_INSERT:
                skipped += 1  # a delete cannot land on emptiness
                continue
            index = DurabilityManager._seed_engine(
                manifest, record.key, key_dtype
            )
            replayed += 1
            continue
        if record.op == OP_INSERT:
            index.insert(record.key)
            replayed += 1
        elif record.op == OP_DELETE:
            try:
                index.delete(record.key)
                replayed += 1
            except KeyError:
                # a torn, never-acknowledged tail can keep a delete
                # whose matching insert was lost; acknowledged records
                # can never hit this (their dependencies were fsynced
                # by the same or an earlier commit)
                skipped += 1
        else:
            raise DurabilityError(
                f"unknown WAL opcode {record.op} at LSN {record.lsn}"
            )

    max_lsn = max([r.lsn for r in records] + flushed_lsns + [0])
    return RecoveredState(
        manifest=manifest, index=index, key_dtype=key_dtype,
        flushed_lsns=flushed_lsns, max_lsn=max_lsn,
        replayed=replayed, skipped=skipped, torn=torn,
    )


class DurabilityManager:
    """Owns one index's WAL, checkpoints and recovery lifecycle.

    Create with :meth:`create` (fresh directory around a live engine) or
    :meth:`recover` (reopen after a crash or clean shutdown); both
    attach the manager as a write listener, after which every engine
    mutation is logged before the caller hears back.  ``sync``
    (:data:`~repro.engine.wal.WAL_SYNC_MODES`) sets the fsync policy:
    ``"always"`` commits inside the write call, ``"group"`` leaves the
    fsync to :meth:`commit` (one fsync acknowledges many writes — the
    asyncio server batches concurrent writers onto one), ``"async"``
    never fsyncs.  Thread-safe the way the engine is: mutations are
    serialised by the engine write lock, and :meth:`commit` /
    :meth:`checkpoint` may run from another thread (the server runs
    both off the event loop).
    """

    def __init__(
        self,
        index: ShardedIndex,
        root: str | Path,
        wal: WalWriter,
        *,
        generation: int,
        sync: str,
        index_config: dict | None = None,
        manifest: dict | None = None,
        replayed: int = 0,
        skipped: int = 0,
        keep_generations: int = 0,
    ) -> None:
        if keep_generations < 0:
            raise DurabilityError("keep_generations must be >= 0")
        self.index = index
        self.root = Path(root)
        self.wal = wal
        self.sync = sync
        #: WAL generations retained *behind* the published one so a
        #: briefly-disconnected replication follower can resume from its
        #: flushed LSN instead of re-syncing the whole generation
        #: (0 restores the prune-immediately behaviour)
        self.keep_generations = int(keep_generations)
        #: generation of the last *published* manifest
        self.generation = generation
        #: the manifest currently on disk (None until first checkpoint)
        self.manifest = manifest
        #: facade-level config dict carried through manifests verbatim
        self.index_config = index_config
        #: WAL records applied / skipped by the recovery that built this
        #: manager (both 0 for :meth:`create`)
        self.replayed = replayed
        self.skipped = skipped
        self._checkpoint_lock = threading.Lock()
        self._listening = False
        self._closed = False
        #: replication taps: ``fn(lsn, op, shard, key)`` per WAL append
        self._record_listeners: list = []
        self._pin_lock = threading.Lock()
        self._pins: dict[int, int] = {}
        self._next_pin = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        index: ShardedIndex,
        root: str | Path,
        *,
        sync: str = "group",
        group_ops: int = 256,
        index_config: dict | None = None,
        keep_generations: int = 0,
    ) -> "DurabilityManager":
        """Wrap a live engine in a fresh durable directory.

        Writes the initial checkpoint (generation 1) so recovery always
        has a base to replay onto, then starts logging.  Refuses a
        directory that already holds a durable index — reopening one is
        :meth:`recover`'s job, and silently re-initialising would orphan
        its WAL.
        """
        root = Path(root)
        if is_durable_dir(root):
            raise DurabilityError(
                f"{root} already contains a durable index — use "
                "DurabilityManager.recover() to reopen it"
            )
        root.mkdir(parents=True, exist_ok=True)
        wal = WalWriter(
            root / "wal", index.key_dtype,
            generation=0, start_lsn=1, sync=sync, group_ops=group_ops,
        )
        manager = cls(
            index, root, wal, generation=0, sync=sync,
            index_config=index_config, keep_generations=keep_generations,
        )
        manager._attach()
        try:
            manager.checkpoint()
        except BaseException:
            manager.close()
            raise
        return manager

    @classmethod
    def recover(
        cls,
        root: str | Path,
        *,
        sync: str | None = None,
        group_ops: int = 256,
        keep_generations: int = 0,
    ) -> "DurabilityManager":
        """Reopen a durable directory: last good checkpoint + WAL replay.

        Loads the published manifest's segments (no refitting), replays
        every WAL record past its shard's flushed LSN in LSN order
        through the ordinary write paths (buffered backends absorb them
        as pending deltas), and resumes logging on a fresh WAL
        generation with continuing LSNs.  ``sync=None`` keeps the policy
        recorded in the manifest.  Raises :class:`DurabilityError` for
        directories that are not (or no longer) recoverable.
        """
        root = Path(root)
        state = replay_directory(root)
        manifest = state.manifest
        if sync is None:
            sync = manifest.get("sync", "group")
        if state.index is None:
            raise DurabilityError(
                f"{root} recovered to an empty index (all keys deleted "
                "and no inserts to replay) — nothing to reopen"
            )
        state.index.source = "recovered"

        wal_gens = list_generations(root / "wal")
        next_generation = max(wal_gens + [state.generation]) + 1
        wal = WalWriter(
            root / "wal", state.key_dtype,
            generation=next_generation, start_lsn=state.max_lsn + 1,
            sync=sync, group_ops=group_ops,
        )
        manager = cls(
            state.index, root, wal,
            generation=state.generation, sync=sync,
            index_config=manifest.get("index_config"), manifest=manifest,
            replayed=state.replayed, skipped=state.skipped,
            keep_generations=keep_generations,
        )
        manager._attach()
        return manager

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        if not self._listening:
            self.index.add_write_listener(self._on_write)
            self._listening = True

    def _on_write(self, event: WriteEvent) -> None:
        # runs under the engine write lock, after the mutation applied:
        # LSN order is apply order, and only *successful* writes log
        if event.kind == "insert":
            op = OP_INSERT
        elif event.kind == "delete":
            op = OP_DELETE
        else:
            return  # refresh/retune never change the logical keys
        lsn = self.wal.append(op, event.shard, event.key)
        for listener in list(self._record_listeners):
            listener(lsn, op, event.shard, event.key)

    def add_record_listener(self, fn) -> None:
        """Register ``fn(lsn, op, shard, key)``, called for every WAL
        append at the engine apply point (still under the shard's write
        lock, right after :class:`WriteEvent` dispatch).  LSNs are
        globally unique and gap-free; concurrent distinct-shard writers
        may invoke listeners out of LSN order, so consumers that need
        the total order reassemble by LSN (the replication streamer's
        record buffer does exactly that)."""
        self._record_listeners.append(fn)

    def remove_record_listener(self, fn) -> None:
        """Detach a listener added by :meth:`add_record_listener`."""
        try:
            self._record_listeners.remove(fn)
        except ValueError:
            pass

    def commit(self) -> int:
        """Group-commit: make every logged write durable; returns the LSN.

        One fsync per call regardless of how many writes accumulated —
        callers that batch writes (the serving layer) acknowledge them
        all with this single call.
        """
        return self.wal.commit()

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently logged write."""
        return self.wal.last_lsn

    @property
    def durable_lsn(self) -> int:
        """Highest LSN guaranteed to survive a crash."""
        return self.wal.durable_lsn

    @property
    def needs_commit(self) -> bool:
        """Whether logged writes are still awaiting their group fsync."""
        return self.wal.durable_lsn < self.wal.last_lsn

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, *, resume: bool = True) -> dict:
        """Flush every shard to a new segment generation, incrementally.

        Safe under live traffic: writers are only ever blocked for one
        shard's in-memory snapshot (plus WAL rotation at the start),
        never for serialisation, compression or fsync.  Publishing the
        manifest is the commit point — a crash anywhere before it leaves
        the previous generation authoritative, and the WAL tail covers
        everything since.  Returns the published manifest.

        ``resume=False`` leaves structural maintenance deferred on
        success; the caller must invoke
        :meth:`ShardedIndex.resume_maintenance` itself.  The asyncio
        server uses this to run the flush off the event loop but the
        catch-up splits *on* it, ordered with its lock-free readers.
        A failing pass always resumes before raising.
        """
        with self._checkpoint_lock:
            if self._closed:
                raise DurabilityError("the durability manager is closed")
            index = self.index
            if len(index) == 0:
                raise DurabilityError(
                    "cannot checkpoint an empty index (no keys)"
                )
            generation = max(self.generation, self.wal.generation) + 1
            seg_dir = self.root / "segments"
            seg_dir.mkdir(exist_ok=True)
            with index._write_lock:
                index.defer_maintenance()
                # records before this rotation land in generations the
                # new manifest supersedes; after it, in the one it keeps
                self.wal.rotate(generation)
                num_shards = index.num_shards
            published = False
            try:
                segments: list[str] = []
                flushed_lsns: list[int] = []
                for s in range(num_shards):
                    with index._write_lock:
                        shard = index.shards[s]
                        entry, arrays = encode_shard_state(shard)
                        length = 0 if shard is None else len(shard)
                        flushed = self.wal.last_lsn
                    # lock released: serialise + fsync without blocking
                    name = f"segments/g{generation:010d}-s{s:04d}.npz"
                    save_shard_segment(
                        self.root / name, entry, arrays,
                        shard_id=s, generation=generation,
                        flushed_lsn=flushed, length=length,
                    )
                    segments.append(name)
                    flushed_lsns.append(flushed)
                with index._write_lock:
                    tuner = index.tuner
                    manifest = {
                        "format": DURABLE_FORMAT_NAME,
                        "format_version": DURABLE_FORMAT_VERSION,
                        "generation": generation,
                        "key_dtype": index.key_dtype.str,
                        "sync": self.sync,
                        "name": index.name,
                        "backend": index.backend_kind,
                        "config": _config_to_dict(index.config),
                        "auto_tune": (
                            tuner.config.to_dict()
                            if tuner is not None else None
                        ),
                        "target_shard_keys": index._target_shard_keys,
                        "num_splits": index.num_splits,
                        "num_merges": index.num_merges,
                        "index_config": self.index_config,
                        "segments": segments,
                        "flushed_lsns": flushed_lsns,
                        "next_lsn": self.wal.next_lsn,
                    }
                _atomic_write_text(
                    self.root / MANIFEST_NAME,
                    json.dumps(manifest, sort_keys=True, indent=1),
                )
                self.generation = generation
                self.manifest = manifest
                published = True
            finally:
                if resume or not published:
                    index.resume_maintenance()
            # the new manifest is live: prune what no consumer can still
            # need — the retention floor keeps `keep_generations` extra
            # WAL generations for briefly-disconnected followers, and
            # pinned generations (followers mid-sync) hold both their
            # segments and their WAL tail on disk
            with self._pin_lock:
                pins = list(self._pins.values())
            wal_floor = min([generation - self.keep_generations] + pins)
            seg_floor = min([generation] + pins)
            self.wal.drop_generations_below(max(wal_floor, 0))
            self._drop_stale_segments(max(seg_floor, 0))
            return manifest

    def pin_current(self) -> tuple[int, dict]:
        """Pin the published generation against GC; ``(token, manifest)``.

        While pinned, :meth:`checkpoint` keeps every segment and WAL
        generation at or above the pinned one on disk, so a replication
        follower can finish fetching that generation (and the WAL tail
        past its flushed LSNs) while fresh checkpoints rotate by.
        Release with :meth:`unpin` — the replication server unpins on
        fetch completion and on follower disconnect.
        """
        with self._pin_lock:
            if self.manifest is None:
                raise DurabilityError(
                    "no published manifest to pin (checkpoint first)"
                )
            token = self._next_pin
            self._next_pin += 1
            self._pins[token] = self.generation
            return token, self.manifest

    def unpin(self, token: int) -> None:
        """Release a :meth:`pin_current` pin (idempotent)."""
        with self._pin_lock:
            self._pins.pop(token, None)

    def _drop_stale_segments(self, generation: int) -> None:
        seg_dir = self.root / "segments"
        removed = False
        for path in seg_dir.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match and int(match.group(1)) < generation:
                path.unlink(missing_ok=True)
                removed = True
        if removed:
            _fsync_dir(seg_dir)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Final group commit, detach from the engine, release the WAL.

        Close is *not* a checkpoint: the WAL tail alone makes the last
        acknowledged state recoverable, which is the contract.  Safe to
        call twice.
        """
        if self._closed:
            return
        self._closed = True
        if self._listening:
            self.index.remove_write_listener(self._on_write)
            self._listening = False
        self.wal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> dict:
        """One-line health dict: generation, LSNs, replay counters."""
        return {
            "root": str(self.root),
            "generation": self.generation,
            "sync": self.sync,
            "last_lsn": self.last_lsn,
            "durable_lsn": self.durable_lsn,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "keep_generations": self.keep_generations,
        }

    # ------------------------------------------------------------------
    # recovery internals
    # ------------------------------------------------------------------
    @staticmethod
    def _read_manifest(root: Path) -> dict:
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.is_file():
            raise DurabilityError(
                f"{root} is not a durable index directory "
                f"(no {MANIFEST_NAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise DurabilityError(
                f"{manifest_path} is unreadable: {exc}"
            ) from exc
        if manifest.get("format") != DURABLE_FORMAT_NAME:
            raise DurabilityError(
                f"{manifest_path} is not a durable index manifest "
                f"(format={manifest.get('format')!r})"
            )
        version = int(manifest.get("format_version", -1))
        if version > DURABLE_FORMAT_VERSION or version < 1:
            raise DurabilityError(
                f"{root} uses durable layout version {version}; this "
                f"library reads versions 1..{DURABLE_FORMAT_VERSION}"
            )
        return manifest

    @staticmethod
    def _engine_kwargs(manifest: dict) -> dict:
        auto_tune: object = False
        if manifest.get("auto_tune") is not None:
            from .autotune import AutoTuneConfig

            auto_tune = AutoTuneConfig.from_dict(manifest["auto_tune"])
        return {
            "name": manifest["name"],
            "config": _config_from_dict(manifest["config"]),
            "backend": manifest["backend"],
            "auto_tune": auto_tune,
        }

    @classmethod
    def _build_engine(
        cls, manifest: dict, shards: list, lengths: list[int],
        key_dtype: np.dtype,
    ) -> ShardedIndex | None:
        """Checkpoint segments -> live engine (None if all empty)."""
        if sum(lengths) == 0:
            return None
        offsets = np.zeros(len(shards) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        live = [s.keys() for s in shards if s is not None]
        keys = np.concatenate(live) if live else np.empty(0, key_dtype)
        index = ShardedIndex(
            shards, offsets, keys, **cls._engine_kwargs(manifest)
        )
        index._target_shard_keys = int(manifest["target_shard_keys"])
        index.num_splits = int(manifest["num_splits"])
        index.num_merges = int(manifest["num_merges"])
        return index

    @classmethod
    def _seed_engine(
        cls, manifest: dict, key, key_dtype: np.dtype,
    ) -> ShardedIndex:
        """An engine reborn from one replayed insert (checkpoint was
        empty — every key had been deleted when the pass ran)."""
        kwargs = cls._engine_kwargs(manifest)
        config = kwargs.pop("config")
        index = ShardedIndex.build(
            np.asarray([key], dtype=key_dtype), 1,
            model=config.model, layer=config.layer,
            layer_partitions=config.layer_partitions,
            payload_bytes=config.payload_bytes,
            density=config.density,
            merge_threshold=config.merge_threshold,
            **kwargs,
        )
        index._target_shard_keys = int(manifest["target_shard_keys"])
        index.num_splits = int(manifest["num_splits"])
        index.num_merges = int(manifest["num_merges"])
        return index


__all__ = [
    "DURABLE_FORMAT_NAME",
    "DURABLE_FORMAT_VERSION",
    "MANIFEST_NAME",
    "DurabilityError",
    "DurabilityManager",
    "RecoveredState",
    "is_durable_dir",
    "replay_directory",
]
