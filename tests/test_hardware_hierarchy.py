"""Unit tests for the simulated memory hierarchy."""

import pytest

from repro.hardware.hierarchy import _EXACT_SCAN_LIMIT, MemoryHierarchy
from repro.hardware.machine import MachineSpec


def tiny_machine(**overrides) -> MachineSpec:
    params = dict(
        l1_bytes=4 * 64,
        l2_bytes=16 * 64,
        l3_bytes=64 * 64,
        l1_ns=1.0,
        l2_ns=4.0,
        l3_ns=12.0,
        dram_ns=36.0,
        seq_line_ns=2.0,
    )
    params.update(overrides)
    return MachineSpec(**params)


def test_cold_access_costs_dram():
    h = MemoryHierarchy(tiny_machine())
    assert h.access(5) == 36.0
    assert h.stats.dram_accesses == 1


def test_second_access_hits_l1():
    h = MemoryHierarchy(tiny_machine())
    h.access(5)
    assert h.access(5) == 1.0
    assert h.stats.l1_hits == 1


def test_inclusive_fill_l2_hit_after_l1_eviction():
    h = MemoryHierarchy(tiny_machine())
    h.access(0)
    # evict line 0 from tiny L1 (4 lines) but keep it in L2 (16 lines)
    for line in range(1, 6):
        h.access(line)
    assert h.access(0) == 4.0  # L2 hit
    assert h.stats.l2_hits == 1


def test_l3_hit_after_l2_eviction():
    h = MemoryHierarchy(tiny_machine())
    h.access(0)
    for line in range(1, 20):
        h.access(line)
    assert h.access(0) == 12.0  # L3 hit
    assert h.stats.l3_hits == 1


def test_scan_streams_after_first_miss():
    h = MemoryHierarchy(tiny_machine())
    ns = h.scan(100, 10)
    # one cold miss + 9 prefetched lines
    assert ns == pytest.approx(36.0 + 9 * 2.0)
    assert h.stats.dram_accesses == 10


def test_scan_hits_cached_lines():
    h = MemoryHierarchy(tiny_machine())
    h.access(100)
    ns = h.scan(100, 2)
    # line 100 is an L1 hit; line 101 restarts the stream with a full miss
    assert ns == pytest.approx(1.0 + 36.0)


def test_scan_zero_or_negative_length_is_free():
    h = MemoryHierarchy(tiny_machine())
    assert h.scan(0, 0) == 0.0
    assert h.stats.accesses == 0


def test_analytic_scan_matches_streaming_cost():
    h = MemoryHierarchy(tiny_machine())
    n = _EXACT_SCAN_LIMIT + 10
    ns = h.scan(0, n)
    assert ns == pytest.approx(36.0 + (n - 1) * 2.0)
    assert h.stats.dram_accesses == n


def test_analytic_scan_leaves_tail_cached():
    h = MemoryHierarchy(tiny_machine())
    n = _EXACT_SCAN_LIMIT + 10
    h.scan(0, n)
    # last line of the scan should be resident (filled during the scan)
    assert h.access(n - 1) == 1.0


def test_instructions_cost():
    machine = tiny_machine()
    h = MemoryHierarchy(machine)
    ns = h.instructions(10)
    assert ns == pytest.approx(10 * machine.instr_ns)
    assert h.stats.instructions == 10


def test_total_ns_accumulates():
    h = MemoryHierarchy(tiny_machine())
    h.access(1)
    h.access(1)
    h.instructions(5)
    assert h.stats.total_ns == pytest.approx(36.0 + 1.0 + 0.5)


def test_reset_stats_keeps_cache_contents():
    h = MemoryHierarchy(tiny_machine())
    h.access(1)
    h.reset_stats()
    assert h.stats.accesses == 0
    assert h.access(1) == 1.0  # still cached


def test_flush_caches():
    h = MemoryHierarchy(tiny_machine())
    h.access(1)
    h.flush_caches()
    assert h.access(1) == 36.0


def test_llc_misses_property():
    h = MemoryHierarchy(tiny_machine())
    h.access(1)
    h.access(1)
    assert h.stats.llc_misses == 1
    assert h.stats.l1_misses == 1
