"""Prediction-error metrics (paper §3.5, §3.6 and Figure 8's log2 error).

The paper distinguishes the *drift* (signed error, §3) from the absolute
error, and reports the SOSD benchmark's "average Log2 error" — the
average number of binary-search iterations the last mile needs.
"""

from __future__ import annotations

import numpy as np

from ..datasets.cdf import key_positions
from ..models.base import CDFModel


def signed_drift(data: np.ndarray, model: CDFModel) -> np.ndarray:
    """``N·F(x) − ⌊N·F_θ(x)⌋`` for every slot of ``data`` (the §3 drift)."""
    n = len(data)
    pred = np.clip(model.predict_pos_batch(data).astype(np.int64), 0, n - 1)
    return key_positions(data) - pred


def error_stats(errors: np.ndarray) -> dict[str, float]:
    """Summary statistics over an array of signed errors."""
    abs_err = np.abs(errors)
    return {
        "mean_abs": float(abs_err.mean()),
        "median_abs": float(np.median(abs_err)),
        "p99_abs": float(np.percentile(abs_err, 99)),
        "max_abs": float(abs_err.max()),
        "mean_signed": float(errors.mean()),
        "log2": log2_error(errors),
    }


def log2_error(errors: np.ndarray) -> float:
    """SOSD's metric: ``mean(log2(|err| + 1))`` — binary-search iterations."""
    return float(np.log2(np.abs(errors).astype(np.float64) + 1.0).mean())


def corrected_errors(
    data: np.ndarray, model: CDFModel, corrected_pos: np.ndarray
) -> np.ndarray:
    """Signed error of already-corrected predictions for every slot."""
    return key_positions(data) - corrected_pos
