"""Shared fixtures for the test suite.

Hypothesis strategies and query builders live in ``tests/helpers.py``
(importable as ``helpers``); only pytest fixtures belong here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizers import install_global, sanitizers_enabled
from repro.core.records import SortedData
from repro.hardware.tracker import alloc_region

# REPRO_SANITIZE=1 runs the whole suite with runtime invariant checking:
# every ShardedIndex gets a lock-ownership tracker asserting WriteEvents
# fire under the write lock, and every DurabilityManager gets a WAL
# wrapper asserting apply-order = LSN-order (see repro.analysis.sanitizers)
if sanitizers_enabled():
    install_global()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_sorted_keys(rng) -> np.ndarray:
    """1000 sorted uint64 keys with a few duplicate runs."""
    keys = rng.integers(0, 1 << 40, size=1000, dtype=np.uint64)
    keys[100:110] = keys[100]  # forced duplicate run
    keys.sort()
    return keys


@pytest.fixture()
def small_data(small_sorted_keys) -> SortedData:
    return SortedData(small_sorted_keys, name="small")


@pytest.fixture()
def region():
    return alloc_region("test_region", 8, 4096)
