"""Three-level simulated memory hierarchy with DRAM backing.

This is the measurement instrument of the whole reproduction (DESIGN.md,
substitution S1): every index implementation routes its memory touches
through a :class:`MemoryHierarchy`, which charges the latency of the level
that serves each 64-byte line and keeps per-level hit/miss counters.  The
resulting "simulated nanoseconds" play the role of the paper's measured
nanoseconds.

Two access primitives are provided:

* :meth:`access` — one random (pointer-chase) access to a line.  Probes
  L1, L2, L3 in order; a full miss costs DRAM latency; the line is then
  filled into all levels (inclusive hierarchy).
* :meth:`scan` — a sequential scan over a contiguous line range.  The
  first missing line pays the full DRAM latency; subsequent missing lines
  are charged ``seq_line_ns`` each, modelling the hardware prefetcher.
  Very long scans take an analytic fast path so simulating a multi-MB
  linear search stays O(1) in Python (the cache contents are flushed in
  that case, as the scan would have evicted everything anyway).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import LRUCacheLevel
from .machine import MachineSpec

#: Scans longer than this many lines switch to the analytic fast path.
_EXACT_SCAN_LIMIT = 4096


@dataclass
class HierarchyStats:
    """Aggregated counters since the last ``reset_stats``."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    scan_lines: int = 0
    instructions: int = 0
    total_ns: float = 0.0

    @property
    def l1_misses(self) -> int:
        return self.accesses - self.l1_hits

    @property
    def llc_misses(self) -> int:
        """Accesses that went all the way to DRAM (the paper's LLC misses)."""
        return self.dram_accesses


class MemoryHierarchy:
    """Inclusive L1/L2/L3 + DRAM model charging per-access latencies."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.l1 = LRUCacheLevel(spec.l1_lines, spec.l1_ns)
        self.l2 = LRUCacheLevel(spec.l2_lines, spec.l2_ns)
        self.l3 = LRUCacheLevel(spec.l3_lines, spec.l3_ns)
        self.stats = HierarchyStats()

    # ------------------------------------------------------------------
    # access primitives
    # ------------------------------------------------------------------
    def access(self, line: int) -> float:
        """One pointer-chase access to ``line``; returns its cost in ns."""
        stats = self.stats
        stats.accesses += 1
        if self.l1.lookup(line):
            ns = self.spec.l1_ns
            stats.l1_hits += 1
        elif self.l2.lookup(line):
            ns = self.spec.l2_ns
            stats.l2_hits += 1
            self.l1.fill(line)
        elif self.l3.lookup(line):
            ns = self.spec.l3_ns
            stats.l3_hits += 1
            self.l2.fill(line)
            self.l1.fill(line)
        else:
            ns = self.spec.dram_ns
            stats.dram_accesses += 1
            self.l3.fill(line)
            self.l2.fill(line)
            self.l1.fill(line)
        stats.total_ns += ns
        return ns

    def scan(self, first_line: int, num_lines: int) -> float:
        """Sequential scan over ``num_lines`` lines starting at ``first_line``.

        Returns the cost in ns.  Models a hardware prefetcher: after the
        first DRAM miss of a run, subsequent sequential misses stream in
        at ``seq_line_ns`` per line.
        """
        if num_lines <= 0:
            return 0.0
        stats = self.stats
        stats.scan_lines += num_lines
        if num_lines > _EXACT_SCAN_LIMIT:
            return self._scan_analytic(first_line, num_lines)

        spec = self.spec
        ns = 0.0
        streaming = False
        for line in range(first_line, first_line + num_lines):
            stats.accesses += 1
            if self.l1.lookup(line):
                ns += spec.l1_ns
                stats.l1_hits += 1
                streaming = False
            elif self.l2.lookup(line):
                ns += spec.l2_ns
                stats.l2_hits += 1
                streaming = False
                self.l1.fill(line)
            elif self.l3.lookup(line):
                ns += spec.l3_ns
                stats.l3_hits += 1
                streaming = False
                self.l2.fill(line)
                self.l1.fill(line)
            else:
                stats.dram_accesses += 1
                ns += spec.seq_line_ns if streaming else spec.dram_ns
                streaming = True
                self.l3.fill(line)
                self.l2.fill(line)
                self.l1.fill(line)
        stats.total_ns += ns
        return ns

    def _scan_analytic(self, first_line: int, num_lines: int) -> float:
        """O(1) approximation for scans far larger than the caches.

        A scan of this length evicts essentially the whole hierarchy, so
        we flush the caches, refill them with the tail of the scanned
        range, and charge one cold miss plus streaming for the rest.
        """
        spec = self.spec
        stats = self.stats
        stats.accesses += num_lines
        stats.dram_accesses += num_lines
        ns = spec.dram_ns + (num_lines - 1) * spec.seq_line_ns
        last = first_line + num_lines
        for level in (self.l3, self.l2, self.l1):
            level.flush()
            level.fill_many(range(max(first_line, last - level.capacity), last))
        stats.total_ns += ns
        return ns

    def instructions(self, count: int) -> float:
        """Charge ``count`` retired instructions; returns the cost in ns."""
        ns = count * self.spec.instr_ns
        self.stats.instructions += count
        self.stats.total_ns += ns
        return ns

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        self.stats = HierarchyStats()
        for level in (self.l1, self.l2, self.l3):
            level.reset_stats()

    def flush_caches(self) -> None:
        for level in (self.l1, self.l2, self.l3):
            level.flush()
