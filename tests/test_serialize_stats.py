"""Layer/model persistence and the §2.4/§3.6 dataset diagnostics."""

import numpy as np
import pytest

from repro.core.compact import CompactShiftTable
from repro.core.corrected_index import CorrectedIndex
from repro.core.records import SortedData
from repro.core.serialize import (
    load_layer,
    load_simple_model,
    save_compact_shift_table,
    save_shift_table,
    save_simple_model,
)
from repro.core.shift_table import ShiftTable
from repro.datasets import load
from repro.datasets.stats import (
    burstiness,
    congestion_profile,
    duplication_ratio,
    gap_tail_index,
)
from repro.models import InterpolationModel, LinearModel

N = 20_000


@pytest.fixture(scope="module")
def keys():
    return load("osmc64", N, seed=61)


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def test_shift_table_roundtrip(tmp_path, keys):
    model = InterpolationModel(keys)
    layer = ShiftTable.build(keys, model)
    path = tmp_path / "layer.npz"
    save_shift_table(layer, path)
    loaded = load_layer(path)
    assert isinstance(loaded, ShiftTable)
    assert np.array_equal(loaded.deltas, layer.deltas)
    assert np.array_equal(loaded.widths, layer.widths)
    assert loaded.num_keys == layer.num_keys
    # the re-attached layer answers queries identically (§3.9 detachable)
    data = SortedData(keys)
    index = CorrectedIndex(data, model, loaded)
    qs = np.random.default_rng(0).choice(keys, 200)
    assert np.array_equal(index.lookup_batch(qs), data.lower_bound_batch(qs))


def test_compact_layer_roundtrip(tmp_path, keys):
    model = InterpolationModel(keys)
    layer = CompactShiftTable.build(keys, model, num_partitions=N // 10)
    path = tmp_path / "compact.npz"
    save_compact_shift_table(layer, path)
    loaded = load_layer(path)
    assert isinstance(loaded, CompactShiftTable)
    assert np.array_equal(loaded.drifts, layer.drifts)
    assert loaded.mean_abs_error == layer.mean_abs_error


def test_load_layer_rejects_garbage(tmp_path):
    path = tmp_path / "junk.npz"
    np.savez(path, kind=np.asarray("mystery"), version=np.asarray(1))
    with pytest.raises(ValueError):
        load_layer(path)


def test_simple_model_roundtrip(tmp_path, keys):
    for model in (InterpolationModel(keys), LinearModel(keys)):
        path = tmp_path / f"{model.name}.json"
        save_simple_model(model, path)
        loaded = load_simple_model(path)
        sample = keys[:: N // 100]
        assert np.array_equal(
            loaded.predict_pos_batch(sample), model.predict_pos_batch(sample)
        )


def test_interpolation_roundtrip_is_bit_identical(tmp_path):
    # regression: _max was reconstructed as num_keys / _scale, which
    # need not invert the builder's num_keys / span bit-exactly
    keys = np.asarray([3, 7, 8, 13], dtype=np.uint64)
    model = InterpolationModel(keys)
    path = tmp_path / "im.json"
    save_simple_model(model, path)
    loaded = load_simple_model(path)
    assert loaded._min == model._min
    assert loaded._max == model._max
    assert loaded._scale == model._scale
    probes = np.asarray([0, 3, 5, 8, 13, 14, (1 << 50)], dtype=np.uint64)
    for q in probes:
        assert loaded.predict_pos(q) == model.predict_pos(q)
    assert np.array_equal(
        loaded.predict_pos_batch(probes), model.predict_pos_batch(probes)
    )


def test_simple_model_roundtrip_bit_identical_many_datasets(tmp_path):
    rng = np.random.default_rng(13)
    for trial in range(25):
        n = int(rng.integers(2, 2_000))
        keys = np.sort(rng.integers(0, 1 << 48, n, dtype=np.uint64))
        probes = rng.integers(0, 1 << 48, 64, dtype=np.uint64)
        for model in (InterpolationModel(keys), LinearModel(keys)):
            path = tmp_path / f"m{trial}.json"
            save_simple_model(model, path)
            loaded = load_simple_model(path)
            assert np.array_equal(
                loaded.predict_pos_batch(probes),
                model.predict_pos_batch(probes),
            ), (trial, model.name)
            if isinstance(model, InterpolationModel):
                assert loaded._max == model._max


def test_degenerate_interpolation_roundtrip(tmp_path):
    keys = np.full(5, 42, dtype=np.uint64)  # span 0 => scale 0
    model = InterpolationModel(keys)
    path = tmp_path / "flat.json"
    save_simple_model(model, path)
    loaded = load_simple_model(path)
    assert loaded._max == model._max == loaded._min
    assert loaded.predict_pos(42) == model.predict_pos(42) == 0.0


def test_save_simple_model_rejects_big_models(tmp_path, keys):
    from repro.models import RMIModel

    with pytest.raises(TypeError):
        save_simple_model(RMIModel(keys, 64), tmp_path / "rmi.json")


# ----------------------------------------------------------------------
# dataset diagnostics
# ----------------------------------------------------------------------
def test_duplication_ratio_matches_table2_pattern():
    assert duplication_ratio(load("osmc64", N, seed=61)) > 0.0
    assert duplication_ratio(load("face64", N, seed=61)) == 0.0
    assert duplication_ratio(np.asarray([1], dtype=np.uint64)) == 0.0


def test_gap_tail_heavier_for_real_world():
    smooth = gap_tail_index(load("norm64", N, seed=61))
    rough = gap_tail_index(load("face64", N, seed=61))
    assert rough < smooth  # heavier tail = smaller exponent


def test_gap_tail_small_input_is_nan():
    out = gap_tail_index(np.arange(10, dtype=np.uint64))
    assert np.isnan(out)


def test_congestion_profile_flags_osmc(keys):
    osmc = congestion_profile(keys)
    uden = congestion_profile(load("uden64", N, seed=61))
    assert osmc.max > uden.max
    assert osmc.eq8_error > uden.eq8_error
    assert osmc.is_congested
    assert not uden.is_congested


def test_burstiness_orders_datasets():
    wiki = burstiness(load("wiki64", N, seed=61))
    uden = burstiness(load("uden64", N, seed=61))
    assert wiki > 2 * uden
    with pytest.raises(ValueError):
        burstiness(np.arange(10, dtype=np.uint64), buckets=100)
