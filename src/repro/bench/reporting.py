"""Plain-text table/series formatting for benchmark output.

Every bench prints the same rows the paper reports, via these helpers,
and additionally stores them in ``benchmark.extra_info`` for machine
consumption.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_digits: int = 1,
) -> str:
    """Fixed-width text table; NaN renders as the paper's ``N/A``."""

    def cell(value: object) -> str:
        if value is None:
            return "N/A"
        if isinstance(value, float):
            if math.isnan(value):
                return "N/A"
            return f"{value:.{float_digits}f}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(v.rjust(w) if i else v.ljust(w)
                      for i, (v, w) in enumerate(zip(row, widths)))
        )
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render headers + rows as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()


def speedup(baseline_ns: float, ns: float) -> float:
    """How many times faster than the baseline (NaN-safe)."""
    if math.isnan(baseline_ns) or math.isnan(ns) or ns <= 0:
        return float("nan")
    return baseline_ns / ns
