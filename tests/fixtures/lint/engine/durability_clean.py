"""Lint fixture: crash-durable write patterns, zero findings expected.

This file is never imported, only parsed.
"""

import os


def _fsync_dir(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path, tmp, payload):
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def save(path, tmp, payload):
    # delegates to the atomic helper: no direct file handling here
    _atomic_write(path, tmp, payload)


class Lane:
    """Open-for-append handle whose class fsyncs in ``flush`` (WAL shape)."""

    def __init__(self, path):
        self.fh = open(path, "ab")

    def flush(self):
        self.fh.flush()
        os.fsync(self.fh.fileno())
