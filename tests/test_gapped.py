"""Gapped-array (ALEX-style) updates: the §6 design alternative."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gapped import GappedLearnedIndex
from repro.datasets import load

from helpers import sorted_uint_arrays

N = 20_000


@pytest.fixture()
def gapped():
    return GappedLearnedIndex(load("wiki64", N, seed=121), density=0.75)


def test_construction_spreads_keys(gapped):
    assert gapped.capacity > N
    assert gapped.gap_fraction == pytest.approx(0.25, abs=0.01)
    assert np.array_equal(gapped.real_keys(), load("wiki64", N, seed=121))
    assert not gapped.needs_expand()


def test_gapped_array_is_sorted(gapped):
    keys = gapped.data.keys
    assert bool(np.all(keys[1:] >= keys[:-1]))


def test_lookup_lands_on_run_start(gapped):
    keys = load("wiki64", N, seed=121)
    for q in np.random.default_rng(0).choice(keys, 200):
        pos = gapped.lookup(q)
        garr = gapped.data.keys
        assert garr[pos] >= q
        assert pos == 0 or garr[pos - 1] < q


def test_rank_matches_searchsorted(gapped):
    keys = load("wiki64", N, seed=121)
    probes = np.random.default_rng(1).choice(keys, 200)
    got = np.asarray([gapped.rank(q) for q in probes])
    assert np.array_equal(got, np.searchsorted(keys, probes))


def test_inserts_shift_few_slots(gapped):
    keys = load("wiki64", N, seed=121)
    rng = np.random.default_rng(2)
    lo, hi = int(keys.min()), int(keys.max())
    inserts = (lo + (rng.random(1000) * (hi - lo)).astype(np.uint64)).astype(
        keys.dtype
    )
    shifts = [gapped.insert(k) for k in inserts]
    # the ALEX promise: inserts move a handful of slots, not O(n)
    assert np.mean(shifts) < 20
    merged = np.sort(np.concatenate([keys, inserts]))
    assert np.array_equal(gapped.real_keys(), merged)


def test_ranks_stay_exact_after_inserts(gapped):
    keys = load("wiki64", N, seed=121)
    rng = np.random.default_rng(3)
    lo, hi = int(keys.min()), int(keys.max())
    inserts = (lo + (rng.random(500) * (hi - lo)).astype(np.uint64)).astype(
        keys.dtype
    )
    for k in inserts:
        gapped.insert(k)
    merged = np.sort(np.concatenate([keys, inserts]))
    probes = rng.choice(merged, 200)
    got = np.asarray([gapped.rank(q) for q in probes])
    assert np.array_equal(got, np.searchsorted(merged, probes))


def test_expansion_when_full():
    keys = (np.arange(64, dtype=np.uint64) * 7 + 3).astype(np.uint64)
    g = GappedLearnedIndex(keys, density=0.95)
    rng = np.random.default_rng(4)
    for _ in range(200):
        g.insert(np.uint64(rng.integers(0, 600)))
    assert g.num_keys == 64 + 200
    assert bool(np.all(np.diff(g.real_keys().astype(np.int64)) >= 0))


def test_density_validation():
    keys = np.arange(10, dtype=np.uint64)
    with pytest.raises(ValueError):
        GappedLearnedIndex(keys, density=0.01)
    with pytest.raises(ValueError):
        GappedLearnedIndex(np.asarray([], dtype=np.uint64))


@settings(max_examples=30, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=2, max_size=120, allow_duplicates=False),
    inserts=st.lists(st.integers(0, (1 << 48) - 1), min_size=1, max_size=30),
)
def test_property_gapped_inserts(keys, inserts):
    g = GappedLearnedIndex(keys, density=0.7)
    for k in inserts:
        g.insert(np.uint64(k))
    merged = np.sort(
        np.concatenate([keys, np.asarray(inserts, dtype=np.uint64)])
    )
    assert np.array_equal(g.real_keys(), merged)
    probe = merged[len(merged) // 2]
    assert g.rank(probe) == int(np.searchsorted(merged, probe))


# ----------------------------------------------------------------------
# insert shift-copy regression (overlapping slice corruption)
# ----------------------------------------------------------------------
def test_adversarial_insert_order_long_shifts_both_directions():
    """Regression: the shift branches memmove through an overlapping
    source/destination window.  A copy in the wrong direction (the
    historical in-place slice assignment was memcpy-order-dependent)
    smears one key across the block; clustered inserts that force
    progressively longer shifts in both directions expose it."""
    base = (np.arange(40, dtype=np.uint64) * 1000).astype(np.uint64)
    g = GappedLearnedIndex(base, density=0.75)
    reference = list(map(int, base))
    # hammer a tight cluster so nearby gaps are consumed and every next
    # insert must shift a longer occupied block (right or left towards
    # the nearest surviving gap)
    cluster = [20_500 + step for step in (3, 1, 4, 1, 5, 9, 2, 6, 0, 8,
                                          7, 3, 2, 9, 5, 1, 4, 6, 0, 7)]
    shifts = []
    for value in cluster:
        shifts.append(g.insert(np.uint64(value)))
        reference.append(value)
        g.check_invariants()
        assert np.array_equal(
            g.real_keys(), np.sort(np.asarray(reference, dtype=np.uint64))
        ), f"corrupted after inserting {value}"
    # the adversarial order must actually exercise multi-slot shifts
    assert max(shifts) > 1


@pytest.mark.parametrize("order", ["ascending", "descending"])
def test_adversarial_single_gap_full_array_shift(order):
    """One gap at the far end of a nearly-full array: every insert at
    the other end memmoves the whole occupied prefix/suffix."""
    base = (np.arange(16, dtype=np.uint64) * 10 + 100).astype(np.uint64)
    g = GappedLearnedIndex(base, density=0.95)  # capacity 17, gap at end
    reference = list(map(int, base))
    values = [50, 40, 60, 30, 70] if order == "descending" else [
        50, 60, 40, 70, 30]
    for value in values:
        g.insert(np.uint64(value))
        reference.append(value)
        g.check_invariants()
        assert np.array_equal(
            g.real_keys(), np.sort(np.asarray(reference, dtype=np.uint64))
        )


@settings(max_examples=25, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=2, max_size=80, allow_duplicates=True),
    inserts=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=40),
    density=st.sampled_from([0.5, 0.7, 0.9, 1.0]),
)
def test_property_invariants_hold_after_every_insert(keys, inserts, density):
    g = GappedLearnedIndex(keys, density=density)
    g.check_invariants(strict_clones=True)
    reference = list(map(int, keys))
    for k in inserts:
        g.insert(np.uint64(k))
        reference.append(k)
        # the gap-clone property is preserved by every insert path
        g.check_invariants(strict_clones=True)
    assert np.array_equal(
        g.real_keys(), np.sort(np.asarray(reference, dtype=np.uint64))
    )


def test_thousands_of_random_inserts_match_sorted_reference():
    """Satellite check: the clone-invariant audit at scale — real_keys()
    must equal a plain sorted reference after thousands of inserts."""
    rng = np.random.default_rng(77)
    base = np.unique(rng.integers(0, 1 << 30, 2_100, dtype=np.uint64))[:2_000]
    g = GappedLearnedIndex(base, density=0.8)
    inserts = rng.integers(0, 1 << 30, 3_000, dtype=np.uint64)
    reference = np.sort(np.concatenate([base, inserts]))
    for i, k in enumerate(inserts):
        g.insert(k)
        if i % 500 == 499:
            g.check_invariants(strict_clones=True)
    assert np.array_equal(g.real_keys(), reference)
    probes = rng.choice(reference, 300)
    assert np.array_equal(
        g.rank_batch(probes), np.searchsorted(reference, probes)
    )


# ----------------------------------------------------------------------
# deletes
# ----------------------------------------------------------------------
def test_delete_clears_occupancy_and_keeps_ranks_exact():
    base = (np.arange(50, dtype=np.uint64) * 3).astype(np.uint64)
    g = GappedLearnedIndex(base, density=0.75)
    reference = list(map(int, base))
    rng = np.random.default_rng(5)
    for _ in range(30):
        victim = reference[int(rng.integers(0, len(reference)))]
        g.delete(np.uint64(victim))
        reference.remove(victim)
        g.check_invariants()
        ref = np.asarray(reference, dtype=np.uint64)
        assert np.array_equal(g.real_keys(), ref)
        probes = rng.integers(0, 160, 20).astype(np.uint64)
        assert np.array_equal(g.rank_batch(probes), np.searchsorted(ref, probes))


def test_delete_absent_key_raises():
    g = GappedLearnedIndex(np.asarray([10, 20, 30], dtype=np.uint64))
    with pytest.raises(KeyError):
        g.delete(np.uint64(15))
    g.delete(np.uint64(20))
    with pytest.raises(KeyError):
        g.delete(np.uint64(20))  # already gone (only stale clones remain)


def test_delete_duplicates_one_at_a_time():
    keys = np.asarray([5, 7, 7, 7, 9], dtype=np.uint64)
    g = GappedLearnedIndex(keys, density=0.6)
    for remaining in (2, 1, 0):
        g.delete(np.uint64(7))
        assert int((g.real_keys() == 7).sum()) == remaining
    with pytest.raises(KeyError):
        g.delete(np.uint64(7))
    assert np.array_equal(g.real_keys(), [5, 9])


def test_insert_reclaims_stale_gaps_left_by_deletes():
    keys = (np.arange(30, dtype=np.uint64) * 10).astype(np.uint64)
    g = GappedLearnedIndex(keys, density=0.9)
    reference = list(map(int, keys))
    rng = np.random.default_rng(9)
    for step in range(60):
        if step % 2 == 0 and reference:
            victim = reference[int(rng.integers(0, len(reference)))]
            g.delete(np.uint64(victim))
            reference.remove(victim)
        else:
            value = int(rng.integers(0, 300))
            g.insert(np.uint64(value))
            reference.append(value)
        g.check_invariants()
        assert np.array_equal(
            g.real_keys(), np.sort(np.asarray(reference, dtype=np.uint64))
        )


def test_compact_respreads_after_updates():
    keys = (np.arange(100, dtype=np.uint64) * 2).astype(np.uint64)
    g = GappedLearnedIndex(keys, density=0.75)
    for k in range(1, 40, 2):
        g.insert(np.uint64(k))
    for k in range(0, 30, 4):
        g.delete(np.uint64(k * 2))
    live = g.real_keys().copy()
    g.compact()
    g.check_invariants(strict_clones=True)
    assert np.array_equal(g.real_keys(), live)
    assert g.gap_fraction == pytest.approx(1 - g.density, abs=0.05)
    assert g.pending == 0
