"""Set-associative cache level (the realism upgrade over full LRU).

The default hierarchy uses fully-associative LRU levels (DESIGN.md S1
documents the simplification).  This module provides the set-associative
variant of a real L1/L2/L3 — ``sets = capacity / (line * ways)``, LRU
within each set — so the simplification can be *measured* instead of
assumed: ablation A9 runs the same index on both cache models and
compares the latencies.

The class is drop-in compatible with
:class:`~repro.hardware.cache.LRUCacheLevel` (same lookup/fill/flush
interface), so :class:`~repro.hardware.hierarchy.MemoryHierarchy` can be
built from either via :func:`build_hierarchy`.
"""

from __future__ import annotations

from collections import OrderedDict

from .hierarchy import MemoryHierarchy
from .machine import MachineSpec


class SetAssociativeCacheLevel:
    """N-way set-associative cache with per-set LRU replacement."""

    __slots__ = ("capacity", "ways", "num_sets", "latency_ns", "_sets",
                 "hits", "misses")

    def __init__(
        self, capacity_lines: int, latency_ns: float, ways: int = 8
    ) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.capacity = capacity_lines
        self.ways = min(ways, capacity_lines)
        self.num_sets = max(capacity_lines // self.ways, 1)
        self.latency_ns = latency_ns
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, line: int) -> bool:
        return line in self._sets[line % self.num_sets]

    def lookup(self, line: int) -> bool:
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line: int) -> None:
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            return
        if len(cache_set) >= self.ways:
            cache_set.popitem(last=False)
        cache_set[line] = None

    def fill_many(self, new_lines) -> None:
        for line in new_lines:
            self.fill(line)

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


def build_hierarchy(
    spec: MachineSpec, set_associative: bool = False
) -> MemoryHierarchy:
    """A MemoryHierarchy with either cache model.

    ``set_associative=True`` uses the i7-6700's organisation: 8-way L1,
    8-way L2, 16-way L3.
    """
    hierarchy = MemoryHierarchy(spec)
    if set_associative:
        hierarchy.l1 = SetAssociativeCacheLevel(spec.l1_lines, spec.l1_ns, 8)
        hierarchy.l2 = SetAssociativeCacheLevel(spec.l2_lines, spec.l2_ns, 8)
        hierarchy.l3 = SetAssociativeCacheLevel(spec.l3_lines, spec.l3_ns, 16)
    return hierarchy
