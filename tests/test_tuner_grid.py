"""Edge cases for the §3.9 grid tuners (`tune_rmi`, `tune_radix_spline`)
and the cost-consistency property of `tune()`: the chosen configuration
is never costed worse than any alternative the report lists.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import LatencyCurve
from repro.core.records import SortedData
from repro.core.tuner import tune, tune_radix_spline, tune_rmi
from repro.models.interpolation import InterpolationModel

from helpers import sorted_uint_arrays

#: A flat curve (local search cost does not grow with window size) and a
#: cliff curve (cost explodes immediately) — the degenerate shapes a
#: mis-measured machine could produce; the tuners must stay total.
FLAT_CURVE = LatencyCurve(np.asarray([1, 65536]), np.asarray([50.0, 50.0]))
CLIFF_CURVE = LatencyCurve(np.asarray([1, 2]), np.asarray([1.0, 10_000.0]))


def small_data(n: int, seed: int = 0, dup_every: int = 0) -> SortedData:
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.integers(0, 1 << 32, n).astype(np.uint64))
    if dup_every:
        keys[:: dup_every] = keys[0]
        keys = np.sort(keys)
    return SortedData(keys, name="grid")


# ----------------------------------------------------------------------
# tune_rmi
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [2, 3, 5, 17])
def test_tune_rmi_tiny_datasets(n):
    """Leaf counts collapse to the n/32 cap but a model always comes back."""
    model, considered = tune_rmi(small_data(n))
    assert considered, "every candidate must be reported"
    assert model.num_leaves >= 1
    best = min(c["score_ns"] for c in considered)
    chosen = [c for c in considered if c["score_ns"] == best]
    assert any(c["leaves"] == model.num_leaves for c in chosen)


def test_tune_rmi_duplicate_heavy_keys():
    """A 50%-duplicate array (one giant run) still tunes cleanly."""
    data = small_data(2_000, dup_every=2)
    model, considered = tune_rmi(data)
    assert model.mean_abs_error >= 0
    assert min(c["score_ns"] for c in considered) == min(
        c["score_ns"] for c in considered if c["leaves"] == model.num_leaves
    )


@pytest.mark.parametrize("curve", [FLAT_CURVE, CLIFF_CURVE])
def test_tune_rmi_degenerate_latency_curves(curve):
    """Flat/cliff curves change the scores, never break the argmin."""
    model, considered = tune_rmi(small_data(3_000), curve=curve)
    best = min(c["score_ns"] for c in considered)
    assert any(
        c["leaves"] == model.num_leaves and c["score_ns"] == best
        for c in considered
    )


# ----------------------------------------------------------------------
# tune_radix_spline
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [2, 4, 33])
def test_tune_radix_spline_tiny_datasets(n):
    model, considered = tune_radix_spline(small_data(n))
    assert len(considered) == 3  # every epsilon evaluated
    best = min(c["score_ns"] for c in considered)
    assert any(
        c["epsilon"] == model.epsilon and c["score_ns"] == best
        for c in considered
    )


def test_tune_radix_spline_duplicate_heavy_keys():
    data = small_data(2_000, dup_every=2)
    model, considered = tune_radix_spline(data)
    assert model.num_spline_points >= 2
    assert all(np.isfinite(c["score_ns"]) for c in considered)


@pytest.mark.parametrize("curve", [FLAT_CURVE, CLIFF_CURVE])
def test_tune_radix_spline_degenerate_latency_curves(curve):
    model, considered = tune_radix_spline(small_data(3_000), curve=curve)
    best = min(c["score_ns"] for c in considered)
    assert any(
        c["epsilon"] == model.epsilon and c["score_ns"] == best
        for c in considered
    )


# ----------------------------------------------------------------------
# tune(): the chosen config is never costed worse than the alternatives
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=32, max_size=300, max_value=1 << 40),
    model_ns=st.floats(min_value=1.0, max_value=200.0),
)
def test_property_tune_choice_is_cost_minimal(keys, model_ns):
    """With a latency curve, `tune()`'s decision matches the argmin of
    the predicted latencies it reports in `considered`."""
    if len(np.unique(keys)) < 2:
        keys = np.concatenate([keys, keys + np.uint64(1)])
    data = SortedData(keys, name="prop")
    curve = LatencyCurve(
        np.asarray([1, 16, 4096]), np.asarray([2.0, 40.0, 400.0])
    )
    index, report = tune(data, InterpolationModel(data.keys),
                         curve=curve, model_ns=model_ns)
    assert len(report.considered) == 2
    chosen = [c for c in report.considered if c["chosen"]]
    assert len(chosen) == 1
    best = min(c["predicted_ns"] for c in report.considered)
    # ties go to either side; the chosen one must not be strictly worse
    assert chosen[0]["predicted_ns"] <= best + 1e-9
    # and the decision is reflected in the built index
    assert (index.layer is not None) == report.layer_enabled


@settings(max_examples=25, deadline=None)
@given(keys=sorted_uint_arrays(min_size=32, max_size=300, max_value=1 << 40))
def test_property_tune_without_curve_reports_both_options(keys):
    """Without a curve the §4.1 threshold rule decides, but both
    configurations (and their errors) are still reported."""
    if len(np.unique(keys)) < 2:
        keys = np.concatenate([keys, keys + np.uint64(1)])
    data = SortedData(keys, name="prop")
    _, report = tune(data, InterpolationModel(data.keys))
    layers = {c["layer"] for c in report.considered}
    assert layers == {"R", None}
    flags = [c["chosen"] for c in report.considered]
    assert sum(flags) == 1
    for c in report.considered:
        assert c["predicted_ns"] is None
        assert c["error"] >= 0.0
