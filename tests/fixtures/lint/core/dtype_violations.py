"""Lint fixture: RPR1xx dtype-safety violations.

Each offending line carries a trailing ``# expect: RPRxxx`` marker;
``tests/test_analysis.py`` asserts the linter reports exactly those.
This file is never imported, only parsed.
"""

import numpy as np


def lookup_many(queries):
    qs = np.asarray(queries)  # expect: RPR101
    return qs


def lookup_one(q):
    return np.array([q])  # expect: RPR101


def rank_math(keys, num_keys):
    scale = num_keys / 2  # counts may divide freely: not a finding
    mid = keys / 2  # expect: RPR102
    return scale, mid


def to_model_domain(keys):
    return keys.astype(np.float64)  # expect: RPR103
