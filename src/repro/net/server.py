"""Asyncio TCP front end over :class:`~repro.serve.server.IndexServer`.

The socket-read boundary *is* the batch boundary: every request decoded
from one TCP read is submitted to the
:class:`~repro.serve.batcher.MicroBatcher` synchronously via
``submit_lookup``/``submit_range`` — no per-request task churn — and a
done-callback writes the response frame when the batch resolves.  One
read syscall's worth of pipelined requests therefore becomes one
executor dispatch, which is exactly how the in-process serving tier
amortises per-request overhead.

Request envelope (one TLV dict per frame, see :mod:`repro.net.protocol`):

=============  ========================================================
op             fields / answer
=============  ========================================================
``ping``       → ``"pong"``
``lookup``     ``q`` scalar → int rank; list/ndarray → ndarray
``range``      ``lo``, ``hi`` scalar → int count; vectors → ndarray
``range_keys`` ``lo``, ``hi`` scalar → ndarray of keys
``insert``     ``key`` → owning shard id (durable on ack)
``delete``     ``key`` → shard id, or KeyError error frame
``stats``      → ``ServerStats.snapshot()`` + per-conn/worker counters
``barrier``    drain batcher + every worker's event queue → ``True``
=============  ========================================================

Responses are ``{"id", "ok": True, "r": ...}`` or ``{"id", "ok": False,
"error", "message"}``.  Framing violations (bad magic, oversized
prefix, undecodable TLV) answer one final error frame and close the
connection; request-level errors fail only their own request.

Scale-out: with ``workers=N`` a :class:`~repro.net.workers.WorkerPool`
forks N read-worker processes over one shared-memory export of the
engine (:mod:`repro.net.shm`); reads round-robin across live workers,
writes stay in this process (the single writer) and are captured by a
``WriteEvent`` listener **at the engine apply point** — so the replica
event stream is in apply order even under concurrent connections —
then flushed to each worker's control socket before the write is
acknowledged, so a client that saw its write's ack reads its own write
from any worker.  A dead worker's in-flight requests are rerouted to survivors
(or answered inline); reads are idempotent, so a duplicate answer from
the corpse is dropped by the client.

Backpressure is inherited from the wrapped server: inline reads claim
its ``max_inflight`` slots (the connection's read loop — and therefore
the peer's TCP window — stalls once the server saturates), and worker
dispatch is capped by a semaphore of the same size.
"""

from __future__ import annotations

import asyncio

from ..serve.server import IndexServer
from .ops import READ_OPS, WRITE_OPS, error_response, execute_read
from .protocol import DEFAULT_MAX_FRAME, FrameDecoder, ProtocolError, encode_frame

__all__ = ["NetServer"]


class _CloseConnection(Exception):
    """Internal: stop this connection's read loop after a fatal frame."""


def _is_vector(value) -> bool:
    return isinstance(value, (list, tuple)) or hasattr(value, "dtype")


class NetServer:
    """TCP serving: framed protocol in, micro-batched engine out."""

    def __init__(
        self,
        server: IndexServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 0,
        max_frame: int = DEFAULT_MAX_FRAME,
        own_server: bool = False,
        replicate_addr: tuple[str, int] | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if replicate_addr is not None and server.durability is None:
            raise ValueError(
                "replicate_addr needs a durable index: build it with "
                "durable_dir=... (replication ships checkpoint "
                "segments and streams the WAL)")
        self.server = server
        self.stats = server.stats
        self.host = host
        self.port = port
        self.num_workers = workers
        self.max_frame = max_frame
        self._own_server = own_server
        self._replicate_addr = replicate_addr
        #: the :class:`~repro.replica.leader.ReplicationServer`, once
        #: started (``replicate_addr=...``); shares :attr:`stats`
        self.replication = None
        self._asyncio_server: asyncio.base_events.Server | None = None
        self.pool = None
        #: conn id -> live StreamWriter (worker responses route through it)
        self._conn_writers: dict[int, asyncio.StreamWriter] = {}
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind, fork the worker pool (if any); returns ``(host, port)``."""
        if self.num_workers > 0:
            from .workers import WorkerPool

            self.pool = WorkerPool(self, self.num_workers,
                                   max_frame=self.max_frame)
            await self.pool.start()
        if self._replicate_addr is not None:
            from ..replica.leader import ReplicationServer

            rhost, rport = self._replicate_addr
            self.replication = ReplicationServer(
                self.server.durability, rhost, rport,
                stats=self.stats, max_frame=self.max_frame)
            await self.replication.start()
        self._asyncio_server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def replication_address(self) -> tuple[str, int] | None:
        """Where followers subscribe (None unless replicating)."""
        return None if self.replication is None else self.replication.address

    async def serve_forever(self) -> None:
        await self._asyncio_server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drop connections, stop workers (and the server)."""
        if self.replication is not None:
            await self.replication.close()
            self.replication = None
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        for writer in list(self._conn_writers.values()):
            writer.close()
        self._conn_writers.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        if self.pool is not None:
            await self.pool.close()
            self.pool = None
        if self._own_server:
            await self.server.close()

    async def __aenter__(self) -> "NetServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        cid, conn = self.stats.open_connection(str(peer))
        self._conn_writers[cid] = writer
        self._conn_tasks.add(asyncio.current_task())
        decoder = FrameDecoder(self.max_frame)
        try:
            while True:
                data = await reader.read(1 << 16)
                if not data:
                    break
                conn.bytes_in += len(data)
                try:
                    msgs = decoder.feed(data)
                except ProtocolError as exc:
                    conn.protocol_errors += 1
                    self._send(conn, writer, {
                        "id": None, "ok": False,
                        "error": "ProtocolError", "message": str(exc),
                    })
                    break
                for msg in msgs:
                    await self._handle(cid, conn, writer, msg)
                await writer.drain()
        except _CloseConnection:
            pass
        except asyncio.CancelledError:
            pass  # server shutdown: end the handler without complaint
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            self._conn_tasks.discard(asyncio.current_task())
            self._conn_writers.pop(cid, None)
            self.stats.close_connection(cid)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    def _send(self, conn, writer, payload: dict) -> None:
        """Frame + write one response; maintains the per-conn counters."""
        try:
            data = encode_frame(payload, self.max_frame)
        except ProtocolError as exc:
            # an answer too big for the frame limit (a huge range_keys
            # scan) fails its own request — the error frame is tiny —
            # instead of killing this connection's handler
            payload = error_response(payload.get("id"), exc)
            data = encode_frame(payload, self.max_frame)
        conn.responses += 1
        conn.bytes_out += len(data)
        if payload.get("ok") is False:
            conn.errors += 1
        if not writer.is_closing():
            writer.write(data)

    def _send_to(self, cid: int, payload: dict) -> None:
        """Deferred send by connection id (done-callbacks, worker relay).

        A connection that died while its answer was in flight simply
        drops the answer — its slot was already released, so nothing
        leaks.
        """
        writer = self._conn_writers.get(cid)
        conn = self.stats.connections.get(cid)
        if writer is None or conn is None:
            return
        self._send(conn, writer, payload)

    # ------------------------------------------------------------------
    # request routing
    # ------------------------------------------------------------------
    async def _handle(self, cid: int, conn, writer, msg) -> None:
        if not isinstance(msg, dict) or not isinstance(msg.get("op"), str):
            conn.protocol_errors += 1
            self._send(conn, writer, {
                "id": None, "ok": False, "error": "ProtocolError",
                "message": "request must be a dict with a string 'op'",
            })
            raise _CloseConnection
        conn.requests += 1
        op = msg["op"]
        rid = msg.get("id")
        if op in WRITE_OPS:
            await self._handle_write(conn, writer, msg)
        elif op == "stats":
            snap = dict(self.stats.snapshot())
            snap["net"] = self.stats.net_snapshot()
            self._send(conn, writer, {"id": rid, "ok": True, "r": snap})
        elif op == "barrier":
            await self.server.drain()
            if self.pool is not None:
                await self.pool.barrier()
            self._send(conn, writer, {"id": rid, "ok": True, "r": True})
        elif op in READ_OPS:
            if self.pool is not None and self.pool.alive_count > 0:
                if await self.pool.dispatch(cid, msg):
                    return
            await self._inline_read(cid, conn, msg)
        else:
            self._send(conn, writer, error_response(
                rid, ValueError(f"unknown op {op!r}")))

    async def _handle_write(self, conn, writer, msg) -> None:
        rid = msg.get("id")
        conn.writes += 1
        try:
            key = msg["key"]
            if msg["op"] == "insert":
                shard = await self.server.insert(key)
            else:
                shard = await self.server.delete(key)
        except Exception as exc:
            if self.pool is not None:
                # the engine may have applied the write before the
                # error (e.g. a failed durability ack): keep replicas
                # converging rather than parking the captured event
                await self.pool.flush_events()
            self._send(conn, writer, error_response(rid, exc))
            return
        if self.pool is not None:
            # flush BEFORE acknowledging: the pool's WriteEvent
            # listener captured this write at the engine apply point
            # (so concurrent handlers cannot reorder the replica
            # stream), and once the client sees the ack every worker's
            # control socket already carries the event — per-socket
            # FIFO applies it before any read dispatched afterwards
            # (read-your-writes)
            await self.pool.flush_events()
        self._send(conn, writer, {"id": rid, "ok": True, "r": shard})

    # ------------------------------------------------------------------
    # inline reads (workers=0, or every worker is dead)
    # ------------------------------------------------------------------
    async def _inline_read(self, cid: int, conn, msg: dict) -> None:
        """Answer one read on this process via cache + micro-batcher."""
        op = msg.get("op")
        rid = msg.get("id")
        server = self.server
        if op == "lookup" and not _is_vector(msg.get("q")):
            q = msg["q"]
            try:
                cached = server.cache.get_point(q)
            except TypeError:  # unhashable garbage: let submit reject it
                cached = None
            if cached is not None:
                server.stats.record_cache_hit()
                self._send_to(cid, {"id": rid, "ok": True, "r": cached})
                return
            epoch = server._write_epoch
            await self._claim_slot()
            try:
                fut = server.batcher.submit_lookup(q)
            except Exception as exc:
                server._release_slot()
                self._send_to(cid, error_response(rid, exc))
                return
            server.stats.request_started()
            fut.add_done_callback(
                lambda f: self._finish_point(f, cid, rid, q, epoch))
        elif op == "range" and not _is_vector(msg.get("lo")):
            lo, hi = msg["lo"], msg["hi"]
            try:
                cached = server.cache.get_range(lo, hi)
            except TypeError:
                cached = None
            if cached is not None:
                server.stats.record_cache_hit()
                self._send_to(cid, {"id": rid, "ok": True, "r": cached})
                return
            epoch = server._write_epoch
            await self._claim_slot()
            try:
                fut = server.batcher.submit_range(lo, hi)
            except Exception as exc:
                server._release_slot()
                self._send_to(cid, error_response(rid, exc))
                return
            server.stats.request_started()
            fut.add_done_callback(
                lambda f: self._finish_range(f, cid, rid, lo, hi, epoch))
        else:
            # vector reads, range_keys and ping: synchronous vectorised
            # answer (no suspension point between resolve and reply)
            server.stats.request_started()
            try:
                self._send_to(cid, execute_read(server.executor, msg))
            finally:
                server.stats.request_finished()

    async def _claim_slot(self) -> None:
        """Claim a backpressure slot; stalls this connection when full."""
        server = self.server
        if server._slots > 0:
            server._slots -= 1
        else:
            await server._take_slot()

    def _finish_point(self, fut, cid: int, rid, q, epoch: int) -> None:
        server = self.server
        server._release_slot()
        server.stats.request_finished()
        if fut.cancelled():
            return
        exc = fut.exception()
        if exc is not None:
            self._send_to(cid, error_response(rid, exc))
            return
        position = fut.result()
        if epoch == server._write_epoch:  # no write raced the dispatch
            server.cache.put_point(q, position)
        self._send_to(cid, {"id": rid, "ok": True, "r": position})

    def _finish_range(self, fut, cid: int, rid, lo, hi, epoch: int) -> None:
        server = self.server
        server._release_slot()
        server.stats.request_finished()
        if fut.cancelled():
            return
        exc = fut.exception()
        if exc is not None:
            self._send_to(cid, error_response(rid, exc))
            return
        first, last = fut.result()
        count = last - first
        if epoch == server._write_epoch:
            server.cache.put_range(lo, hi, count)
        self._send_to(cid, {"id": rid, "ok": True, "r": count})
