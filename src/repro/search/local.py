"""Local ("last-mile") search policies (Algorithm 1 and §3.8).

After a learned model (optionally corrected by a Shift-Table layer)
predicts where a query lives, one of two situations holds:

* **Bounded**: an R-mode layer provides a guaranteed window
  ``[start, start+width]`` — Algorithm 1 then uses linear search for
  windows below a threshold (8 keys in the paper's experiments) and
  branch-optimised binary search above it.
* **Unbounded**: the bare model or a compressed S-mode layer provides only
  a point estimate — linear or exponential search from that point, chosen
  by the expected error (§3.8 last paragraph).
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, Region
from .binary import lower_bound
from .exponential import exponential_lower_bound
from .linear import linear_around, linear_lower_bound

#: The paper's linear-to-binary threshold (§3.8: "8 keys, in our experiments").
LINEAR_TO_BINARY_THRESHOLD = 8

#: Expected error below which unbounded search prefers plain linear scan.
LINEAR_AROUND_THRESHOLD = 8


def bounded_local_search(
    data: np.ndarray,
    region: Region,
    tracker: NullTracker = NULL_TRACKER,
    q: int | float = 0,
    start: int = 0,
    width: int = 0,
    threshold: int = LINEAR_TO_BINARY_THRESHOLD,
) -> int:
    """Lower bound of ``q`` given a guaranteed window ``[start, start+width]``.

    Candidate results are ``start .. start+width+1`` — the one-past-window
    slot covers non-indexed queries that fall "just after the range"
    (§3.1).  The window is clipped to the array; a window that starts past
    the end means the answer is ``len(data)``.
    """
    n = len(data)
    lo = min(max(start, 0), n)
    hi = min(start + width + 1, n)
    if lo >= hi:
        return lo
    if width < threshold:
        return linear_lower_bound(data, region, tracker, q, lo, hi)
    return lower_bound(data, region, tracker, q, lo, hi)


def unbounded_local_search(
    data: np.ndarray,
    region: Region,
    tracker: NullTracker = NULL_TRACKER,
    q: int | float = 0,
    start: int = 0,
    expected_error: float = float("inf"),
) -> int:
    """Lower bound of ``q`` from a point estimate with no guaranteed window."""
    if expected_error <= LINEAR_AROUND_THRESHOLD:
        return linear_around(data, region, tracker, q, start)
    return exponential_lower_bound(data, region, tracker, q, start)
