"""Whole-engine persistence: save a built :class:`ShardedIndex`, reopen
it in another process without refitting anything.

The missing production primitive behind the ``repro.Index`` facade:
learned indexes are expensive to *build* (model fits + one correction
layer pass per shard) and cheap to *use*, so a deployment wants to build
once, ship the artifact, and ``repro.open()`` it at serving time — the
same story Google's Bigtable-backed learned index and the RMI tell, made
concrete for this engine.

One ``.npz`` file holds the entire engine:

* a JSON **manifest** — format version, key dtype, shard offsets
  metadata, the engine-level :class:`~repro.engine.backends.BackendConfig`,
  the standing auto-tune configuration, per-shard entries (backend kind,
  lineage, tuner decision label, workload counters, model/layer scalar
  state), and an optional facade-level ``IndexConfig`` dict;
* numpy **arrays** — global shard offsets plus per-shard key storage
  (``static``: the key slice; ``gapped``: gapped slots + occupancy
  bitmap; ``fenwick``: base keys + pending insert/tombstone buffers +
  the Fenwick drift tree) and model/layer parameter arrays via the
  :mod:`repro.core.serialize` state codecs;
* a **checksum** — SHA-256 over the manifest and every array's bytes,
  verified on load so a corrupted or truncated file is rejected with a
  clear error instead of answering queries wrongly.

The archive is written with ``np.savez`` (uncompressed): load speed is
the whole point of persistence — reopening must beat rebuilding by an
order of magnitude — and key arrays compress poorly anyway.  Loading
never executes code (``allow_pickle=False``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from ..core.corrected_index import CorrectedIndex
from ..core.fenwick import FenwickTree, UpdatableCorrectedIndex
from ..core.gapped import GappedLearnedIndex
from ..core.records import SortedData
from ..core.serialize import (
    layer_from_state,
    layer_to_state,
    model_from_state,
    model_to_state,
)
from ..hardware.machine import DEFAULT_PAYLOAD_BYTES
from .backends import (
    BackendConfig,
    FenwickBackend,
    GappedBackend,
    ShardBackend,
    ShardStats,
    StaticBackend,
)
from .sharded import ShardedIndex

#: On-disk engine format version; bump on incompatible layout changes.
FORMAT_VERSION = 1

#: Manifest magic marking a file as a whole-engine archive.
FORMAT_NAME = "repro-sharded-index"

#: Manifest magic marking a file as a single-shard checkpoint segment
#: (the incremental-checkpoint unit — see :mod:`repro.engine.durability`).
SEGMENT_FORMAT_NAME = "repro-shard-segment"


class IndexPersistError(ValueError):
    """A saved index could not be written or read back.

    Raised with a human-readable reason: not an index archive, an
    unsupported format version, a checksum mismatch (corruption), or
    state the codec cannot encode (custom model callables).
    """


def _config_to_dict(config: BackendConfig) -> dict:
    if not isinstance(config.model, str):
        raise IndexPersistError(
            "cannot persist a custom model factory "
            f"({config.model!r}); use a named model family"
        )
    return {
        "model": config.model,
        "layer": config.layer,
        "layer_partitions": config.layer_partitions,
        "payload_bytes": config.payload_bytes,
        "density": config.density,
        "merge_threshold": config.merge_threshold,
    }


def _config_from_dict(payload: dict) -> BackendConfig:
    return BackendConfig(
        model=payload["model"],
        layer=payload["layer"],
        layer_partitions=payload["layer_partitions"],
        payload_bytes=int(payload["payload_bytes"]),
        density=float(payload["density"]),
        merge_threshold=int(payload["merge_threshold"]),
    )


# ----------------------------------------------------------------------
# per-shard encode
# ----------------------------------------------------------------------
def _encode_shard(shard: ShardBackend) -> tuple[dict, dict]:
    """One shard backend -> (manifest entry, arrays dict)."""
    index = shard.index
    model_scalars, model_arrays = model_to_state(index.model)
    layer_scalars, layer_arrays = layer_to_state(index.layer)
    entry = {
        "kind": shard.kind,
        "name": index.name,
        "data_name": index.data.name,
        "origin": shard.origin,
        "decision_label": shard.decision_label,
        "split_failed_at": shard.split_failed_at,
        "stats": {"reads": shard.stats.reads, "writes": shard.stats.writes},
        "config": _config_to_dict(shard.config),
        "model": model_scalars,
        "layer": layer_scalars,
    }
    arrays: dict[str, np.ndarray] = {}
    for key, value in model_arrays.items():
        arrays[f"model_{key}"] = value
    for key, value in layer_arrays.items():
        arrays[f"layer_{key}"] = value

    if isinstance(shard, StaticBackend):
        arrays["keys"] = index.data.keys
    elif isinstance(shard, GappedBackend):
        g = shard._g
        entry["gapped"] = {
            "num_keys": g.num_keys,
            "density": g.density,
            "inserts_since": g._inserts_since,
            "name": g.name,
        }
        arrays["gapped"] = g.data.keys
        arrays["occupied"] = g._occupied
    elif isinstance(shard, FenwickBackend):
        u = shard._u
        entry["fenwick"] = {
            "merge_threshold": u.merge_threshold,
            "name": u.base.name,
        }
        arrays["keys"] = u.base.data.keys
        arrays["buffer"] = u._buffer_sorted()
        arrays["deleted"] = u._deleted_sorted()
        arrays["fenwick_tree"] = u._drift._tree
    else:
        raise IndexPersistError(
            f"no persistence codec for shard backend {type(shard).__name__}"
        )
    return entry, arrays


# ----------------------------------------------------------------------
# per-shard decode
# ----------------------------------------------------------------------
def _decode_corrected_index(
    entry: dict, arrays: dict, keys: np.ndarray, payload_bytes: int
) -> CorrectedIndex:
    """Rebuild a shard's CorrectedIndex view from codec state."""
    model = model_from_state(
        entry["model"],
        {k[len("model_"):]: v for k, v in arrays.items()
         if k.startswith("model_")},
    )
    layer = layer_from_state(
        entry["layer"],
        {k[len("layer_"):]: v for k, v in arrays.items()
         if k.startswith("layer_")},
    )
    data = SortedData(
        keys, payload_bytes=payload_bytes, name=entry["data_name"]
    )
    return CorrectedIndex(data, model, layer, name=entry["name"])


def _decode_shard(entry: dict, arrays: dict) -> ShardBackend:
    """One manifest entry + arrays -> a live shard backend (no refit)."""
    config = _config_from_dict(entry["config"])
    kind = entry["kind"]
    if kind == "static":
        index = _decode_corrected_index(
            entry, arrays, arrays["keys"], config.payload_bytes
        )
        shard: ShardBackend = StaticBackend(index, config)
    elif kind == "gapped":
        meta = entry["gapped"]
        # the gapped wrapper's SortedData uses the default payload
        # stride (mirror _rebuild()); graft the restored pieces in
        # without the forward-fill construction pass
        index = _decode_corrected_index(
            entry, arrays, arrays["gapped"], DEFAULT_PAYLOAD_BYTES
        )
        g = GappedLearnedIndex.__new__(GappedLearnedIndex)
        g.density = float(meta["density"])
        g.name = meta["name"]
        g.model_kind = config.model
        g._occupied = arrays["occupied"].astype(bool)
        g.num_keys = int(meta["num_keys"])
        g.data = index.data
        g.model = index.model
        g.layer = index.layer
        g._index = index
        g._index.validate = True
        g._inserts_since = int(meta["inserts_since"])
        g._prefix_cache = None
        shard = GappedBackend.__new__(GappedBackend)
        shard.config = config
        shard._g = g
    elif kind == "fenwick":
        meta = entry["fenwick"]
        base = _decode_corrected_index(
            entry, arrays, arrays["keys"], config.payload_bytes
        )
        u = UpdatableCorrectedIndex(
            base, merge_threshold=int(meta["merge_threshold"])
        )
        u._buffer = list(arrays["buffer"])
        u._deleted = list(arrays["deleted"])
        u._buffer_arr = arrays["buffer"]
        u._deleted_arr = arrays["deleted"]
        tree = FenwickTree(len(base.data) + 1)
        tree._tree[:] = arrays["fenwick_tree"]
        u._drift = tree
        shard = FenwickBackend.__new__(FenwickBackend)
        shard.config = config
        shard._u = u
    else:
        raise IndexPersistError(f"unknown shard backend kind {kind!r}")
    shard.origin = entry["origin"]
    shard.decision_label = entry["decision_label"]
    shard.split_failed_at = int(entry["split_failed_at"])
    shard._stats = ShardStats(
        reads=int(entry["stats"]["reads"]),
        writes=int(entry["stats"]["writes"]),
    )
    return shard


# ----------------------------------------------------------------------
# durable file plumbing
# ----------------------------------------------------------------------
def _fsync_dir(path: Path) -> None:
    """Flush a directory entry to disk (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)


def _atomic_savez(path: Path, payload: dict) -> None:
    """Write an ``.npz`` so a crash never publishes a partial file.

    The archive goes to a ``mkstemp`` temp file in the target directory
    — *unique per writer*, so two processes saving to the same path
    cannot interleave bytes into one shared ``.tmp`` and publish a
    corrupt archive; last ``os.replace`` wins with both results intact.
    The temp file is flushed and ``fsync``\\ ed before the rename and the
    parent directory is fsynced after it: without both, a power loss
    shortly after "saving" can leave the *old* name pointing at the new
    (unwritten) bytes — an atomic rename is only crash-durable once the
    data below it is.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp_path = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)


# ----------------------------------------------------------------------
# checksum
# ----------------------------------------------------------------------
def _checksum(manifest_json: str, arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over the manifest and every array's dtype/shape/bytes."""
    digest = hashlib.sha256()
    digest.update(manifest_json.encode("utf-8"))
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.data)  # no tobytes() copy: hash in place
    return digest.hexdigest()


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def save_index(
    index: ShardedIndex,
    path: str | Path,
    *,
    index_config: dict | None = None,
) -> dict:
    """Serialise a whole :class:`ShardedIndex` to ``path`` (.npz).

    Everything needed to answer queries bit-identically is written:
    shard offsets, per-shard model + correction-layer parameters (via
    the :mod:`repro.core.serialize` state codecs), backend storage
    including pending deltas/tombstones, tuner decisions and workload
    counters, plus a format version and a SHA-256 checksum.

    ``index_config`` is an optional facade-level config dict
    (``IndexConfig.to_dict()``) stored verbatim for ``repro.open`` to
    restore.  Returns the manifest that was written.  Raises
    :class:`IndexPersistError` for state the codecs cannot encode
    (custom model callables) or an empty index.
    """
    if len(index) == 0:
        raise IndexPersistError("cannot save an empty index (no keys)")
    with index._write_lock:
        arrays: dict[str, np.ndarray] = {"offsets": index.offsets}
        shard_entries: list[dict | None] = []
        for s, shard in enumerate(index.shards):
            if shard is None:
                shard_entries.append(None)
                continue
            try:
                entry, shard_arrays = _encode_shard(shard)
            except TypeError as exc:
                raise IndexPersistError(
                    f"shard {s} is not serialisable: {exc}"
                ) from exc
            shard_entries.append(entry)
            for key, value in shard_arrays.items():
                arrays[f"s{s}_{key}"] = value
        tuner = index.tuner
        manifest = {
            "format": FORMAT_NAME,
            "format_version": FORMAT_VERSION,
            "key_dtype": index.key_dtype.str,
            "name": index.name,
            "num_shards": index.num_shards,
            "num_keys": len(index),
            "backend": index.backend_kind,
            "target_shard_keys": index._target_shard_keys,
            "num_splits": index.num_splits,
            "num_merges": index.num_merges,
            "config": _config_to_dict(index.config),
            "auto_tune": (
                tuner.config.to_dict() if tuner is not None else None
            ),
            "index_config": index_config,
            "shards": shard_entries,
        }
        # the collected arrays are LIVE views into the engine (offsets,
        # gapped slots, occupancy bitmaps); checksum and write must
        # happen under the write lock too, or a concurrent writer tears
        # the snapshot into post-write arrays under pre-write scalars —
        # with a checksum computed from the torn state, so it would
        # still validate on load
        manifest_json = json.dumps(manifest, sort_keys=True)
        payload = {
            "manifest": np.asarray(manifest_json),
            "checksum": np.asarray(_checksum(manifest_json, arrays)),
        }
        payload.update(arrays)
        # atomic replace + fsync contract: a save killed mid-write (OOM,
        # disk-full, SIGKILL) must not destroy the previous good
        # artifact, and a save that *returned* must survive power loss
        _atomic_savez(Path(path), payload)
    return manifest


def read_manifest(path: str | Path) -> dict:
    """Read and validate just the manifest of a saved index.

    Cheap relative to :func:`load_index` (no shard reconstruction), but
    still verifies the checksum over the full archive.  Raises
    :class:`IndexPersistError` on anything that is not a healthy saved
    index.
    """
    manifest, _ = _read_verified(path)
    return manifest


def _read_verified(path: str | Path, expected_format: str = FORMAT_NAME):
    # the ``with`` wraps the np.load call itself (the idiom
    # ``core/serialize.load_layer`` uses): the archive's zip handle —
    # and the file descriptor under it — is closed on every exit path,
    # including the error raises below, instead of leaking until the
    # garbage collector gets around to it
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            files = set(archive.files)
            if "manifest" not in files or "checksum" not in files:
                raise IndexPersistError(
                    f"{path} is not a saved index "
                    "(missing manifest/checksum)"
                )
            manifest_json = str(archive["manifest"])
            try:
                manifest = json.loads(manifest_json)
            except json.JSONDecodeError as exc:
                raise IndexPersistError(
                    f"{path} has an unreadable manifest: {exc}"
                ) from exc
            if manifest.get("format") != expected_format:
                raise IndexPersistError(
                    f"{path} is not a saved index "
                    f"(format={manifest.get('format')!r}, "
                    f"expected {expected_format!r})"
                )
            version = int(manifest.get("format_version", -1))
            if version > FORMAT_VERSION or version < 1:
                raise IndexPersistError(
                    f"{path} uses engine format version {version}; this "
                    f"library reads versions 1..{FORMAT_VERSION} — "
                    "upgrade the library or re-save the index"
                )
            arrays = {
                name: archive[name]
                for name in archive.files
                if name not in ("manifest", "checksum")
            }
            expected = str(archive["checksum"])
    except (OSError, ValueError, zipfile.BadZipFile, KeyError) as exc:
        if isinstance(exc, IndexPersistError):
            raise
        raise IndexPersistError(
            f"{path} is not a readable saved index: {exc}"
        ) from exc
    actual = _checksum(manifest_json, arrays)
    if actual != expected:
        raise IndexPersistError(
            f"{path} failed its checksum (expected {expected[:12]}…, "
            f"got {actual[:12]}…) — the file is corrupted or was "
            "modified after saving"
        )
    return manifest, arrays


def load_index(path: str | Path) -> tuple[ShardedIndex, dict]:
    """Reopen a saved index: ``(ShardedIndex, manifest)``, no refitting.

    The returned engine is bit-identical to the one that was saved —
    same shard offsets, model parameters, correction layers, pending
    update buffers, tuner decisions and workload counters — and its
    ``build_info()['source']`` reads ``"loaded"``.  Raises
    :class:`IndexPersistError` for corrupted, truncated, version-
    incompatible or non-index files.
    """
    manifest, arrays = _read_verified(path)
    shards: list[ShardBackend | None] = []
    for s, entry in enumerate(manifest["shards"]):
        if entry is None:
            shards.append(None)
            continue
        prefix = f"s{s}_"
        shard_arrays = {
            name[len(prefix):]: value
            for name, value in arrays.items()
            if name.startswith(prefix)
        }
        shards.append(_decode_shard(entry, shard_arrays))
    offsets = arrays["offsets"]
    live = [shard.keys() for shard in shards if shard is not None]
    keys = (
        np.concatenate(live) if live
        else np.empty(0, dtype=np.dtype(manifest["key_dtype"]))
    )
    tuner_config = manifest.get("auto_tune")
    auto_tune = False
    if tuner_config is not None:
        from .autotune import AutoTuneConfig

        auto_tune = AutoTuneConfig.from_dict(tuner_config)
    index = ShardedIndex(
        shards, offsets, keys,
        name=manifest["name"],
        config=_config_from_dict(manifest["config"]),
        backend=manifest["backend"],
        auto_tune=auto_tune,
    )
    index._target_shard_keys = int(manifest["target_shard_keys"])
    index.num_splits = int(manifest["num_splits"])
    index.num_merges = int(manifest["num_merges"])
    index.source = "loaded"
    return index, manifest


# ----------------------------------------------------------------------
# per-shard checkpoint segments (the incremental-persistence unit)
# ----------------------------------------------------------------------
def encode_shard_state(
    shard: ShardBackend | None,
) -> tuple[dict | None, dict[str, np.ndarray]]:
    """Snapshot one shard into ``(manifest entry, owned array copies)``.

    The under-the-lock half of an incremental checkpoint:
    :func:`_encode_shard` returns *live views* into the shard's storage,
    so this copies every array while the caller holds the engine write
    lock — after it returns, the snapshot is immune to concurrent
    writers and :func:`save_shard_segment` can run with no lock held.
    An empty (``None``) shard snapshots to ``(None, {})``.
    """
    if shard is None:
        return None, {}
    try:
        entry, arrays = _encode_shard(shard)
    except TypeError as exc:
        raise IndexPersistError(
            f"shard is not serialisable: {exc}"
        ) from exc
    return entry, {k: np.array(v, copy=True) for k, v in arrays.items()}


def save_shard_segment(
    path: str | Path,
    entry: dict | None,
    arrays: dict[str, np.ndarray],
    *,
    shard_id: int,
    generation: int,
    flushed_lsn: int,
    length: int,
) -> dict:
    """Write one shard snapshot as a standalone, checksummed ``.npz``.

    The unit of an *incremental* checkpoint
    (:mod:`repro.engine.durability`): where :func:`save_index` holds the
    engine write lock across the whole archive, a checkpoint pass
    snapshots one shard at a time (:func:`encode_shard_state`, under the
    lock) and writes it here **outside** the lock — ``flushed_lsn``
    records the WAL position the shard's state already contains, so
    recovery replays only the records past it.  An empty (``None``)
    entry writes a segment with no arrays, keeping the manifest's shard
    list positional.  Same fsync + atomic-replace contract as
    :func:`save_index`.  Returns the segment manifest.
    """
    manifest = {
        "format": SEGMENT_FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "shard_id": int(shard_id),
        "generation": int(generation),
        "flushed_lsn": int(flushed_lsn),
        "length": int(length),
        "entry": entry,
    }
    manifest_json = json.dumps(manifest, sort_keys=True)
    payload = {
        "manifest": np.asarray(manifest_json),
        "checksum": np.asarray(_checksum(manifest_json, arrays)),
    }
    payload.update(arrays)
    _atomic_savez(Path(path), payload)
    return manifest


def load_shard_segment(
    path: str | Path,
) -> tuple[dict, ShardBackend | None]:
    """Read a segment written by :func:`save_shard_segment`.

    Returns ``(segment manifest, live shard backend or None)`` after
    checksum verification; raises :class:`IndexPersistError` for
    corrupted, truncated or non-segment files.
    """
    manifest, arrays = _read_verified(path, SEGMENT_FORMAT_NAME)
    entry = manifest.get("entry")
    if entry is None:
        return manifest, None
    return manifest, _decode_shard(entry, arrays)


__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "SEGMENT_FORMAT_NAME",
    "IndexPersistError",
    "encode_shard_state",
    "load_index",
    "load_shard_segment",
    "read_manifest",
    "save_index",
    "save_shard_segment",
]
