"""Learned indexes with optional correction layers (Figure 4, Alg. 1, §3.8).

:class:`CorrectedIndex` is the queryable composition of

* a :class:`~repro.core.records.SortedData` record array,
* a CDF model,
* an optional correction layer — R-mode :class:`ShiftTable` (guaranteed
  window → bounded linear/binary local search) or S-mode
  :class:`CompactShiftTable` (point estimate → linear/exponential), and
* a last-mile policy, including the §3.8 handling of non-monotone models:
  windows are validated at the edges and violated windows fall back to an
  honest (fully charged) exponential search outside the range.

The same class also expresses the *bare-model* baselines: with no layer,
a model that carries error bounds (RMI's per-leaf bounds, RS/PGM's ±ε)
searches its bounded window, and a boundless model (IM, single line) uses
exponential search around the prediction — matching the paper's setup for
``IM`` ("interpolation as a model ... exponential search around the
predicted key").
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker
from ..kernels import dispatch as kernel_dispatch
from ..models.base import CDFModel, predicted_index, predicted_index_batch
from ..models.rmi import RMIModel
from ..search.batch import validated_lower_bound_batch
from ..search.exponential import exponential_lower_bound
from ..search.local import (
    LINEAR_TO_BINARY_THRESHOLD,
    bounded_local_search,
    unbounded_local_search,
)
from .compact import CompactShiftTable
from .records import SortedData, coerce_query_array, normalize_query_dtype
from .shift_table import ShiftTable


def validated_window_search(
    data: np.ndarray,
    region,
    tracker: NullTracker = NULL_TRACKER,
    q=0,
    start: int = 0,
    width: int = 0,
    threshold: int = LINEAR_TO_BINARY_THRESHOLD,
) -> int:
    """Bounded window search that survives invalid windows (§3.8).

    Runs the normal bounded local search, then checks the window edges:
    if the answer may lie outside (non-monotone model, or a bare-model
    bound that does not cover a duplicate run), it gallops out from the
    violated edge.  The extra probes are charged to the tracker.
    """
    n = len(data)
    lo = min(max(start, 0), n)
    # clamp to [lo, n]: a grossly mispredicted window (negative or past
    # the end) degenerates to the empty range at ``lo``, whose edge checks
    # below then recover the true position by galloping
    hi_excl = min(max(start + width + 1, lo), n)
    result = bounded_local_search(data, region, tracker, q, start, width, threshold)
    if result == lo and lo > 0:
        tracker.touch(region, lo - 1)
        tracker.instr(2)
        if data[lo - 1] >= q:
            return exponential_lower_bound(data, region, tracker, q, lo - 1)
    if result == hi_excl and hi_excl < n:
        tracker.touch(region, hi_excl)
        tracker.instr(2)
        if data[hi_excl] < q:
            return exponential_lower_bound(data, region, tracker, q, hi_excl)
    return result


class CorrectedIndex:
    """Model + optional Shift-Table layer over a sorted record array."""

    def __init__(
        self,
        data: SortedData,
        model: CDFModel,
        layer: ShiftTable | CompactShiftTable | None = None,
        name: str | None = None,
        threshold: int = LINEAR_TO_BINARY_THRESHOLD,
    ) -> None:
        if model.num_keys != len(data):
            raise ValueError("model and data sizes disagree")
        if layer is not None and layer.num_keys != len(data):
            raise ValueError("layer and data sizes disagree")
        self.data = data
        self.model = model
        self.layer = layer
        self.threshold = threshold
        #: §3.8 validity: windows from a non-monotone model need checking.
        #: Merged partitions (M < N) are also validated: a non-indexed
        #: query can carry a prediction outside the span the partition's
        #: own keys were built from, which the paper's M = N argument
        #: (§3.1) does not cover.
        self.validate = not model.is_monotone or (
            isinstance(layer, ShiftTable)
            and layer.num_partitions != layer.num_keys
        )
        if name is None:
            suffix = ""
            if isinstance(layer, ShiftTable):
                suffix = "+ShiftTable"
            elif isinstance(layer, CompactShiftTable):
                suffix = "+ShiftTable[S]"
            name = model.name + suffix
        self.name = name

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Position of the first record with key >= q (Algorithm 1)."""
        keys = self.data.keys
        region = self.data.region
        n = len(keys)
        pred_float = self.model.predict_pos(q, tracker)

        if isinstance(self.layer, ShiftTable):
            start, width = self.layer.window(pred_float, tracker)
            if self.validate:
                return validated_window_search(
                    keys, region, tracker, q, start, width, self.threshold
                )
            return bounded_local_search(
                keys, region, tracker, q, start, width, self.threshold
            )

        if isinstance(self.layer, CompactShiftTable):
            corrected = self.layer.correct(pred_float, tracker)
            return unbounded_local_search(
                keys, region, tracker, q, corrected, self.layer.mean_abs_error
            )

        # bare model
        pred = predicted_index(pred_float, n)
        bounds = self._model_bounds(q, tracker)
        if bounds is not None:
            err_lo, err_hi = bounds
            start = pred + err_lo
            width = err_hi - err_lo
            return validated_window_search(
                keys, region, tracker, q, start, width, self.threshold
            )
        return exponential_lower_bound(keys, region, tracker, q, pred)

    def _model_bounds(self, q, tracker: NullTracker) -> tuple[int, int] | None:
        """Signed error bounds if the model offers them (RMI, RS, PGM)."""
        model = self.model
        if isinstance(model, RMIModel):
            return model.error_bounds(q, tracker)
        error_bounds = getattr(model, "error_bounds", None)
        if error_bounds is not None:
            return error_bounds()
        return None

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Untraced lookups for a batch of queries (tests and examples)."""
        return np.fromiter(
            (self.lookup(q) for q in queries), dtype=np.int64, count=len(queries)  # repro: noqa[RPR501] — the scalar Algorithm-1 loop is the parity oracle the kernels are tested against
        )

    def lookup_batch_vectorized(self, queries: np.ndarray) -> np.ndarray:
        """Fully-vectorised batch lookup for every model/layer combination.

        Runs the whole predict → correct → bounded-search pipeline as
        numpy array passes (see :mod:`repro.search.batch`); there is no
        per-query Python loop on any path.  Results are element-wise
        identical to calling :meth:`lookup` per query:

        * **R-mode** — batch windows from the layer, lane-parallel
          bounded binary search, vectorised §3.8 edge validation.
        * **S-mode** — batch point correction, searched through a window
          of ± the layer's expected error with the same edge validation
          recovering the outliers.
        * **bare model with bounds** (RMI per-leaf, RS/PGM ±ε) — the
          bounds become the batch windows.
        * **boundless model** (IM, single line) — full-array
          ``searchsorted`` (the vectorised stand-in for per-query
          exponential search; same answers, no window to exploit).
        """
        keys = self.data.keys
        n = len(keys)
        queries, oob_high = normalize_query_dtype(queries, keys.dtype)
        if (
            queries.dtype.kind == "f"
            and keys.dtype.kind in "iu"
            and keys.dtype.itemsize >= 8
        ):
            # float queries against 64-bit integer keys would make every
            # kernel comparison promote the keys to float64 (silently
            # wrong above 2**53); convert exactly instead — ``q < k`` iff
            # ``ceil(q) <= k``, so positions are unchanged
            queries, oob_f = coerce_query_array(queries, keys.dtype)
            if oob_f is not None:
                oob_high = (oob_f if oob_high is None
                            else (oob_high | oob_f))
        if queries.size == 0:
            return np.empty(0, dtype=np.int64)
        result = self._lookup_batch_pipeline(keys, n, queries)
        if oob_high is not None:
            result[oob_high] = n
        return result

    def _lookup_batch_pipeline(
        self, keys: np.ndarray, n: int, queries: np.ndarray
    ) -> np.ndarray:
        # compiled fast path: when the numba backend is live and this
        # model/layer pair has a kernel plan, the whole chunk runs as two
        # fused per-lane passes (element-wise identical by the parity
        # suite); ``None`` keeps the numpy composition below
        fused = kernel_dispatch.fused_lookup_batch(self, keys, n, queries)
        if fused is not None:
            return fused
        pred = self.model.predict_pos_batch(queries)

        if isinstance(self.layer, ShiftTable):
            starts, widths = self.layer.window_batch(pred)
            return validated_lower_bound_batch(keys, queries, starts, widths)

        if isinstance(self.layer, CompactShiftTable):
            corrected = self.layer.correct_batch(pred)
            radius = max(int(np.ceil(self.layer.mean_abs_error)), 1)
            widths = np.full(queries.shape, 2 * radius, dtype=np.int64)
            return validated_lower_bound_batch(
                keys, queries, corrected - radius, widths
            )

        bounds = self._model_bounds_batch(queries)
        if bounds is not None:
            err_lo, err_hi = bounds
            starts = predicted_index_batch(pred, n) + err_lo
            return validated_lower_bound_batch(
                keys, queries, starts, err_hi - err_lo
            )
        return np.searchsorted(keys, queries, side="left").astype(np.int64)

    def _model_bounds_batch(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Vectorised :meth:`_model_bounds` (per-lane signed bounds)."""
        model = self.model
        if isinstance(model, RMIModel):
            return model.error_bounds_batch(queries)
        error_bounds = getattr(model, "error_bounds", None)
        if error_bounds is not None:
            err_lo, err_hi = error_bounds()
            shape = np.shape(queries)
            return (
                np.full(shape, err_lo, dtype=np.int64),
                np.full(shape, err_hi, dtype=np.int64),
            )
        return None

    def lookup_batch_fast(self, queries: np.ndarray) -> np.ndarray:
        """Alias for :meth:`lookup_batch_vectorized` (historical name)."""
        return self.lookup_batch_vectorized(queries)

    # ------------------------------------------------------------------
    # accounting & tuning hooks
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Model plus (optional) layer footprint; excludes the data."""
        size = self.model.size_bytes()
        if self.layer is not None:
            size += self.layer.size_bytes()
        return size

    def build_info(self) -> dict[str, object]:
        """Structured description of the configuration (for reports)."""
        info: dict[str, object] = {
            "name": self.name,
            "model": self.model.name,
            "model_bytes": self.model.size_bytes(),
            "validate": self.validate,
        }
        if self.layer is not None:
            info["layer_bytes"] = self.layer.size_bytes()
            info["layer_partitions"] = self.layer.num_partitions
        return info
