"""Execution plans: what the batch engine is about to do, and why.

`plan()` is the engine's EXPLAIN — it routes a batch without executing
it and reports, per touched shard, how many queries land there, which
last-mile strategy the shard's model/layer combination implies, and the
expected search-window size.  The CLI surfaces this via
``python -m repro engine-plan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ShardSlice:
    """One shard's share of a planned batch."""

    shard_id: int
    num_queries: int
    num_keys: int
    index_name: str
    strategy: str
    expected_window: float | None = None
    backend: str = "static"
    pending_updates: int = 0

    def describe(self) -> str:
        window = (
            f", E[window]={self.expected_window:.1f}"
            if self.expected_window is not None
            else ""
        )
        staleness = (
            f", pending={self.pending_updates:,}"
            if self.pending_updates else ""
        )
        return (
            f"shard {self.shard_id:>4}: {self.num_queries:>8,} queries over "
            f"{self.num_keys:>10,} keys via {self.index_name} "
            f"[{self.strategy}{window}] "
            f"<{self.backend}{staleness}>"
        )


@dataclass(frozen=True)
class ExecutionPlan:
    """Routing + strategy summary for one batch, before execution."""

    num_queries: int
    num_shards: int
    mode: str
    workers: int
    slices: list[ShardSlice] = field(default_factory=list)

    @property
    def shards_touched(self) -> int:
        return len(self.slices)

    def describe(self) -> str:
        lines = [
            f"batch of {self.num_queries:,} queries over "
            f"{self.num_shards} shard(s), mode={self.mode}, "
            f"workers={self.workers}, touching {self.shards_touched} shard(s)"
        ]
        lines.extend(s.describe() for s in self.slices)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()
