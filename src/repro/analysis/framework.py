"""Core machinery of the project linter: rules, suppressions, reports.

The linter is AST-based: each :class:`Rule` walks one parsed module and
yields :class:`Finding` records with a stable ``RPRxxx`` code.  Findings
can be suppressed per line with ``# repro: noqa[RPR101] — reason``; the
reason string is mandatory (a bare suppression is itself a finding,
``RPR002``) and a suppression that silences nothing is flagged as
``RPR003`` so stale annotations cannot accumulate.

Rule code families (see ``docs/ARCHITECTURE.md`` for the contracts):

- ``RPR0xx`` meta: syntax errors, malformed/unused suppressions
- ``RPR1xx`` dtype safety in the predict→correct→search path
- ``RPR2xx`` engine write-lock discipline
- ``RPR3xx`` durability (fsync/rename) discipline
- ``RPR4xx`` async safety in the serving layer
- ``RPR6xx`` replication artifact-read discipline (checksum-verified
  segment/manifest loaders only)
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "Suppression",
    "Rule",
    "ModuleContext",
    "LintReport",
    "register",
    "all_rules",
    "parse_suppression",
    "parse_suppressions",
    "format_suppression",
    "lint_source",
    "lint_paths",
]

#: JSON output schema version (bump only on breaking changes).
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One linter hit: a rule code anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    rule_name: str = ""

    def to_dict(self) -> dict:
        """Stable JSON form (field order matches the documented schema)."""
        return {
            "code": self.code,
            "rule": self.rule_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human form: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
#: ``# repro: noqa[RPR101,RPR202] — reason text``.  The separator before
#: the reason may be an em/en dash, ``--``, ``-`` or ``:``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[^\]]*)\]"
    r"(?:\s*(?:—|–|--|-|:)\s*(?P<reason>.*))?\s*$"
)
_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """A parsed per-line ``noqa`` annotation."""

    line: int
    codes: tuple[str, ...]
    reason: str
    valid: bool = True


def format_suppression(codes, reason: str) -> str:
    """Render a suppression comment that :func:`parse_suppression` accepts."""
    # built in two pieces so this source line does not itself parse as
    # a suppression comment when the linter lints its own package
    return "# repro: " + f"noqa[{','.join(codes)}] — {reason}"


def parse_suppression(text: str, line: int = 0) -> Suppression | None:
    """Parse one physical source line; ``None`` when it has no noqa."""
    m = _NOQA_RE.search(text)
    if m is None:
        return None
    raw_codes = [c.strip() for c in m.group("codes").split(",") if c.strip()]
    reason = (m.group("reason") or "").strip()
    valid = bool(raw_codes) and all(_CODE_RE.match(c) for c in raw_codes)
    return Suppression(line=line, codes=tuple(raw_codes), reason=reason,
                       valid=valid)


def parse_suppressions(lines) -> dict[int, Suppression]:
    """All suppressions in a module, keyed by 1-based line number."""
    out: dict[int, Suppression] = {}
    for i, text in enumerate(lines, start=1):
        if "noqa" not in text:
            continue
        sup = parse_suppression(text, line=i)
        if sup is not None:
            out[i] = sup
    return out


# ----------------------------------------------------------------------
# module context shared by all rules
# ----------------------------------------------------------------------
@dataclass
class ModuleContext:
    """One parsed module plus the import-alias maps rules care about."""

    path: Path
    relparts: tuple[str, ...]
    source: str
    lines: list[str]
    tree: ast.Module
    numpy_aliases: set[str] = field(default_factory=set)
    numpy_names: dict[str, str] = field(default_factory=dict)
    module_aliases: dict[str, set[str]] = field(default_factory=dict)
    #: local name -> (module, original name) for ``from X import Y [as Z]``
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def build(cls, source: str, path: Path, tree: ast.Module) -> ModuleContext:
        """Parse imports so rules can resolve ``np``/``os``/``time`` aliases."""
        ctx = cls(path=path, relparts=tuple(path.resolve().parts),
                  source=source, lines=source.splitlines(), tree=tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    ctx.module_aliases.setdefault(alias.name, set()).add(local)
                    if alias.name == "numpy":
                        ctx.numpy_aliases.add(local)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    ctx.from_imports[local] = (node.module, alias.name)
                    if node.module == "numpy":
                        ctx.numpy_names[local] = alias.name
        return ctx

    def aliases_of(self, module: str) -> set[str]:
        """Local names bound to ``module`` (``{"np"}`` for numpy, usually)."""
        found = set(self.module_aliases.get(module, ()))
        if module == "numpy":
            found |= self.numpy_aliases
        return found


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
class Rule:
    """Base class: subclass, set the class attributes, implement ``check``.

    ``scope_dirs``/``scope_files`` restrict where the rule runs: a module
    is in scope when any path component matches a scope dir, or its
    basename matches a scope file.  Empty scope means every module.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    scope_dirs: tuple[str, ...] = ()
    scope_files: tuple[str, ...] = ()

    def applies(self, ctx: ModuleContext) -> bool:
        """Whether this module is inside the rule's path scope."""
        if not self.scope_dirs and not self.scope_files:
            return True
        return (any(d in ctx.relparts for d in self.scope_dirs)
                or ctx.path.name in self.scope_files)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        """Return raw findings for one module (before suppressions)."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        """Convenience constructor anchored at ``node``'s location."""
        return Finding(path=str(ctx.path), line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), code=self.code,
                       message=message, rule_name=self.name)


_REGISTRY: dict[str, Rule] = {}
_LOADED = False


def register(rule_cls):
    """Class decorator: instantiate and index the rule by its code."""
    rule = rule_cls()
    if not _CODE_RE.match(rule.code):
        raise ValueError(f"bad rule code {rule.code!r} on {rule_cls.__name__}")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """Code → rule instance for every registered rule (loads rule modules)."""
    global _LOADED
    if not _LOADED:
        # imported for their @register side effects
        from . import rules_async  # noqa: F401
        from . import rules_dtype  # noqa: F401
        from . import rules_durability  # noqa: F401
        from . import rules_kernels  # noqa: F401
        from . import rules_lock  # noqa: F401
        from . import rules_replica  # noqa: F401
        _LOADED = True
    return dict(_REGISTRY)


#: Meta rule codes are produced by the engine itself, not by a visitor.
META_CODES = {
    "RPR001": "syntax-error",
    "RPR002": "noqa-missing-reason",
    "RPR003": "unused-noqa",
}


def _selected(code: str, select, ignore) -> bool:
    """Prefix-match selection: ``--select RPR1 --ignore RPR103`` etc."""
    if select is not None and not any(code.startswith(p) for p in select):
        return False
    if ignore is not None and any(code.startswith(p) for p in ignore):
        return False
    return True


# ----------------------------------------------------------------------
# lint engine
# ----------------------------------------------------------------------
def lint_source(source: str, path, select=None, ignore=None) -> list[Finding]:
    """Lint one module's source text; returns sorted, suppression-applied
    findings (including meta findings about the suppressions themselves)."""
    path = Path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        if not _selected("RPR001", select, ignore):
            return []
        return [Finding(path=str(path), line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, code="RPR001",
                        message=f"syntax error: {exc.msg}",
                        rule_name=META_CODES["RPR001"])]

    ctx = ModuleContext.build(source, path, tree)
    raw: list[Finding] = []
    active_codes: set[str] = set()
    for code, rule in sorted(all_rules().items()):
        if not _selected(code, select, ignore):
            continue
        if not rule.applies(ctx):
            continue
        active_codes.add(code)
        raw.extend(rule.check(ctx))

    suppressions = parse_suppressions(ctx.lines)
    used: dict[int, set[str]] = {}
    findings: list[Finding] = []
    for f in raw:
        sup = suppressions.get(f.line)
        if sup is not None and sup.valid and sup.reason and f.code in sup.codes:
            used.setdefault(f.line, set()).add(f.code)
            continue
        findings.append(f)

    for line, sup in sorted(suppressions.items()):
        col = ctx.lines[line - 1].find("#")
        if not sup.valid or not sup.reason:
            if _selected("RPR002", select, ignore):
                what = ("a reason string" if sup.valid
                        else "a valid RPRxxx code list")
                findings.append(Finding(
                    path=str(path), line=line, col=max(col, 0), code="RPR002",
                    message=f"suppression is missing {what}: write "
                            f"'# repro: noqa[RPR101] — why it is safe'",
                    rule_name=META_CODES["RPR002"]))
            continue
        unused = [c for c in sup.codes
                  if c in active_codes and c not in used.get(line, set())]
        if unused and _selected("RPR003", select, ignore):
            findings.append(Finding(
                path=str(path), line=line, col=max(col, 0), code="RPR003",
                message="suppression does not match any finding on this "
                        f"line: {', '.join(unused)}",
                rule_name=META_CODES["RPR003"]))
    return sorted(findings)


@dataclass
class LintReport:
    """Aggregate result of linting a set of paths."""

    files_scanned: int
    findings: list[Finding]

    @property
    def clean(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings

    def statistics(self) -> dict[str, int]:
        """Findings per rule code, sorted by code."""
        stats: dict[str, int] = {}
        for f in self.findings:
            stats[f.code] = stats.get(f.code, 0) + 1
        return dict(sorted(stats.items()))

    def to_json(self) -> str:
        """Stable JSON document (schema v1, see ``docs/ARCHITECTURE.md``)."""
        return json.dumps({
            "version": JSON_SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "statistics": self.statistics(),
        }, indent=2, sort_keys=False)


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for f in p.rglob("*.py"):
                if "__pycache__" not in f.parts:
                    out.add(f)
        elif p.is_file() and p.suffix == ".py":
            out.add(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return sorted(out)


def lint_paths(paths, select=None, ignore=None) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and aggregate the findings."""
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_source(f.read_text(encoding="utf-8"), f,
                                    select=select, ignore=ignore))
    return LintReport(files_scanned=len(files), findings=sorted(findings))
