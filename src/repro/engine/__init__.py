"""Sharded, vectorised batch-query engine (ROADMAP: scale the repro).

Composes the repo's existing pieces end-to-end for throughput-oriented
serving: :class:`ShardedIndex` range-partitions the keys and fits a
shard-local model + Shift-Table correction per shard;
:class:`BatchExecutor` routes, groups and executes whole query batches
through the vectorised predict → correct → bounded-search pipeline;
:class:`ExecutionPlan` is the inspectable EXPLAIN of a batch;
:class:`ShardTuner` (``auto_tune=``/``retune()``) runs the §3.9 cost
model per shard, picking model family, layer mode and storage backend
from each shard's local keys and observed read/write mix.

>>> from repro.engine import ShardedIndex, BatchExecutor
>>> index = ShardedIndex.build(keys, num_shards=8, model="interpolation")
>>> positions = BatchExecutor(index).lookup_batch(queries)
"""

from .autotune import (
    AutoTuneConfig,
    ShardDecision,
    ShardTuner,
    decision_from_config,
)
from .backends import (
    BACKEND_KINDS,
    BackendConfig,
    FenwickBackend,
    GappedBackend,
    ShardBackend,
    ShardStats,
    StaticBackend,
    make_backend,
)
from .durability import (
    DurabilityError,
    DurabilityManager,
    is_durable_dir,
)
from .executor import MODES, BatchExecutor
from .persist import (
    FORMAT_VERSION,
    IndexPersistError,
    load_index,
    load_shard_segment,
    read_manifest,
    save_index,
    save_shard_segment,
)
from .wal import WAL_SYNC_MODES, WalError, WalRecord, WalWriter, read_wal
from .plan import ExecutionPlan, ShardSlice
from .sharded import LAYER_MODES, ShardedIndex, WriteEvent, snap_offsets

__all__ = [
    "AutoTuneConfig",
    "BACKEND_KINDS",
    "BackendConfig",
    "BatchExecutor",
    "DurabilityError",
    "DurabilityManager",
    "ExecutionPlan",
    "FenwickBackend",
    "GappedBackend",
    "LAYER_MODES",
    "MODES",
    "ShardBackend",
    "ShardDecision",
    "ShardSlice",
    "ShardStats",
    "ShardTuner",
    "ShardedIndex",
    "StaticBackend",
    "WAL_SYNC_MODES",
    "WalError",
    "WalRecord",
    "WalWriter",
    "WriteEvent",
    "FORMAT_VERSION",
    "IndexPersistError",
    "decision_from_config",
    "is_durable_dir",
    "load_index",
    "load_shard_segment",
    "read_manifest",
    "read_wal",
    "save_index",
    "save_shard_segment",
    "snap_offsets",
]
