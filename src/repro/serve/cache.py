"""LRU result caches with write-coherent, shard-aware invalidation.

Two caches with different coherence rules, matching what each answer
*means* under writes:

* **Point cache** — ``q -> global lower-bound position``.  Positions are
  rank-valued: writing key ``k`` shifts the rank of every query strictly
  above ``k`` (``lower_bound(q)`` counts keys ``< q``), while entries
  with ``q <= k`` provably keep their answer.  Rather than scanning the
  cache on every write, staleness is checked *lazily* with write
  cutoffs: each write appends ``(k, stamp)`` to a monotone cutoff
  frontier (later writes dominate earlier ones at equal-or-higher
  keys, so the frontier stays ascending in both key and stamp and
  appends are amortised O(1)), and a hit is served only if no cutoff
  below the query post-dates the entry — one bisect per get.  Stale
  entries are dropped on access or cycled out by LRU eviction.
* **Range cache** — ``(lo, hi) -> cardinality of lo <= key < hi``.
  Cardinalities are value-domain: writing ``k`` only changes counts of
  ranges that *contain* ``k``.  Since ``k`` always lies inside the
  mutated shard's key span, invalidation is shard-aware and eager: a
  write to shard ``j`` drops exactly the cached ranges overlapping
  shard ``j``'s span (:meth:`~repro.engine.sharded.WriteEvent.overlaps`),
  and cached ranges over other shards' spans survive, still exact.

``refresh`` events never invalidate anything: folding buffered updates
back into a shard changes the physical layout but not the logical key
sequence, so every cached answer stays correct.

One caller obligation makes the lazy point check sound: do not ``put``
an answer that was *computed before* a write which has already reached
:meth:`ResultCache.on_write` — the entry would carry a fresh stamp but
a pre-write rank.  :class:`~repro.serve.server.IndexServer` enforces
this with its write-epoch guard (reads that raced a write skip the
cache fill).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict

from ..engine.sharded import WriteEvent


def scalar(value):
    """Canonical python-scalar cache key for a numpy or python number."""
    return value.item() if hasattr(value, "item") else value


class ResultCache:
    """Bounded LRU point/range caches wired to index write events.

    Pass a capacity of ``0`` to disable either side.  Register
    :meth:`on_write` with
    :meth:`~repro.engine.sharded.ShardedIndex.add_write_listener` to
    keep the cache coherent under writes.
    """

    #: cutoff-frontier bound: append-only write patterns (monotonically
    #: increasing keys — the canonical learned-index ingest) never
    #: trigger the domination pop, so past this length adjacent cutoffs
    #: are merged pairwise.  Merging (k0, s0)+(k1, s1) -> (k0, s1)
    #: poisons a *superset* (entries in (k0, k1] see the newer stamp),
    #: so hits stay exact — the frontier just over-invalidates slightly.
    MAX_CUTOFFS = 4096

    def __init__(
        self, point_capacity: int = 65536, range_capacity: int = 4096
    ) -> None:
        if point_capacity < 0 or range_capacity < 0:
            raise ValueError("cache capacities must be >= 0")
        self.point_capacity = point_capacity
        self.range_capacity = range_capacity
        self._points: OrderedDict = OrderedDict()  # key -> (position, stamp)
        self._ranges: OrderedDict = OrderedDict()  # (lo, hi) -> cardinality
        self._stamp = 0  # bumps once per observed write
        self._cut_keys: list = []    # cutoff frontier: ascending keys ...
        self._cut_stamps: list = []  # ... with ascending write stamps
        self.point_hits = 0
        self.point_misses = 0
        self.range_hits = 0
        self.range_misses = 0
        self.invalidated_points = 0
        self.invalidated_ranges = 0

    def __len__(self) -> int:
        return len(self._points) + len(self._ranges)

    # ------------------------------------------------------------------
    # point side: q -> global position, lazy cutoff staleness
    # ------------------------------------------------------------------
    def _stale_point(self, key, stamp: int) -> bool:
        """Did any write strictly below ``key`` land after ``stamp``?"""
        i = bisect_left(self._cut_keys, key)
        return i > 0 and self._cut_stamps[i - 1] > stamp

    def get_point(self, q):
        """Cached global position of ``q`` (None on miss or stale hit)."""
        key = scalar(q)
        entry = self._points.get(key)
        if entry is not None:
            position, stamp = entry
            if not self._stale_point(key, stamp):
                self._points.move_to_end(key)
                self.point_hits += 1
                return position
            del self._points[key]  # a write shifted this rank: drop it
            self.invalidated_points += 1
        self.point_misses += 1
        return None

    def put_point(self, q, position: int) -> None:
        """Cache the rank answer for point query ``q`` (LRU eviction)."""
        if self.point_capacity == 0:
            return
        key = scalar(q)
        if key in self._points:
            self._points.move_to_end(key)
        elif len(self._points) >= self.point_capacity:
            self._points.popitem(last=False)
        self._points[key] = (int(position), self._stamp)

    # ------------------------------------------------------------------
    # range side: (lo, hi) -> cardinality, eager shard-aware drop
    # ------------------------------------------------------------------
    def get_range(self, lo, hi):
        """Cached cardinality of ``lo <= key < hi`` (None on miss)."""
        key = (scalar(lo), scalar(hi))
        count = self._ranges.get(key)
        if count is None:
            self.range_misses += 1
            return None
        self._ranges.move_to_end(key)
        self.range_hits += 1
        return count

    def put_range(self, lo, hi, count: int) -> None:
        """Cache the cardinality of ``lo <= key < hi`` (LRU eviction)."""
        if self.range_capacity == 0:
            return
        key = (scalar(lo), scalar(hi))
        if key in self._ranges:
            self._ranges.move_to_end(key)
        elif len(self._ranges) >= self.range_capacity:
            self._ranges.popitem(last=False)
        self._ranges[key] = int(count)

    # ------------------------------------------------------------------
    # coherence
    # ------------------------------------------------------------------
    def on_write(self, event: WriteEvent) -> tuple[int, int]:
        """Absorb one write; returns (point cutoffs, ranges dropped).

        Point entries are not touched here — the new cutoff poisons
        every entry below it lazily (see :meth:`get_point`).  Cached
        ranges overlapping the mutated shard's span are dropped eagerly.
        """
        if event.kind == "refresh" or event.span is None:
            return (0, 0)  # logical key sequence unchanged
        self._stamp += 1
        key = scalar(event.key)
        # the frontier stays ascending: a new write at key k dominates
        # every older cutoff at or above k (same or wider poison set,
        # strictly newer stamp)
        while self._cut_keys and self._cut_keys[-1] >= key:
            self._cut_keys.pop()
            self._cut_stamps.pop()
        self._cut_keys.append(key)
        self._cut_stamps.append(self._stamp)
        if len(self._cut_keys) > self.MAX_CUTOFFS:
            last = len(self._cut_stamps) - 1
            self._cut_keys = self._cut_keys[::2]
            self._cut_stamps = [
                self._cut_stamps[min(i + 1, last)]
                for i in range(0, last + 1, 2)
            ]
        dead = [rk for rk in self._ranges if event.overlaps(rk[0], rk[1])]
        for rk in dead:
            del self._ranges[rk]
        self.invalidated_ranges += len(dead)
        return (1, len(dead))

    def clear(self) -> None:
        """Drop every cached entry and the point-invalidation frontier."""
        self._points.clear()
        self._ranges.clear()
        self._cut_keys.clear()
        self._cut_stamps.clear()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Combined hit fraction over every get (0.0 before any get)."""
        total = (
            self.point_hits + self.point_misses
            + self.range_hits + self.range_misses
        )
        return (self.point_hits + self.range_hits) / total if total else 0.0

    def info(self) -> dict[str, object]:
        """Flat counter dict: sizes, hits/misses, invalidations, rate."""
        return {
            "points": len(self._points),
            "ranges": len(self._ranges),
            "point_hits": self.point_hits,
            "point_misses": self.point_misses,
            "range_hits": self.range_hits,
            "range_misses": self.range_misses,
            "invalidated_points": self.invalidated_points,
            "invalidated_ranges": self.invalidated_ranges,
            "hit_rate": self.hit_rate,
        }
