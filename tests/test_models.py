"""CDF models: prediction semantics, monotonicity, error bounds, and the
bit-for-bit agreement between scalar and batch prediction paths that the
Shift-Table build/query consistency depends on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import load
from repro.models import (
    FunctionModel,
    InterpolationModel,
    LinearModel,
    PGMModel,
    RadixSplineModel,
    RMIModel,
    partition_index,
    partition_index_batch,
    predicted_index,
    predicted_index_batch,
)

from helpers import sorted_uint_arrays

N = 30_000


def all_models(keys):
    return [
        InterpolationModel(keys),
        LinearModel(keys),
        RMIModel(keys, num_leaves=256, root="linear"),
        RMIModel(keys, num_leaves=256, root="radix"),
        RMIModel(keys, num_leaves=128, root="cubic"),
        RadixSplineModel(keys, epsilon=16, radix_bits=10),
        PGMModel(keys, epsilon=32),
    ]


# ----------------------------------------------------------------------
# clamping helpers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("pos,n,expected", [
    (-5.0, 100, 0), (0.0, 100, 0), (0.9, 100, 0),
    (50.4, 100, 50), (99.0, 100, 99), (105.3, 100, 99),
])
def test_predicted_index_clamps(pos, n, expected):
    assert predicted_index(pos, n) == expected


def test_predicted_index_batch_matches_scalar():
    pos = np.asarray([-5.0, 0.0, 0.9, 50.4, 99.0, 105.3])
    batch = predicted_index_batch(pos, 100)
    scalar = [predicted_index(float(p), 100) for p in pos]
    assert list(batch) == scalar


@settings(max_examples=100, deadline=None)
@given(
    pos=st.floats(-1e6, 1e9, allow_nan=False),
    n=st.integers(1, 1 << 30),
    m_frac=st.integers(1, 100),
)
def test_partition_index_scalar_batch_agree(pos, n, m_frac):
    """Build (batch) and query (scalar) must bucket identically."""
    m = max(n // m_frac, 1)
    scalar = partition_index(pos, n, m)
    batch = int(partition_index_batch(np.asarray([pos]), n, m)[0])
    assert scalar == batch
    assert 0 <= scalar < m


# ----------------------------------------------------------------------
# per-model contracts
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def face_keys():
    return load("face64", N, seed=11)


def test_interpolation_model_endpoints(face_keys):
    model = InterpolationModel(face_keys)
    assert model.predict_pos(face_keys[0]) == pytest.approx(0.0)
    assert model.predict_pos(face_keys[-1]) == pytest.approx(N, rel=1e-9)
    assert model.is_monotone


def test_interpolation_model_degenerate_constant_data():
    keys = np.full(10, 42, dtype=np.uint64)
    model = InterpolationModel(keys)
    assert model.predict_pos(42) == 0.0


def test_linear_model_fits_line_exactly():
    keys = (np.arange(1000, dtype=np.uint64) * 7 + 3).astype(np.uint64)
    model = LinearModel(keys)
    pred = model.predict_pos_batch(keys)
    assert np.abs(pred - np.arange(1000)).max() < 1e-6
    assert model.is_monotone


def test_function_model_wraps_callable():
    model = FunctionModel(lambda x: x / 10.0, 100)
    assert model.predict_pos(771) == pytest.approx(77.1)
    batch = model.predict_pos_batch(np.asarray([771, 782]))
    assert batch == pytest.approx([77.1, 78.2])


@pytest.mark.parametrize("root", ["linear", "radix", "cubic"])
def test_rmi_error_bounds_cover_training_keys(face_keys, root):
    model = RMIModel(face_keys, num_leaves=512, root=root)
    pred = model.predict_pos_batch(face_keys)
    truth = np.arange(N, dtype=np.float64)
    err = truth - pred
    for i in range(0, N, 997):
        lo, hi = model.error_bounds(face_keys[i])
        assert lo - 1 <= err[i] <= hi + 1


def test_rmi_scalar_batch_agree(face_keys):
    model = RMIModel(face_keys, num_leaves=512)
    sample = face_keys[:: N // 200]
    batch = model.predict_pos_batch(sample)
    scalar = np.asarray([model.predict_pos(k) for k in sample])
    assert np.array_equal(batch, scalar)


def test_rmi_reports_nonmonotone():
    keys = load("face64", N, seed=11)
    assert not RMIModel(keys, num_leaves=64).is_monotone


def test_rmi_rejects_bad_args(face_keys):
    with pytest.raises(ValueError):
        RMIModel(face_keys, num_leaves=0)
    with pytest.raises(ValueError):
        RMIModel(face_keys, root="quadratic")


def test_rmi_mean_error_decreases_with_leaves(face_keys):
    small = RMIModel(face_keys, num_leaves=64)
    big = RMIModel(face_keys, num_leaves=2048)
    assert big.mean_abs_error < small.mean_abs_error


def float_group_runs(keys):
    """Distinct float64 key values, their first slot, and run length.

    64-bit keys closer than one float64 ulp are indistinguishable to any
    double-based model (RS, PGM, RMI all are — like SOSD's C++ doubles),
    so error guarantees can only be stated per float-distinct key.
    """
    unique, first = np.unique(keys, return_index=True)
    as_float = unique.astype(np.float64)
    _, grp_first, grp_counts = np.unique(
        as_float, return_index=True, return_counts=True
    )
    # run length in *slots*: from the group's first slot to the next group's
    n = len(keys)
    starts = first[grp_first]
    runs = np.diff(np.concatenate([starts, [n]]))
    return as_float[grp_first], starts, runs


@pytest.mark.parametrize("epsilon", [4, 16, 64])
def test_radix_spline_epsilon_guarantee(face_keys, epsilon):
    """ε-corridor guarantee per float-distinct key, modulo collapsed runs.

    A vertical run of r rows at one float key cannot be predicted within
    ±ε by any function of the key when r > 2ε; the achievable bound is
    ε + r, and the validated last-mile search absorbs the rest.
    """
    model = RadixSplineModel(face_keys, epsilon=epsilon, radix_bits=10)
    fkeys, first, runs = float_group_runs(face_keys)
    pred = model.predict_pos_batch(fkeys)
    err = np.abs(pred - first)
    assert bool(np.all(err <= epsilon + runs + 1e-6))


def test_radix_spline_epsilon_strict_on_32bit():
    """No float collapse on 32-bit keys: the strict ±ε guarantee holds."""
    keys = load("face32", N, seed=11)
    model = RadixSplineModel(keys, epsilon=4, radix_bits=10)
    unique, first = np.unique(keys, return_index=True)
    pred = model.predict_pos_batch(unique)
    assert np.abs(pred - first).max() <= 4 + 1e-6


def test_radix_spline_monotone_batch(face_keys):
    model = RadixSplineModel(face_keys, epsilon=16, radix_bits=10)
    sample = np.sort(
        np.random.default_rng(0).integers(
            int(face_keys[0]), int(face_keys[-1]), 2000
        ).astype(np.uint64)
    )
    pred = model.predict_pos_batch(sample)
    assert bool(np.all(np.diff(pred) >= 0))
    assert model.check_monotone(sample)


def test_radix_spline_scalar_batch_bitwise_equal(face_keys):
    model = RadixSplineModel(face_keys, epsilon=16, radix_bits=10)
    sample = np.concatenate([face_keys[::371], face_keys[::373] + 1])
    batch = model.predict_pos_batch(sample)
    scalar = np.asarray([model.predict_pos(k) for k in sample])
    assert np.array_equal(batch, scalar)


def test_radix_spline_constant_data():
    keys = np.full(100, 42, dtype=np.uint64)
    model = RadixSplineModel(keys, epsilon=4, radix_bits=4)
    assert model.predict_pos(42) == 0.0
    assert model.predict_pos(41) == 0.0


def test_radix_spline_spline_points_grow_with_precision(face_keys):
    loose = RadixSplineModel(face_keys, epsilon=256, radix_bits=10)
    tight = RadixSplineModel(face_keys, epsilon=4, radix_bits=10)
    assert tight.num_spline_points > loose.num_spline_points


def test_radix_spline_rejects_bad_args(face_keys):
    with pytest.raises(ValueError):
        RadixSplineModel(face_keys, epsilon=0)
    with pytest.raises(ValueError):
        RadixSplineModel(face_keys, radix_bits=0)


@pytest.mark.parametrize("epsilon", [8, 64])
def test_pgm_epsilon_guarantee(face_keys, epsilon):
    model = PGMModel(face_keys, epsilon=epsilon)
    fkeys, first, runs = float_group_runs(face_keys)
    pred = model.predict_pos_batch(fkeys)
    err = np.abs(pred - first)
    assert bool(np.all(err <= epsilon + runs + 1e-6))


def test_pgm_epsilon_strict_on_32bit():
    keys = load("face32", N, seed=11)
    model = PGMModel(keys, epsilon=16)
    unique, first = np.unique(keys, return_index=True)
    pred = model.predict_pos_batch(unique)
    assert np.abs(pred - first).max() <= 16 + 1e-6


def test_pgm_scalar_batch_agree(face_keys):
    model = PGMModel(face_keys, epsilon=32)
    sample = np.concatenate([face_keys[::419], face_keys[::421] + 1])
    batch = model.predict_pos_batch(sample)
    scalar = np.asarray([model.predict_pos(k) for k in sample])
    assert np.array_equal(batch, scalar)


def test_pgm_levels_shrink(face_keys):
    model = PGMModel(face_keys, epsilon=32)
    sizes = [len(level) for level in model.levels]
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
    assert sizes[-1] <= 2 * model.epsilon_internal + 2


def test_pgm_rejects_bad_args(face_keys):
    with pytest.raises(ValueError):
        PGMModel(face_keys, epsilon=0)


@settings(max_examples=25, deadline=None)
@given(keys=sorted_uint_arrays(min_size=8, max_size=300))
def test_property_models_predict_finite(keys):
    for model in (
        InterpolationModel(keys),
        LinearModel(keys),
        RadixSplineModel(keys, epsilon=4, radix_bits=4),
    ):
        pred = model.predict_pos_batch(keys)
        assert np.all(np.isfinite(pred))


def test_size_bytes_positive(face_keys):
    for model in all_models(face_keys):
        assert model.size_bytes() > 0
