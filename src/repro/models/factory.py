"""Shard-local model fitting: build a model for an arbitrary key slice.

The sharded engine fits one CDF model per shard, so model construction
has to work for *any* slice size — from a single key up to millions —
without the caller hand-tuning hyper-parameters per shard.  Each builder
here scales its capacity knobs to the slice it is given (an RMI with
4096 leaves over a 50-key shard is pure waste; a 1024-bucket histogram
over 10 keys is ill-formed), which is exactly the per-partition tuning
argument of the Google-scale learned-index follow-ups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .base import CDFModel
from .histogram import HistogramModel
from .interpolation import InterpolationModel
from .linear import LinearModel
from .pgm import PGMModel
from .radix_spline import RadixSplineModel
from .rmi import RMIModel

ModelFactory = Callable[[np.ndarray], CDFModel]


def _rmi_for(keys: np.ndarray) -> RMIModel:
    # ~64 keys per leaf, capped so tiny shards get tiny models
    leaves = int(min(4096, max(1, len(keys) // 64)))
    return RMIModel(keys, num_leaves=leaves)


def _histogram_for(keys: np.ndarray) -> HistogramModel:
    buckets = int(min(1024, max(1, len(keys) // 4)))
    return HistogramModel(keys, buckets=buckets)


def _radix_spline_for(keys: np.ndarray) -> RadixSplineModel:
    # radix table sized to the shard: ~1 prefix per 4 keys, 2^18 cap
    bits = max(1, min(18, int(max(len(keys) // 4, 2)).bit_length()))
    return RadixSplineModel(keys, epsilon=32, radix_bits=bits)


MODEL_FACTORIES: dict[str, ModelFactory] = {
    "interpolation": InterpolationModel,
    "linear": LinearModel,
    "rmi": _rmi_for,
    "pgm": PGMModel,
    "radix_spline": _radix_spline_for,
    "histogram": _histogram_for,
}

#: Scaled factories (rmi/histogram/radix_spline) wrap their model type,
#: so the reverse mapping cannot come from :data:`MODEL_FACTORIES` alone.
_TYPE_TO_KIND = {
    "RMIModel": "rmi",
    "HistogramModel": "histogram",
    "RadixSplineModel": "radix_spline",
}


def model_kind_name(model_type: type) -> str | None:
    """The factory name that (re)builds ``model_type`` instances.

    The inverse of :data:`MODEL_FACTORIES` (covering the scaled
    factories that wrap their type); ``None`` for model types no named
    factory produces — callers keep the type itself as a callable
    factory in that case.
    """
    for kind_name, candidate in MODEL_FACTORIES.items():
        if candidate is model_type:
            return kind_name
    return _TYPE_TO_KIND.get(model_type.__name__)


@dataclass(frozen=True)
class IndexDecision:
    """A tuner's choice of model family and correction layer for one index.

    The value a cost-model tuner (``core/tuner``, ``engine/autotune``)
    hands to :func:`build_corrected_index`: ``model`` is a factory name
    from :data:`MODEL_FACTORIES` or a ``keys -> CDFModel`` callable,
    ``layer`` is ``"R"`` (guaranteed-window ShiftTable), ``"S"``
    (compact layer) or ``None`` (bare model), and ``layer_partitions``
    is the paper's ``M`` (``None`` means ``M = N``).
    """

    model: str | ModelFactory = "interpolation"
    layer: str | None = "R"
    layer_partitions: int | None = None

    def label(self) -> str:
        """Compact human-readable form, e.g. ``"rmi+R"`` (plan columns)."""
        model = self.model if isinstance(self.model, str) else getattr(
            self.model, "__name__", "custom")
        return f"{model}+{self.layer or 'none'}"


def make_model(kind: str | ModelFactory, keys: np.ndarray) -> CDFModel:
    """Fit a model of ``kind`` to a sorted key slice (shard-local).

    ``kind`` is a factory name from :data:`MODEL_FACTORIES` or any
    callable ``keys -> CDFModel``.
    """
    if callable(kind):
        return kind(keys)
    try:
        factory = MODEL_FACTORIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown model kind {kind!r}; known: {sorted(MODEL_FACTORIES)}"
        ) from None
    return factory(keys)


def build_corrected_index(
    keys: np.ndarray,
    model: str | ModelFactory | IndexDecision = "interpolation",
    layer: str | None = "R",
    layer_partitions: int | None = None,
    payload_bytes: int | None = None,
    name: str = "index",
):
    """Fit model + correction layer + data into one CorrectedIndex.

    The single construction path shared by :meth:`ShardedIndex.build`
    and the updatable shard backends, so a shard rebuilt after updates
    is configured exactly like the shard built at load time.  ``layer``
    is ``"R"`` (guaranteed-window ShiftTable), ``"S"`` (compact layer)
    or ``None`` (bare model).

    ``model`` may also be an :class:`IndexDecision` — the output of a
    cost-model tuner — in which case its model/layer/partition choices
    override the ``layer``/``layer_partitions`` arguments.  Raises
    ``ValueError`` for an unknown layer mode or model name.
    """
    if isinstance(model, IndexDecision):
        layer = model.layer
        layer_partitions = model.layer_partitions
        model = model.model
    # local imports: models.factory is imported by core modules, so a
    # top-level core import here would be circular
    from ..core.compact import CompactShiftTable
    from ..core.corrected_index import CorrectedIndex
    from ..core.records import SortedData
    from ..core.shift_table import ShiftTable
    from ..hardware.machine import DEFAULT_PAYLOAD_BYTES

    if layer not in ("R", "S", None):
        raise ValueError(f"layer must be 'R', 'S' or None, got {layer!r}")
    keys = np.asarray(keys)
    if payload_bytes is None:
        payload_bytes = DEFAULT_PAYLOAD_BYTES
    data = SortedData(keys, payload_bytes=payload_bytes, name=name)
    fitted = make_model(model, keys)
    built = None
    if layer == "R":
        built = ShiftTable.build(keys, fitted, layer_partitions)
    elif layer == "S":
        built = CompactShiftTable.build(keys, fitted, layer_partitions)
    return CorrectedIndex(data, fitted, built)
