"""A miniature Table 2: compare every index family on two datasets.

Builds all twelve SOSD methods over a synthetic (uden64) and a real-world
surrogate (face64) dataset and prints the simulated lookup latency,
hardware counters and footprints, reproducing the paper's contrast:
learned indexes win on smooth synthetic data, while on real-world data
the dummy model + Shift-Table beats hand-tuned RMI.

Run:  python examples/sosd_comparison.py            (2M keys, ~2 min)
      REPRO_SOSD_N=200000 python examples/sosd_comparison.py   (quick)
"""

from repro.bench import (
    MethodNotAvailable,
    TABLE2_METHODS,
    build_method,
    format_table,
    measure_index,
    uniform_over_keys,
)
from repro.bench.workload import env_num_keys, env_num_queries
from repro.core.records import SortedData
from repro.datasets import load
from repro.hardware.machine import MachineSpec


def main() -> None:
    n = env_num_keys()
    num_queries = env_num_queries()
    for dataset in ("uden64", "face64"):
        keys = load(dataset, n)
        data = SortedData(keys, name=dataset)
        machine = MachineSpec.paper().scaled_for(n, data.record_bytes)
        queries = uniform_over_keys(keys, num_queries, seed=7)

        rows = []
        for method in TABLE2_METHODS:
            try:
                index, build_s = build_method(method, data)
            except MethodNotAvailable as exc:
                rows.append([method, None, None, None, None, str(exc)[:40]])
                continue
            m = measure_index(index, data, queries, machine,
                              dataset_name=dataset, build_seconds=build_s)
            assert m.correct, method
            rows.append([
                method,
                m.ns_per_lookup,
                m.llc_misses_per_lookup,
                m.size_bytes / 1e6,
                m.build_seconds,
                "",
            ])
        print()
        print(format_table(
            ["method", "ns/lookup", "LLC miss", "size MB", "build s", "note"],
            rows,
            title=f"{dataset} (n={n:,}, simulated i7-6700 scaled)",
            float_digits=2,
        ))


if __name__ == "__main__":
    main()
