"""FAST-style cache-line-blocked search tree (Kim et al., SIGMOD 2010).

FAST lays a binary search tree out so that each 64-byte cache line holds
a complete 4-level binary subtree (15 keys, padded to 16 x 32-bit), making
every line fetch worth 4 comparisons — a 16-ary tree of cache lines.  The
hot top lines stay cached, so the whole search costs a handful of line
fetches regardless of the data distribution (§2.2: "up to 3X faster than
binary search ... keeps more hot keys in the cache").

We reproduce exactly that structure: implicit 16-ary tree over cache-line
nodes of 15 separators; SIMD within a node is modelled as a fixed small
instruction charge per visited line.  Like the original, only 32-bit keys
are supported (Table 2 reports "N/A" for all 64-bit datasets).
"""

from __future__ import annotations

import numpy as np

from ..core.records import SortedData
from ..hardware.tracker import NULL_TRACKER, NullTracker, Region, alloc_region
from ..search.binary import lower_bound

#: Separators per cache-line node (15 keys + 1 pad = 64 bytes of u32).
_NODE_KEYS = 15
_NODE_FANOUT = 16

#: Instructions per visited node: SIMD compare + mask + child arithmetic.
_INSTR_PER_NODE = 6


class KeyWidthError(TypeError):
    """Raised when building FAST over keys wider than 32 bits."""


class FASTree:
    """Implicit cache-line-blocked 16-ary search tree over sorted records."""

    def __init__(self, data: SortedData) -> None:
        if data.keys.dtype.itemsize != 4:
            raise KeyWidthError(
                "FAST supports 32-bit keys only (Table 2: N/A for 64-bit)"
            )
        self.data = data
        self.name = "FAST"
        self._levels: list[np.ndarray] = []
        self._regions: list[Region] = []
        self._build()

    def _build(self) -> None:
        """Group separator levels into cache-line nodes, bottom-up.

        Level ``d`` (from the root) holds ``16^d`` nodes of 15 separators;
        node ``i``'s children are nodes ``16*i .. 16*i+15`` one level
        down, and at the bottom each child slot maps to a run of records.
        """
        keys = self.data.keys
        n = len(keys)
        if n == 0:
            return
        # choose the depth: smallest d with fanout^d * fanout >= n/run
        depth = 1
        while (_NODE_FANOUT ** depth) * _NODE_FANOUT < n:
            depth += 1
        self._depth = depth
        # bottom-level leaf runs: the record array split into equal runs
        self._num_runs = _NODE_FANOUT ** depth
        self._run_len = -(-n // self._num_runs)  # ceil division
        # build separator levels top-down: level d has 16^d nodes; the
        # separators of a node split its key range into 16 child ranges
        for d in range(depth):
            nodes = _NODE_FANOUT ** d
            runs_per_node = self._num_runs // nodes
            runs_per_child = self._num_runs // (_NODE_FANOUT ** (d + 1))
            node_ids = np.arange(nodes, dtype=np.int64)[:, None]
            slot_ids = np.arange(_NODE_KEYS, dtype=np.int64)[None, :]
            child_run = node_ids * runs_per_node + (slot_ids + 1) * runs_per_child
            pos = np.minimum(child_run.ravel() * self._run_len, n - 1)
            seps = keys[pos]
            self._levels.append(seps)
            self._regions.append(
                alloc_region(f"fast_{id(self):x}_L{d}", 4, nodes * _NODE_KEYS + nodes)
            )

    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Position of the first record with key >= q."""
        n = len(self.data.keys)
        if n == 0:
            return 0
        node = 0
        for level, region in zip(self._levels, self._regions):
            # one cache line per node; SIMD resolves the child in-core
            tracker.touch(region, node * _NODE_FANOUT)
            tracker.instr(_INSTR_PER_NODE)
            base = node * _NODE_KEYS
            seps = level[base : base + _NODE_KEYS]
            # first separator >= q gives the child slot (strict "< q" so a
            # duplicate run straddling a separator is entered at its start)
            child = int(np.searchsorted(seps, q, side="left"))
            node = node * _NODE_FANOUT + child
        start = min(node * self._run_len, n)
        stop = min(start + self._run_len, n)
        return lower_bound(self.data.keys, self.data.region, tracker, q, start, stop)

    def size_bytes(self) -> int:
        # 16 slots of 4 bytes per node (15 separators + pad)
        return sum((len(level) // _NODE_KEYS) * 64 for level in self._levels)
