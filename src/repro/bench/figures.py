"""ASCII rendering of benchmark series (no plotting dependencies).

The paper's figures are log-log line charts; these helpers render the
same series as fixed-width charts so `pytest -s` output shows the curve
*shapes* — the actual reproduction target — directly in the terminal.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Glyphs cycled across series in a chart.
_GLYPHS = "ox+*#@%&"


def _log_positions(values: Sequence[float], lo: float, hi: float, width: int):
    span = math.log(hi) - math.log(lo) if hi > lo else 1.0
    out = []
    for v in values:
        v = min(max(v, lo), hi)
        out.append(round((math.log(v) - math.log(lo)) / span * (width - 1)))
    return out


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII chart.

    Both axes default to log scale (the paper's Figure 2/8/9 style).
    Values must be positive when the corresponding axis is logarithmic.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("no data to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_x and x_lo <= 0 or log_y and y_lo <= 0:
        raise ValueError("log axes need positive values")
    if x_hi <= x_lo:
        x_hi = x_lo + 1
    if y_hi <= y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]

    def col_of(x: float) -> int:
        if log_x:
            return _log_positions([x], x_lo, x_hi, width)[0]
        return round((x - x_lo) / (x_hi - x_lo) * (width - 1))

    def row_of(y: float) -> int:
        if log_y:
            r = _log_positions([y], y_lo, y_hi, height)[0]
        else:
            r = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return height - 1 - r

    legend = []
    for i, (label, pts) in enumerate(series.items()):
        glyph = _GLYPHS[i % len(_GLYPHS)]
        legend.append(f"{glyph} = {label}")
        for x, y in pts:
            grid[row_of(y)][col_of(x)] = glyph

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:,.0f}"
    y_bot = f"{y_lo:,.0f}"
    pad = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label:>{pad}} |{''.join(row)}")
    lines.append(f"{'':>{pad}} +{'-' * width}")
    x_axis = f"{x_lo:,.0f}".ljust(width - len(f"{x_hi:,.0f}")) + f"{x_hi:,.0f}"
    lines.append(f"{'':>{pad}}  {x_axis}")
    lines.append("  ".join(legend))
    return "\n".join(lines)


def series_from_rows(
    rows: Sequence[Mapping],
    group_key: str,
    x_key: str,
    y_key: str,
) -> dict[str, list[tuple[float, float]]]:
    """Group benchmark row dicts into chart series, sorted by x."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        x, y = row.get(x_key), row.get(y_key)
        if x is None or y is None:
            continue
        series.setdefault(str(row[group_key]), []).append((float(x), float(y)))
    for pts in series.values():
        pts.sort()
    return series
