"""Kernel registry: which implementation of each hot-path kernel is live.

The compiled hot path has exactly two implementations per kernel — a
numba ``@njit(cache=True, nogil=True)`` build and a guaranteed pure-numpy
fallback — and exactly one of them is *live* at any moment.  The registry
is the single source of truth for that choice, so backends, sanitizers,
the linter and the benchmarks can all introspect (and force) which path
their numbers came from instead of guessing from import side effects.

Mode semantics
--------------
``auto``  — numba when importable, numpy otherwise (the import-time pick);
``numba`` — require the compiled path (``KernelUnavailableError`` if the
            container has no numba);
``numpy`` — force the fallback even when numba is importable (used by the
            parity suite and the benchmark baseline).

``REPRO_KERNELS`` in the environment seeds the mode at import time; an
unsatisfiable request (``REPRO_KERNELS=numba`` without numba installed)
falls back to numpy with a warning rather than poisoning every import.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

KERNEL_MODES = ("auto", "numba", "numpy")


class KernelUnavailableError(RuntimeError):
    """A kernel mode was forced that this environment cannot provide."""


@dataclass
class KernelEntry:
    """One named kernel with its per-backend implementations."""

    name: str
    numpy_impl: Callable
    numba_impl: Callable | None = None
    description: str = ""
    #: the uncompiled python source of the numba kernel (same algorithm,
    #: callable without numba) — the parity suite runs it interpreted
    python_impl: Callable | None = None

    def resolve(self, use_numba: bool) -> tuple[str, Callable]:
        """``(implementation_name, callable)`` for the requested backend."""
        if use_numba and self.numba_impl is not None:
            return "numba", self.numba_impl
        return "numpy", self.numpy_impl


@dataclass
class KernelRegistry:
    """All hot-path kernels plus the process-wide mode switch."""

    numba_available: bool = False
    _mode: str = "auto"
    _entries: dict[str, KernelEntry] = field(default_factory=dict)

    # -- registration --------------------------------------------------
    def register(
        self,
        name: str,
        numpy_impl: Callable,
        numba_impl: Callable | None = None,
        description: str = "",
        python_impl: Callable | None = None,
    ) -> KernelEntry:
        """Index a kernel; re-registration under the same name is an error."""
        if name in self._entries:
            raise ValueError(f"kernel {name!r} registered twice")
        entry = KernelEntry(name, numpy_impl, numba_impl, description,
                            python_impl)
        self._entries[name] = entry
        return entry

    # -- mode ----------------------------------------------------------
    @property
    def mode(self) -> str:
        """The requested mode (``auto``/``numba``/``numpy``)."""
        return self._mode

    def effective_mode(self) -> str:
        """The backend actually serving calls right now."""
        if self._mode == "numpy":
            return "numpy"
        if self._mode == "numba":
            return "numba"
        return "numba" if self.numba_available else "numpy"

    def set_mode(self, mode: str, strict: bool = True) -> str:
        """Switch the live backend; returns the effective mode.

        ``strict=True`` (callers like ``--kernels=numba``) raises
        :class:`KernelUnavailableError` when numba is requested but not
        importable; ``strict=False`` (the import-time env seed) warns and
        degrades to the guaranteed fallback.
        """
        if mode not in KERNEL_MODES:
            raise ValueError(
                f"kernel mode must be one of {KERNEL_MODES}, got {mode!r}"
            )
        if mode == "numba" and not self.numba_available:
            if strict:
                raise KernelUnavailableError(
                    "numba kernels requested but numba is not importable "
                    "in this environment; install numba or use "
                    "--kernels=auto|numpy"
                )
            warnings.warn(
                "REPRO_KERNELS=numba but numba is not importable; "
                "falling back to the pure-numpy kernels",
                RuntimeWarning,
                stacklevel=2,
            )
            mode = "numpy"
        self._mode = mode
        return self.effective_mode()

    # -- resolution ----------------------------------------------------
    def get(self, name: str) -> Callable:
        """The live callable for kernel ``name`` under the current mode."""
        entry = self._entries[name]
        return entry.resolve(self.effective_mode() == "numba")[1]

    def implementation(self, name: str) -> str:
        """``"numba"`` or ``"numpy"``: which impl ``get(name)`` returns."""
        entry = self._entries[name]
        return entry.resolve(self.effective_mode() == "numba")[0]

    def entry(self, name: str) -> KernelEntry:
        return self._entries[name]

    def names(self) -> list[str]:
        return sorted(self._entries)

    # -- introspection -------------------------------------------------
    def describe(self) -> list[dict[str, object]]:
        """One row per kernel: name, live impl, compiled availability."""
        return [
            {
                "kernel": name,
                "live": self.implementation(name),
                "has_numba": self._entries[name].numba_impl is not None,
                "description": self._entries[name].description,
            }
            for name in self.names()
        ]

    def to_dict(self) -> dict[str, object]:
        """Stable JSON-ready summary (benchmarks embed this in results)."""
        return {
            "mode": self._mode,
            "effective_mode": self.effective_mode(),
            "numba_available": self.numba_available,
            "kernels": self.describe(),
        }
