"""Access trackers: the bridge between index code and the simulator.

Every index/search implementation in this repository is written against a
tiny tracing protocol so the *same* code path serves both correctness
tests (zero-cost :class:`NullTracker`) and simulated-latency measurement
(:class:`SimTracker` charging a :class:`~repro.hardware.hierarchy.MemoryHierarchy`):

* ``touch(region, i)``   — one random access to element ``i`` of a region,
* ``scan(region, a, b)`` — sequential read of elements ``[a, b)``,
* ``instr(n)``           — ``n`` retired instructions of pure compute.

A :class:`Region` is a named slab of simulated address space.  Regions are
handed out by :func:`alloc_region` with 64-byte alignment and a guard gap,
so two regions never share a cache line.
"""

from __future__ import annotations

import itertools
import threading

from .hierarchy import MemoryHierarchy

#: Guard gap between allocated regions (bytes); keeps regions line-disjoint.
_REGION_GAP = 4096

_alloc_lock = threading.Lock()
_next_base = itertools.count(0)
_base_cursor = [0]


class Region:
    """A contiguous array of fixed-size items in simulated memory."""

    __slots__ = ("name", "base", "itemsize", "length")

    def __init__(self, name: str, base: int, itemsize: int, length: int) -> None:
        self.name = name
        self.base = base
        self.itemsize = itemsize
        self.length = length

    @property
    def nbytes(self) -> int:
        return self.itemsize * self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Region({self.name!r}, base={self.base:#x}, "
            f"itemsize={self.itemsize}, length={self.length})"
        )


def alloc_region(name: str, itemsize: int, length: int) -> Region:
    """Allocate a new line-aligned region of simulated address space."""
    if itemsize <= 0:
        raise ValueError("itemsize must be positive")
    if length < 0:
        raise ValueError("length must be non-negative")
    nbytes = itemsize * max(length, 1)
    with _alloc_lock:
        base = _base_cursor[0]
        _base_cursor[0] = base + nbytes + _REGION_GAP
        _base_cursor[0] += (-_base_cursor[0]) % 64
    return Region(name, base, itemsize, length)


class NullTracker:
    """No-op tracker used for correctness tests and batch lookups."""

    __slots__ = ()

    def touch(self, region: Region, index: int) -> None:
        pass

    def scan(self, region: Region, start: int, stop: int) -> None:
        pass

    def instr(self, count: int) -> None:
        pass


#: Shared no-op tracker instance (stateless, safe to share).
NULL_TRACKER = NullTracker()


class SimTracker:
    """Tracker that charges every event to a simulated memory hierarchy."""

    __slots__ = ("hierarchy", "_line_size")

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        self._line_size = hierarchy.spec.line_size

    def touch(self, region: Region, index: int) -> None:
        line = (region.base + index * region.itemsize) // self._line_size
        self.hierarchy.access(line)

    def scan(self, region: Region, start: int, stop: int) -> None:
        if stop <= start:
            return
        line_size = self._line_size
        first = (region.base + start * region.itemsize) // line_size
        last = (region.base + (stop - 1) * region.itemsize) // line_size
        self.hierarchy.scan(first, last - first + 1)

    def instr(self, count: int) -> None:
        self.hierarchy.instructions(count)

    # convenience passthroughs -----------------------------------------
    @property
    def stats(self):
        return self.hierarchy.stats

    def reset_stats(self) -> None:
        self.hierarchy.reset_stats()
