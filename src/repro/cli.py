"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the experiment drivers and diagnostics so the
reproduction can be poked without writing Python:

* ``version``      — library + on-disk format versions (also ``--version``)
* ``build``        — build an index via the ``repro.Index`` facade,
  optionally ``--save`` it to disk or ``--durable-dir`` it into a
  WAL + checkpoint directory
* ``inspect``      — reopen a saved index and report its configuration
  (replica directories get a read-only replication report instead)
* ``recover``      — crash-recover a durable directory (checkpoint +
  WAL replay) and report what came back
* ``checkpoint``   — run one incremental checkpoint pass over a
  durable directory and prune its WAL (``--keep-generations`` leaves
  a resume window for briefly-disconnected replicas)
* ``replicate``    — serve a durable directory to read replicas
  (checkpoint shipping + WAL-tail streaming, see repro.replica)
* ``follow``       — run a read replica of a ``replicate`` endpoint
  into a local directory
* ``table2``       — run Table 2 cells for chosen datasets/methods
* ``fig``          — run one figure driver (2, 3, 6, 7, 9)
* ``datasets``     — list datasets with their §2.4/§3.6 diagnostics
* ``tune``         — run the §3.9 advisor on one dataset
* ``explain``      — trace a single lookup through model + layer
* ``engine-bench`` — scalar vs vectorized vs sharded batch throughput
  (``--save``/``--load`` round it through persistence)
* ``engine-plan``  — EXPLAIN a query batch against a sharded index
* ``engine-update-bench`` — mixed read/write workload across backends
* ``serve-bench``  — async serving: micro-batching + caching vs unbatched
* ``serve``        — run the TCP serving front end (framed binary
  protocol, optional shared-memory read-worker processes)
* ``client-bench`` — network serving load matrix (transport × workers
  × scenario), every response oracle-verified
* ``autotune-bench`` — per-shard §3.9 auto-tuning vs fixed global configs
* ``lint``         — project linter (RPR rules: dtype/lock/durability/
  async contracts), text or JSON findings, nonzero exit on violations
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .bench import experiments
from .bench.reporting import format_table


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=None,
                        help="keys per dataset (default is per-command: "
                             "REPRO_SOSD_N/2M for table2 and figs, 100k-1M "
                             "for the engine/serve benchmarks)")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries (or total ops) per cell; default is "
                             "per-command")
    parser.add_argument("--seed", type=int, default=None,
                        help="RNG seed for datasets and workloads")


def _version_string() -> str:
    from . import __version__
    from .api import CONFIG_VERSION
    from .engine.persist import FORMAT_VERSION

    return (f"repro {__version__} "
            f"(engine format v{FORMAT_VERSION}, config v{CONFIG_VERSION})")


def _cmd_version(args: argparse.Namespace) -> int:
    print(_version_string())
    return 0


def _facade_config(args: argparse.Namespace):
    """Build an IndexConfig from ``build``-style CLI arguments."""
    from .api import IndexConfig

    overrides = {"num_shards": args.shards, "workers": args.workers}
    if args.preset:
        return IndexConfig.from_preset(args.preset, **overrides)
    return IndexConfig(
        model=args.model,
        layer=None if args.layer == "none" else args.layer,
        backend=args.backend,
        auto_tune=args.auto_tune,
        **overrides,
    )


def _print_index_report(index) -> None:
    """Shared ``build``/``inspect`` report: config, summary, EXPLAIN."""
    print("config:  " + ", ".join(
        f"{k}={v}" for k, v in index.config.to_dict().items()
    ))
    print("index:   " + ", ".join(
        f"{k}={v}" for k, v in index.build_info().items()
    ))
    sample = np.random.default_rng(0).choice(
        index.keys, min(4096, len(index))
    )
    print(index.explain(sample))


def _cmd_build(args: argparse.Namespace) -> int:
    from .api import Index
    from .datasets import load

    n = args.n or 1_000_000
    keys = load(args.dataset, n, args.seed or 42)
    config = _facade_config(args)
    if args.durability:
        from dataclasses import replace

        config = replace(config, durability=args.durability)
    t0 = time.perf_counter()
    index = Index.build(keys, config, name=args.dataset,
                        durable_dir=args.durable_dir)
    build_s = time.perf_counter() - t0
    print(f"built {args.dataset} (n={n:,}) in {build_s:.2f}s")
    _print_index_report(index)
    if args.durable_dir:
        print(f"durable: {index.durability.describe()} — recover with "
              f"`python -m repro recover {args.durable_dir}`")
        index.close()
    if args.save:
        from pathlib import Path

        t0 = time.perf_counter()
        index.save(args.save)
        save_s = time.perf_counter() - t0
        size_mb = Path(args.save).stat().st_size / 1e6
        print(f"saved to {args.save} ({size_mb:.1f} MB) in {save_s:.2f}s — "
              f"reopen with `python -m repro inspect {args.save}`")
    return 0


def _inspect_replica(path) -> int:
    """Read-only replication report for a ``follow`` directory.

    Deliberately avoids ``Index.open`` — inspecting a replica must not
    open a WAL writer or replay anything while (or after) a follower
    owns the directory.
    """
    from pathlib import Path

    from .engine.durability import MANIFEST_NAME, DurabilityManager
    from .engine.wal import list_generations, read_wal
    from .replica import read_replica_state

    state = read_replica_state(path)
    host, port = state.get("leader", ["?", 0])
    print(f"replica of {host}:{port} at {path}")
    for key in ("applied_lsn", "leader_lsn", "generation", "bytes_synced",
                "bytes_streamed", "streamed_records", "full_syncs",
                "resyncs", "subscriptions"):
        print(f"  {key:>18}: {state.get(key)}")
    lag = max(0, int(state.get("leader_lsn", 0))
              - int(state.get("applied_lsn", 0)))
    print(f"  {'lag_lsn':>18}: {lag} (as of the last state dump)")
    root = Path(path)
    if (root / MANIFEST_NAME).is_file():
        manifest = DurabilityManager._read_manifest(root)
        records, torn = read_wal(
            root / "wal", min_generation=int(manifest["generation"]))
        print(f"  {'manifest':>18}: generation "
              f"{manifest['generation']}, "
              f"{len(manifest['segments'])} segment(s)")
        print(f"  {'local wal':>18}: {len(records)} record(s) in "
              f"generation(s) {list_generations(root / 'wal')}"
              f"{' (torn tail)' if torn else ''}")
        print("promote with `python -m repro recover "
              f"{path}` or repro.open()")
    else:
        print("  no local manifest — the next `follow` will full-sync")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .api import Index
    from .replica import is_replica_dir

    if is_replica_dir(args.path):
        return _inspect_replica(args.path)
    t0 = time.perf_counter()
    index = Index.open(args.path)
    open_s = time.perf_counter() - t0
    print(f"opened {args.path} in {open_s:.3f}s (no refitting)")
    _print_index_report(index)
    index.close()
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from .api import Index

    t0 = time.perf_counter()
    index = Index.open(args.path)
    open_s = time.perf_counter() - t0
    if index.durability is None:
        print(f"{args.path} is a plain snapshot, not a durable directory",
              file=sys.stderr)
        index.close()
        return 1
    d = index.durability
    print(f"recovered {args.path} in {open_s:.3f}s "
          f"(checkpoint generation {d.generation}, "
          f"replayed {d.replayed} WAL records, skipped {d.skipped})")
    _print_index_report(index)
    if args.checkpoint:
        t0 = time.perf_counter()
        manifest = index.checkpoint()
        print(f"checkpointed to generation {manifest['generation']} "
              f"in {time.perf_counter() - t0:.2f}s (WAL pruned)")
    index.close()
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from .api import Index

    index = Index.open(args.path)
    if index.durability is None:
        print(f"{args.path} is a plain snapshot, not a durable directory",
              file=sys.stderr)
        index.close()
        return 1
    if args.keep_generations:
        index.durability.keep_generations = args.keep_generations
    t0 = time.perf_counter()
    manifest = index.checkpoint()
    dt = time.perf_counter() - t0
    print(f"checkpointed {args.path} to generation "
          f"{manifest['generation']} in {dt:.2f}s "
          f"({len(manifest['segments'])} shard segments, WAL pruned)")
    index.close()
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .bench.methods import TABLE2_METHODS
    from .datasets.registry import TABLE2_DATASETS

    datasets = tuple(args.datasets) if args.datasets else None
    methods = tuple(args.methods) if args.methods else None
    rows = experiments.table2(
        datasets=datasets, methods=methods,
        n=args.n, num_queries=args.queries, seed=args.seed,
    )
    cells: dict[str, dict[str, float]] = {}
    for m in rows:
        cells.setdefault(m.dataset, {})[m.method] = m.ns_per_lookup
    cols = methods or TABLE2_METHODS
    ds_order = [d for d in (datasets or TABLE2_DATASETS) if d in cells]
    table = [[ds] + [cells[ds].get(c, float("nan")) for c in cols]
             for ds in ds_order]
    print(format_table(["dataset"] + list(cols), table,
                       title="Table 2 (simulated ns per lookup)"))
    bad = [m for m in rows if m.available and not m.correct]
    if bad:
        print(f"WARNING: {len(bad)} incorrect cells!", file=sys.stderr)
        return 1
    return 0


_FIG_DRIVERS = {
    "2": experiments.fig2_local_search,
    "3": experiments.fig3_distributions,
    "6": experiments.fig6_error_correction,
    "7": experiments.fig7_build_times,
    "9": experiments.fig9_layer_size,
}


def _cmd_fig(args: argparse.Namespace) -> int:
    driver = _FIG_DRIVERS[args.number]
    result = driver(n=args.n, seed=args.seed)
    if isinstance(result, dict):
        for key, value in result.items():
            print(f"{key}: {value}")
        return 0
    if result and isinstance(result[0], dict):
        headers = list(result[0].keys())
        print(format_table(headers,
                           [[r.get(h) for h in headers] for r in result],
                           title=f"Figure {args.number}", float_digits=2))
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .datasets import load
    from .datasets.registry import TABLE2_DATASETS
    from .datasets.stats import (
        burstiness,
        congestion_profile,
        duplication_ratio,
        gap_tail_index,
    )

    n = args.n or 200_000
    rows = []
    for name in TABLE2_DATASETS:
        keys = load(name, n, args.seed or 42)
        profile = congestion_profile(keys)
        rows.append([
            name,
            duplication_ratio(keys),
            gap_tail_index(keys),
            profile.max,
            profile.eq8_error,
            burstiness(keys, buckets=min(1024, n // 4)),
        ])
    print(format_table(
        ["dataset", "dup ratio", "gap tail idx", "max C_k", "eq8 err",
         "burstiness"],
        rows, title=f"dataset diagnostics (n={n:,})", float_digits=3,
    ))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .core.cost_model import measure_latency_curve
    from .core.records import SortedData
    from .core.tuner import tune
    from .datasets import load
    from .hardware.machine import MachineSpec
    from .models.interpolation import InterpolationModel

    n = args.n or 500_000
    keys = load(args.dataset, n, args.seed or 42)
    data = SortedData(keys, name=args.dataset)
    machine = MachineSpec.paper().scaled_for(n, data.record_bytes)
    curve = measure_latency_curve(keys, machine, record_bytes=data.record_bytes)
    index, report = tune(data, InterpolationModel(keys), curve=curve)
    print(f"dataset:        {args.dataset} (n={n:,})")
    print(f"error before:   {report.error_before:,.1f} records")
    print(f"error after:    {report.error_after:,.1f} records")
    print(f"eq9 (with):     {report.predicted_ns_with:,.1f} ns")
    print(f"eq10 (without): {report.predicted_ns_without:,.1f} ns")
    print(f"decision:       {'ENABLE' if report.layer_enabled else 'SKIP'} "
          f"the Shift-Table layer")
    print(f"index:          {index.name}, {index.size_bytes() / 1e6:.2f} MB")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .core.corrected_index import CorrectedIndex
    from .core.range_query import RangeQueryEngine
    from .core.records import SortedData
    from .core.shift_table import ShiftTable
    from .datasets import load
    from .models.interpolation import InterpolationModel

    n = args.n or 200_000
    keys = load(args.dataset, n, args.seed or 42)
    data = SortedData(keys, name=args.dataset)
    model = InterpolationModel(keys)
    engine = RangeQueryEngine(
        CorrectedIndex(data, model, ShiftTable.build(keys, model))
    )
    q = int(args.query) if args.query is not None else int(
        keys[np.random.default_rng(0).integers(0, n)]
    )
    trace = engine.explain(keys.dtype.type(q))
    print(f"query:           {trace.query}")
    print(f"model output:    N*F(q) = {trace.prediction_float:,.2f} "
          f"-> predicted index {trace.predicted_index:,}")
    print(f"partition:       {trace.partition:,}")
    print(f"window:          [{trace.window_start:,}, "
          f"{trace.window_start + trace.window_width:,}] "
          f"({trace.window_width + 1} records)")
    print(f"result:          position {trace.result:,} "
          f"({'exact match' if trace.result_is_exact_match else 'lower bound'})")
    return 0


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=8,
                        help="number of range shards (default 8)")
    parser.add_argument("--model", default="interpolation",
                        help="shard-local model factory name")
    parser.add_argument("--layer", default="R", choices=["R", "S", "none"],
                        help="correction layer mode per shard")
    parser.add_argument("--workers", type=int, default=1,
                        help="thread-pool size for cross-shard execution")


def _cmd_engine_bench(args: argparse.Namespace) -> int:
    from .bench.engine_throughput import (
        run_engine_bench_json,
        run_engine_throughput,
    )

    common = dict(
        n=args.n or 1_000_000,
        num_queries=args.queries or 100_000,
        num_shards=args.shards,
        dataset=args.dataset,
        model=args.model,
        layer=None if args.layer == "none" else args.layer,
        seed=args.seed if args.seed is not None else 42,
        workers=args.workers,
        save_path=args.save,
        load_path=args.load,
    )
    if args.json_path is not None:
        payload = run_engine_bench_json(
            args.json_path, kernels=args.kernels, **common
        )
        run_rows = [
            (run["kernels"], run["results"])
            for run in payload["runs"]
            if run["available"]
        ]
    else:
        run_rows = [(args.kernels,
                     run_engine_throughput(kernels=args.kernels, **common))]
    for kernels, rows in run_rows:
        table = [
            [r["mode"], r["kernels"], r["queries"], r["qps"],
             r["ns_per_lookup"], r["p50_ns_per_lookup"],
             r["p99_ns_per_lookup"], r["speedup_vs_scalar"]]
            for r in rows
        ]
        print(format_table(
            ["mode", "kernels", "queries", "qps", "ns/lookup", "p50 ns",
             "p99 ns", "speedup vs scalar"],
            table,
            title=(f"engine throughput — {args.dataset} "
                   f"[kernels={kernels}]"),
            float_digits=1,
        ))
    if args.json_path is not None:
        print(f"wrote {args.json_path}")
    return 0


def _cmd_engine_update_bench(args: argparse.Namespace) -> int:
    from .bench.engine_updates import (
        DEFAULT_WRITE_FRACTIONS,
        run_engine_updates,
    )

    fractions = (
        tuple(args.write_fractions) if args.write_fractions
        else DEFAULT_WRITE_FRACTIONS
    )
    rows = run_engine_updates(
        n=args.n or 100_000,
        num_shards=args.shards,
        dataset=args.dataset,
        model=args.model,
        layer=None if args.layer == "none" else args.layer,
        backends=tuple(args.backends),
        write_fractions=fractions,
        ops=args.queries or 50_000,
        seed=args.seed if args.seed is not None else 42,
        workers=args.workers,
    )
    table = [
        [r["backend"], r["write_fraction"], r["inserts"],
         r["inserts_per_sec"], r["read_ns_per_lookup"], r["read_qps"],
         r["final_shards"], r["pending_updates"], r["exact"]]
        for r in rows
    ]
    print(format_table(
        ["backend", "write frac", "inserts", "inserts/s", "read ns/op",
         "read qps", "shards", "pending", "exact"],
        table, title=f"engine updates — {args.dataset}", float_digits=2,
    ))
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .bench.serve_throughput import run_serve_bench

    if args.smoke:
        args.n = min(args.n or 40_000, 40_000)
        args.clients = min(args.clients, 16)
        args.requests_per_client = min(args.requests_per_client, 64)
        args.rounds = min(args.rounds, 6)

    rows = run_serve_bench(
        n=args.n or 200_000,
        dataset=args.dataset,
        num_shards=args.shards,
        model=args.model,
        layer=None if args.layer == "none" else args.layer,
        backend=args.backend,
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        rounds=args.rounds,
        reads_per_round=args.reads_per_round,
        writes_per_round=args.writes_per_round,
        point_cache=args.point_cache,
        range_cache=args.range_cache,
        workers=args.workers,
        seed=args.seed if args.seed is not None else 42,
    )
    table = [
        [r["mode"], r["requests"], r["qps"], r["p50_us"], r["p99_us"],
         r["mean_batch"], r["cache_hit_rate"], r["speedup_vs_unbatched"],
         r["mismatches"]]
        for r in rows
    ]
    print(format_table(
        ["mode", "requests", "qps", "p50 us", "p99 us", "mean batch",
         "hit rate", "speedup", "mismatches"],
        table, title=f"serving throughput — {args.dataset}", float_digits=2,
    ))
    batched = next(r for r in rows if r["mode"] == "micro-batched")
    print(f"micro-batching speedup vs unbatched closed loop: "
          f"{batched['speedup_vs_unbatched']:.1f}x "
          f"(every phase oracle-verified, zero mismatches)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .api import Index

    if args.load:
        index = Index.open(args.load)
        name = str(args.load)
    else:
        from .datasets import load

        n = args.n or 200_000
        keys = load(args.dataset, n, args.seed or 42)
        index = Index.build(keys, _facade_config(args), name=args.dataset)
        name = args.dataset

    async def run() -> int:
        net = index.serve(addr=(args.host, args.port),
                          net_workers=args.net_workers)
        await net.start()
        host, port = net.address
        print(f"serving {name} (n={len(index.engine):,}) on {host}:{port} "
              f"with {args.net_workers} read worker(s)", flush=True)
        try:
            if args.probe:
                from .net import Client

                async with Client(host, port) as client:
                    assert await client.ping() is True
                    q = int(index.engine.keys[0])
                    print(f"probe: lookup({q}) -> {await client.lookup(q)}")
                return 0
            print("Ctrl-C to stop", flush=True)
            await net.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass  # pragma: no cover - interactive stop
        finally:
            await net.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    import asyncio

    from .api import Index

    index = Index.open(args.path)
    if index.durability is None:
        print(f"{args.path} is a plain snapshot, not a durable directory",
              file=sys.stderr)
        index.close()
        return 1
    if args.keep_generations:
        index.durability.keep_generations = args.keep_generations

    async def run() -> int:
        from .replica import ReplicationServer, follow

        async with ReplicationServer(
                index.durability, args.host, args.port) as server:
            host, port = server.address
            print(f"replicating {args.path} (n={len(index.engine):,}, "
                  f"generation {index.durability.generation}) "
                  f"on {host}:{port}", flush=True)
            if args.probe:
                import tempfile

                with tempfile.TemporaryDirectory() as tmp:
                    replica = await follow((host, port), tmp)
                    await replica.wait_caught_up(timeout=60)
                    print(f"probe: follower synced {len(replica):,} "
                          f"key(s), lag {replica.lag().lsns} LSN(s)")
                    await replica.close()
                return 0
            print("Ctrl-C to stop", flush=True)
            await asyncio.Event().wait()  # pragma: no cover - interactive
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0
    finally:
        index.close()


def _cmd_follow(args: argparse.Namespace) -> int:
    import asyncio

    async def run() -> int:
        from .replica import follow

        replica = await follow((args.host, args.port), args.dir,
                               sync=args.durability)
        print(f"following {args.host}:{args.port} into {args.dir} "
              f"({len(replica):,} key(s) after boot, "
              f"{replica.full_syncs} full sync(s), "
              f"{replica.bytes_synced:,} byte(s) shipped)", flush=True)
        try:
            if args.probe:
                head = await replica.wait_caught_up(timeout=60)
                d = replica.describe()
                print(f"probe: caught up to LSN {head} "
                      f"(streamed {d['streamed_records']} record(s), "
                      f"lag {d['lag_lsn']})")
                return 0
            print("Ctrl-C to stop", flush=True)
            while True:  # pragma: no cover - interactive loop
                await asyncio.sleep(5.0)
                lag = replica.lag()
                print(f"applied_lsn={replica.applied_lsn} "
                      f"lag={lag.lsns} lsn / {lag.seconds:.1f}s",
                      flush=True)
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass  # pragma: no cover - interactive stop
        finally:
            await replica.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0


def _cmd_client_bench(args: argparse.Namespace) -> int:
    from .bench.serve_net import run_serve_net_bench

    if args.smoke:
        args.n = min(args.n or 20_000, 20_000)
        args.clients = min(args.clients, 4)
        args.rounds = min(args.rounds, 2)
        args.net_workers = sorted(
            set(w for w in args.net_workers if w <= 2) | {0, 2})

    payload = run_serve_net_bench(
        n=args.n or 200_000,
        dataset=args.dataset,
        num_shards=args.shards,
        model=args.model,
        layer=None if args.layer == "none" else args.layer,
        backend=args.backend,
        clients=args.clients,
        rounds=args.rounds,
        worker_counts=tuple(args.net_workers),
        scenarios=tuple(args.scenarios) if args.scenarios else None,
        transports=tuple(args.transports),
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        seed=args.seed if args.seed is not None else 42,
        enforce_scaling=args.enforce_scaling,
    )
    table = [
        [r["transport"],
         "-" if r["workers"] is None else r["workers"],
         r["scenario"], r["ops"], r["qps"], r["p50_us"], r["p99_us"],
         r["cache_hit_rate"], r["mismatches"]]
        for r in payload["rows"]
    ]
    print(format_table(
        ["transport", "workers", "scenario", "ops", "qps", "p50 us",
         "p99 us", "hit rate", "mismatches"],
        table,
        title=(f"network serving — {args.dataset}, "
               f"n={payload['n']:,}, {payload['cpu_count']} core(s)"),
        float_digits=2,
    ))
    scaling = payload["scaling"]
    if scaling["ratio"] is not None:
        state = ("enforced" if scaling["enforced"]
                 else f"not enforced ({scaling.get('skipped')})")
        print(f"read-heavy tcp scaling: {scaling['workers']} workers = "
              f"{scaling['ratio']:.2f}x workers=0  [{state}]")
    print("every response oracle-verified: zero mismatches")
    if args.json_path:
        import json
        from pathlib import Path

        Path(args.json_path).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json_path}")
    return 0


def _cmd_autotune_bench(args: argparse.Namespace) -> int:
    from .bench.autotune import SMOKE_LIMITS, render_report, run_autotune_bench

    n = args.n or 200_000
    num_queries = args.queries or 100_000
    repeats = args.repeats
    if args.smoke:
        n = min(n, SMOKE_LIMITS["n"])
        num_queries = min(num_queries, SMOKE_LIMITS["num_queries"])
        repeats = min(repeats, SMOKE_LIMITS["repeats"])

    out = run_autotune_bench(
        n=n,
        num_shards=args.shards,
        num_queries=num_queries,
        repeats=repeats,
        seed=args.seed if args.seed is not None else 42,
        workers=args.workers,
        min_ratio=None if args.no_enforce else args.min_ratio,
    )
    print(render_report(out))
    return 0


def _cmd_engine_plan(args: argparse.Namespace) -> int:
    from .datasets import load
    from .engine import BatchExecutor, ShardedIndex

    n = args.n or 200_000
    num_queries = args.queries or 1024
    seed = args.seed if args.seed is not None else 42
    keys = load(args.dataset, n, seed)
    index = ShardedIndex.build(
        keys, args.shards, model=args.model,
        layer=None if args.layer == "none" else args.layer,
        name=args.dataset, backend=args.backend,
    )
    executor = BatchExecutor(index, workers=args.workers)
    rng = np.random.default_rng(seed)
    queries = rng.choice(keys, num_queries)
    info = index.build_info()
    print(", ".join(f"{k}={v}" for k, v in info.items()))
    print(executor.explain(queries))
    return 0


def _cmd_lint(args) -> int:
    from .analysis import all_rules, lint_paths

    def _codes(raw: str | None) -> list[str] | None:
        if raw is None:
            return None
        return [c.strip() for c in raw.split(",") if c.strip()]

    try:
        report = lint_paths(args.paths, select=_codes(args.select),
                            ignore=_codes(args.ignore))
    except (FileNotFoundError, OSError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
        return 0 if report.clean else 1
    for finding in report.findings:
        print(finding.render())
    if args.statistics:
        rules = all_rules()
        rows = [(code, count,
                 rules[code].name if code in rules
                 else {"RPR001": "syntax-error",
                       "RPR002": "noqa-missing-reason",
                       "RPR003": "unused-noqa"}.get(code, ""))
                for code, count in report.statistics().items()]
        print(format_table(["code", "findings", "rule"], rows,
                           title="findings by rule"))
    status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
    print(f"repro lint: {report.files_scanned} file(s) scanned, {status}")
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shift-Table reproduction (EDBT 2021) command line",
    )
    parser.add_argument("--version", action="version",
                        version=_version_string())
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("version",
                       help="print library and on-disk format versions")
    p.set_defaults(fn=_cmd_version)

    p = sub.add_parser(
        "build",
        help="build an index through the repro.Index facade "
             "(optionally --save it)",
    )
    p.add_argument("--dataset", default="uden64",
                   help="dataset name (see `repro datasets`)")
    p.add_argument("--preset", default=None,
                   choices=["read_heavy", "mixed", "auto"],
                   help="IndexConfig preset (overrides --model/--layer/"
                        "--backend)")
    p.add_argument("--backend", default="static",
                   choices=["static", "gapped", "fenwick"],
                   help="shard storage backend")
    p.add_argument("--auto-tune", action="store_true",
                   help="run the §3.9 cost model per shard at build time")
    p.add_argument("--save", default=None, metavar="PATH",
                   help="persist the built index to PATH (.npz)")
    p.add_argument("--durable-dir", default=None, metavar="DIR",
                   help="initialise a WAL + checkpoint directory at DIR "
                        "(crash-safe writes; reopen with `recover`)")
    p.add_argument("--durability", default=None,
                   choices=["always", "group", "async"],
                   help="WAL fsync policy for --durable-dir "
                        "(default group)")
    _add_engine_options(p)
    _add_common(p)
    p.set_defaults(fn=_cmd_build)

    p = sub.add_parser(
        "inspect",
        help="reopen a saved index (repro.open) and report its "
             "config/shards",
    )
    p.add_argument("path", help="file written by `build --save` or "
                                "Index.save(), or a durable directory")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser(
        "recover",
        help="crash-recover a durable directory (checkpoint + WAL "
             "replay) and report the result",
    )
    p.add_argument("path", help="directory written by `build "
                                "--durable-dir`")
    p.add_argument("--checkpoint", action="store_true",
                   help="write a fresh checkpoint after recovery "
                        "(prunes the replayed WAL)")
    p.set_defaults(fn=_cmd_recover)

    p = sub.add_parser(
        "checkpoint",
        help="run one incremental checkpoint pass over a durable "
             "directory and prune its WAL",
    )
    p.add_argument("path", help="directory written by `build "
                                "--durable-dir`")
    p.add_argument("--keep-generations", type=int, default=0,
                   help="WAL generations to retain past the checkpoint "
                        "(a resume window for disconnected replicas)")
    p.set_defaults(fn=_cmd_checkpoint)

    p = sub.add_parser(
        "replicate",
        help="serve a durable directory to read replicas: checkpoint "
             "shipping + WAL-tail streaming (see repro.replica)",
    )
    p.add_argument("path", help="durable directory to replicate "
                                "(written by `build --durable-dir`)")
    p.add_argument("--host", default="127.0.0.1",
                   help="address to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7422,
                   help="TCP port to bind (0 picks an ephemeral port)")
    p.add_argument("--keep-generations", type=int, default=1,
                   help="WAL generations to retain past each checkpoint "
                        "so followers can resume (default 1)")
    p.add_argument("--probe", action="store_true",
                   help="after binding, full-sync a throwaway follower "
                        "against the endpoint and exit (smoke mode)")
    p.set_defaults(fn=_cmd_replicate)

    p = sub.add_parser(
        "follow",
        help="run a read replica of a `replicate` endpoint into a "
             "local directory (full sync, then WAL-tail streaming)",
    )
    p.add_argument("host", help="leader replication host")
    p.add_argument("port", type=int, help="leader replication port")
    p.add_argument("dir", help="local replica directory (reused across "
                               "runs for incremental catch-up)")
    p.add_argument("--durability", default="async",
                   choices=["always", "group", "async"],
                   help="local WAL fsync policy (default async: replica "
                        "durability comes from re-syncing)")
    p.add_argument("--probe", action="store_true",
                   help="catch up to the leader's head, report, and exit "
                        "(smoke mode)")
    p.set_defaults(fn=_cmd_follow)

    p = sub.add_parser("table2", help="run Table 2 cells")
    p.add_argument("--datasets", nargs="*", default=None,
                   help="dataset names to run (default: all)")
    p.add_argument("--methods", nargs="*", default=None,
                   help="method names to run (default: all)")
    _add_common(p)
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser("fig", help="run a figure driver")
    p.add_argument("number", choices=sorted(_FIG_DRIVERS),
                   help="figure number to reproduce")
    _add_common(p)
    p.set_defaults(fn=_cmd_fig)

    p = sub.add_parser("datasets", help="dataset diagnostics")
    _add_common(p)
    p.set_defaults(fn=_cmd_datasets)

    p = sub.add_parser("tune", help="run the §3.9 advisor")
    p.add_argument("dataset", help="dataset name (see `repro datasets`)")
    _add_common(p)
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("explain", help="trace one lookup")
    p.add_argument("dataset", help="dataset name (see `repro datasets`)")
    p.add_argument("--query", default=None,
                   help="key to trace (default: a sampled existing key)")
    _add_common(p)
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser("engine-bench",
                       help="batch-engine throughput: scalar vs vectorized vs sharded")
    p.add_argument("--dataset", default="uden64",
                   help="dataset name (see `repro datasets`)")
    p.add_argument("--save", default=None, metavar="PATH",
                   help="persist the sharded index after the verified run")
    p.add_argument("--load", default=None, metavar="PATH",
                   help="reopen a saved index as the sharded contender "
                        "(ignores --dataset/--n/--shards)")
    p.add_argument("--kernels", default="auto",
                   choices=["auto", "numba", "numpy"],
                   help="batch-pipeline backend (default auto: compiled "
                        "kernels when numba is importable)")
    p.add_argument("--json", default=None, metavar="PATH", dest="json_path",
                   help="also write the results as a BENCH_engine.json "
                        "artifact (sweeps both kernel backends under "
                        "--kernels=auto)")
    _add_engine_options(p)
    _add_common(p)
    p.set_defaults(fn=_cmd_engine_bench)

    p = sub.add_parser("engine-plan",
                       help="EXPLAIN a query batch against a sharded index")
    p.add_argument("--dataset", default="uden64",
                   help="dataset name (see `repro datasets`)")
    p.add_argument("--backend", default="static",
                   choices=["static", "gapped", "fenwick"],
                   help="shard storage backend")
    _add_engine_options(p)
    _add_common(p)
    p.set_defaults(fn=_cmd_engine_plan)

    p = sub.add_parser(
        "serve-bench",
        help="async serving throughput: micro-batched + cached vs "
             "one-request-at-a-time, oracle-verified",
    )
    p.add_argument("--dataset", default="uden64",
                   help="dataset name (see `repro datasets`)")
    p.add_argument("--backend", default="gapped",
                   choices=["static", "gapped", "fenwick"],
                   help="shard storage backend (default gapped: cheap writes)")
    p.add_argument("--clients", type=int, default=64,
                   help="concurrent closed-loop clients (default 64)")
    p.add_argument("--requests-per-client", type=int, default=256,
                   help="requests per client in the read phases")
    p.add_argument("--max-batch", type=int, default=256,
                   help="micro-batch size bound")
    p.add_argument("--max-wait-us", type=float, default=200.0,
                   help="micro-batch window in microseconds")
    p.add_argument("--rounds", type=int, default=50,
                   help="write+read rounds in the mixed phase")
    p.add_argument("--reads-per-round", type=int, default=32,
                   help="reads per client per mixed round")
    p.add_argument("--writes-per-round", type=int, default=16,
                   help="server-applied inserts+deletes per mixed round")
    p.add_argument("--point-cache", type=int, default=65536,
                   help="point-result LRU capacity (0 disables)")
    p.add_argument("--range-cache", type=int, default=4096,
                   help="range-result LRU capacity (0 disables)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny CI configuration (fast, still verified)")
    _add_engine_options(p)
    _add_common(p)
    # serving batches are small (~clients per flush); on one core fewer
    # shards means fewer fixed-cost pipeline passes per dispatch
    p.set_defaults(fn=_cmd_serve_bench, shards=2)

    p = sub.add_parser(
        "serve",
        help="run the TCP serving front end on a built or reopened "
             "index (framed binary protocol; see repro.net)",
    )
    p.add_argument("--dataset", default="uden64",
                   help="dataset name to build and serve "
                        "(see `repro datasets`)")
    p.add_argument("--load", default=None, metavar="PATH",
                   help="serve a saved index or durable directory "
                        "instead of building --dataset")
    p.add_argument("--preset", default=None,
                   choices=["read_heavy", "mixed", "auto"],
                   help="IndexConfig preset (overrides --model/--layer/"
                        "--backend)")
    p.add_argument("--backend", default="gapped",
                   choices=["static", "gapped", "fenwick"],
                   help="shard storage backend (default gapped: "
                        "cheap writes)")
    p.add_argument("--auto-tune", action="store_true",
                   help="run the §3.9 cost model per shard at build time")
    p.add_argument("--host", default="127.0.0.1",
                   help="address to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7421,
                   help="TCP port to bind (0 picks an ephemeral port)")
    p.add_argument("--net-workers", type=int, default=0,
                   help="shared-memory read-worker processes "
                        "(0 = serve reads in-process)")
    p.add_argument("--probe", action="store_true",
                   help="after binding, run one TCP client round trip "
                        "against the server and exit (smoke mode)")
    _add_engine_options(p)
    _add_common(p)
    p.set_defaults(fn=_cmd_serve, shards=2)

    from .bench.serve_net import SCENARIOS

    p = sub.add_parser(
        "client-bench",
        help="network serving load matrix: (transport x workers x "
             "scenario), every response oracle-verified",
    )
    p.add_argument("--dataset", default="uden64",
                   help="dataset name (see `repro datasets`)")
    p.add_argument("--backend", default="gapped",
                   choices=["static", "gapped", "fenwick"],
                   help="shard storage backend (default gapped: "
                        "cheap writes)")
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent client connections per cell")
    p.add_argument("--rounds", type=int, default=8,
                   help="write+read rounds per cell")
    p.add_argument("--net-workers", type=int, nargs="*", default=[0, 2, 4],
                   help="read-worker counts for the tcp transport")
    p.add_argument("--scenarios", nargs="*", default=None,
                   choices=sorted(SCENARIOS),
                   help="scenario registry entries (default: all)")
    p.add_argument("--transports", nargs="*", default=["inproc", "tcp"],
                   choices=["inproc", "tcp"],
                   help="transports to run (default: both)")
    p.add_argument("--max-batch", type=int, default=256,
                   help="micro-batch size bound")
    p.add_argument("--max-wait-us", type=float, default=200.0,
                   help="micro-batch window in microseconds")
    p.add_argument("--json", default=None, metavar="PATH",
                   dest="json_path",
                   help="also write the payload as a BENCH_serve.json "
                        "artifact")
    p.add_argument("--enforce-scaling", action="store_true",
                   help="assert the multi-worker read-heavy QPS ratio "
                        "(auto-skipped on too few cores, recorded "
                        "either way)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny CI configuration (fast, still verified)")
    _add_engine_options(p)
    _add_common(p)
    p.set_defaults(fn=_cmd_client_bench, shards=2)

    p = sub.add_parser(
        "autotune-bench",
        help="per-shard §3.9 auto-tuning vs fixed global configs on a "
             "skewed multi-distribution dataset, oracle-verified",
    )
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats per config (best-of)")
    p.add_argument("--min-ratio", type=float, default=0.8,
                   help="required auto/best-fixed throughput ratio "
                        "(noise guard; the driver raises below it)")
    p.add_argument("--no-enforce", action="store_true",
                   help="report the throughput ratio without enforcing it")
    p.add_argument("--smoke", action="store_true",
                   help="tiny CI configuration (fast, still verified)")
    # no --model/--layer here: the whole point is that the tuner picks
    # them per shard; the fixed-config sweep is built in
    p.add_argument("--shards", type=int, default=9,
                   help="number of range shards (default 9: three per "
                        "distribution segment)")
    p.add_argument("--workers", type=int, default=1,
                   help="thread-pool size for cross-shard execution")
    _add_common(p)
    p.set_defaults(fn=_cmd_autotune_bench)

    p = sub.add_parser(
        "lint",
        help="run the project linter (RPR dtype/lock/durability/async "
             "rules) over source files",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="output format; json follows the stable schema "
                        "documented in docs/ARCHITECTURE.md")
    p.add_argument("--select", default=None, metavar="CODES",
                   help="comma-separated rule code prefixes to enable "
                        "(e.g. RPR1,RPR202); default all")
    p.add_argument("--ignore", default=None, metavar="CODES",
                   help="comma-separated rule code prefixes to disable")
    p.add_argument("--statistics", action="store_true",
                   help="print a findings-per-rule summary table")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "engine-update-bench",
        help="mixed read/write workload: insert throughput + read latency "
             "per shard backend and write fraction",
    )
    p.add_argument("--dataset", default="uden64",
                   help="dataset name (see `repro datasets`)")
    p.add_argument("--backends", nargs="*",
                   default=["static", "gapped", "fenwick"],
                   help="shard backends to sweep")
    p.add_argument("--write-fractions", nargs="*", type=float, default=None,
                   help="write fractions to sweep (default 0/0.01/0.1/0.3)")
    _add_engine_options(p)
    _add_common(p)
    p.set_defaults(fn=_cmd_engine_update_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
