"""Quickstart: build a Shift-Table-corrected learned index in five lines.

The paper's headline configuration: a *dummy* min/max interpolation model
(two parameters, no training) plus the Shift-Table correction layer built
in one pass over the data (§4.1).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CorrectedIndex, InterpolationModel, ShiftTable, SortedData
from repro.datasets import load


def main() -> None:
    # 1. a sorted key array — here, the Facebook-ID surrogate dataset
    keys = load("face64", 500_000)
    data = SortedData(keys, name="face64")

    # 2. the dummy model + the one-pass correction layer
    model = InterpolationModel(keys)
    layer = ShiftTable.build(keys, model)
    index = CorrectedIndex(data, model, layer)

    print(f"indexed {len(data):,} keys")
    print(f"model: {model.name} ({model.size_bytes()} bytes)")
    print(
        f"layer: {layer.num_partitions:,} partitions x {layer.entry_bytes} B "
        f"= {layer.size_bytes() / 1e6:.1f} MB, "
        f"mean search window {layer.expected_window():.1f} records"
    )

    # 3. lower-bound lookups: position of the first key >= q
    rng = np.random.default_rng(0)
    queries = rng.choice(keys, 10_000)
    positions = index.lookup_batch(queries)
    expected = np.searchsorted(keys, queries)
    assert np.array_equal(positions, expected)
    print(f"verified {len(queries):,} lookups against np.searchsorted")

    # 4. range queries: scan from lower_bound(lo) to lower_bound(hi)
    lo, hi = np.sort(rng.choice(keys, 2))
    first, last = index.lookup(lo), index.lookup(hi)
    print(f"range [{lo}, {hi}) holds {last - first:,} records "
          f"(positions {first:,} .. {last:,})")

    # 5. how much the layer helped: error before vs after correction
    pred = model.predict_pos_batch(keys)
    raw = np.clip(pred.astype(np.int64), 0, len(keys) - 1)
    truth = np.searchsorted(keys, keys, side="left")
    before = float(np.abs(truth - raw).mean())
    print(
        f"mean |prediction error|: {before:,.0f} records before correction, "
        f"window/2 = {layer.expected_window() / 2:.1f} after"
    )


if __name__ == "__main__":
    main()
