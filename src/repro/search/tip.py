"""Three-point interpolation search (the paper's ``TIP`` baseline).

Van Sandt, Chronis and Patel ("Efficiently Searching In-Memory Sorted
Arrays: Revenge of the Interpolation Search?", SIGMOD 2019) observe that
linear interpolation fails on curved CDFs and propose probing with a
*three-point* interpolation instead: fit the hyperbola

    key(p) = alpha + beta / (p + gamma)

through three known (position, key) points and invert it at the query key.
The hyperbola has one more degree of freedom than a straight line, so it
tracks convex/concave CDF regions far better, while degenerating to linear
interpolation when the three points are collinear.

This implementation maintains a shrinking bracket with the probe as the
middle point, guards every division, and falls back to binary search when
the geometry degenerates or a probe budget is exhausted.
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, Region
from .binary import lower_bound

#: Instructions charged per three-point probe (several FP divisions).
INSTR_PER_PROBE = 25

#: Bracket size below which we finish with binary search.
_FINISH_THRESHOLD = 16

DEFAULT_MAX_PROBES = 64


def _three_point_probe(
    p0: int, k0: float, p1: int, k1: float, p2: int, k2: float, q: float
) -> int | None:
    """Invert the hyperbola through three (pos, key) points at ``q``.

    Returns the estimated position, or None when the configuration is
    degenerate (collinear points handled by the caller's linear fallback).
    """
    d01 = k0 - k1
    d12 = k1 - k2
    if d12 == 0.0 or d01 == 0.0:
        return None
    r = d01 / d12
    denom = r * (p2 - p1) - (p1 - p0)
    if denom == 0.0:
        return None
    gamma = ((p1 - p0) * p2 - r * (p2 - p1) * p0) / denom
    g0 = p0 + gamma
    g1 = p1 + gamma
    if g0 == 0.0 or g1 == 0.0:
        return None
    beta = d01 * g0 * g1 / (p1 - p0)
    alpha = k0 - beta / g0
    if q == alpha:
        return None
    est = beta / (q - alpha) - gamma  # repro: noqa[RPR102] — TIP estimate is float by design; bounded binary search finishes
    if not np.isfinite(est):
        return None
    return int(est)


def tip_lower_bound(
    data: np.ndarray,
    region: Region,
    tracker: NullTracker = NULL_TRACKER,
    q: int | float = 0,
    max_probes: int = DEFAULT_MAX_PROBES,
) -> int:
    """Global lower bound of ``q`` via three-point interpolation search."""
    n = len(data)
    if n == 0:
        return 0
    lo, hi = 0, n - 1
    tracker.touch(region, lo)
    tracker.touch(region, hi)
    tracker.instr(INSTR_PER_PROBE)
    lo_val = float(data[lo])
    hi_val = float(data[hi])
    if q <= lo_val:
        return 0
    if q > hi_val:
        return n
    # middle sample completes the initial three points
    mid = (lo + hi) >> 1
    tracker.touch(region, mid)
    tracker.instr(INSTR_PER_PROBE)
    mid_val = float(data[mid])
    qf = float(q)
    probes = 0
    while hi - lo > _FINISH_THRESHOLD and probes < max_probes:
        est = _three_point_probe(lo, lo_val, mid, mid_val, hi, hi_val, qf)
        if est is None:
            # degenerate: linear interpolation between the bracket ends
            span = hi_val - lo_val
            if span <= 0:
                break
            est = lo + int((qf - lo_val) / span * (hi - lo))
        est = min(max(est, lo + 1), hi - 1)
        if est == mid:
            # no progress from interpolation: bisect the larger half
            est = (lo + mid) >> 1 if (mid - lo) > (hi - mid) else (mid + hi) >> 1
            est = min(max(est, lo + 1), hi - 1)
            if est == mid:
                break
        tracker.touch(region, est)
        tracker.instr(INSTR_PER_PROBE)
        probes += 1
        est_val = float(data[est])
        if data[est] < q:
            lo, lo_val = est, est_val
        else:
            hi, hi_val = est, est_val
        # keep the retired probe as the middle point if it is inside
        if not (lo < mid < hi):
            mid = (lo + hi) >> 1
            if lo < mid < hi:
                tracker.touch(region, mid)
                tracker.instr(INSTR_PER_PROBE)
                mid_val = float(data[mid])
        else:
            mid_val = float(data[mid])
    # invariant: data[lo] < q <= data[hi]
    return lower_bound(data, region, tracker, q, lo + 1, hi + 1)
