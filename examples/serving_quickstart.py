"""Async serving quickstart: micro-batched, cached lookups under writes.

Spins up an :class:`IndexServer` over a gapped-backend
:class:`ShardedIndex`, fires a crowd of concurrent asyncio clients at
it (point lookups and range-cardinality queries), applies a few writes
— which drain the batch queue and invalidate exactly the stale cache
entries — and prints the server's telemetry.  Every answer is checked
against ``np.searchsorted`` on the live key array.

Run:  PYTHONPATH=src python examples/serving_quickstart.py
"""

import asyncio

import numpy as np

from repro.datasets import load
from repro.engine import ShardedIndex
from repro.serve import IndexServer


async def client(server, queries, expected) -> int:
    """One closed-loop client; returns how many answers disagreed."""
    bad = 0
    for q, want in zip(queries, expected):
        if await server.lookup(q) != want:
            bad += 1
    return bad


async def main() -> None:
    # 1. build the index and put a server in front of it
    keys = load("uden64", 100_000, seed=7)
    index = ShardedIndex.build(keys, num_shards=4, backend="gapped")
    server = IndexServer(index, max_batch=256, max_wait_us=200)
    rng = np.random.default_rng(7)

    async with server:
        # 2. 32 concurrent clients: their requests coalesce into batches
        streams = [rng.choice(keys, 64) for _ in range(32)]
        mismatches = sum(await asyncio.gather(*[
            client(server, qs, np.searchsorted(keys, qs, side="left"))
            for qs in streams
        ]))
        print(f"concurrent read phase: {32 * 64} requests, "
              f"{mismatches} mismatches")

        # 3. a cached range answer survives writes to *other* shards ...
        lo, hi = keys[100], keys[5_000]
        count = await server.range(lo, hi)
        await server.insert(keys[-2] + 1)  # lands in the last shard
        assert await server.range(lo, hi) == count  # served from cache
        # ... but a write inside the range invalidates and recomputes
        await server.insert(lo + 1)
        assert await server.range(lo, hi) == count + 1
        print("write coherence: cached range survived a far write, "
              "refreshed after a near one")

        # 4. telemetry
        print("\nserver stats:")
        print(server.stats.describe())


if __name__ == "__main__":
    asyncio.run(main())
