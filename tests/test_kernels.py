"""Compiled-kernel registry, dispatch, dtype-guard and parity suite (PR 8).

The compiled path's contract is *bit-identity*: for every model family ×
correction layer × backend, the numba kernels (run here interpreted via
their uncompiled python source when numba is absent), the numpy fallback
mirrors and the scalar Algorithm-1 loop must return element-wise
identical positions — including the §3.8 edge-validation fallbacks on
adversarial windows.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.compact import CompactShiftTable
from repro.core.corrected_index import CorrectedIndex
from repro.core.records import SortedData, ensure_kernel_query_dtype
from repro.core.shift_table import ShiftTable
from repro.engine import BatchExecutor
from repro.engine.sharded import ShardedIndex
from repro.hardware.hierarchy import MemoryHierarchy
from repro.hardware.machine import MachineSpec
from repro.hardware.tracker import SimTracker
from repro.kernels import (
    KERNEL_MODES,
    REGISTRY,
    KernelRegistry,
    KernelUnavailableError,
    cpu,
    describe_kernels,
    dispatch,
    numpy_impl,
    set_kernel_mode,
)
from repro.models.base import FunctionModel
from repro.models.interpolation import InterpolationModel
from repro.models.linear import LinearModel
from repro.models.radix_spline import RadixSplineModel
from repro.models.rmi import RMIModel
from repro.search.batch import (
    bounded_lower_bound_batch,
    validated_lower_bound_batch,
)

from helpers import queries_for, sorted_uint_arrays


@pytest.fixture(autouse=True)
def _restore_kernel_mode():
    prev = REGISTRY.mode
    yield
    set_kernel_mode(prev, strict=False)


def scalar_oracle(index: CorrectedIndex, queries: np.ndarray) -> np.ndarray:
    """The per-query Algorithm-1 loop — the parity ground truth."""
    return np.asarray([index.lookup(q) for q in queries], dtype=np.int64)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
def test_all_kernels_registered():
    names = REGISTRY.names()
    assert len(names) == 13
    assert "search.validated" in names
    assert "fused.window_search" in names
    for row in describe_kernels():
        assert row["live"] in ("numba", "numpy")
        assert row["has_numba"] == REGISTRY.numba_available


def test_mode_switching_and_effective_mode():
    assert set_kernel_mode("numpy") == "numpy"
    assert REGISTRY.mode == "numpy"
    assert set_kernel_mode("auto") == (
        "numba" if REGISTRY.numba_available else "numpy"
    )
    with pytest.raises(ValueError):
        set_kernel_mode("fortran")


def test_strict_numba_request_raises_without_numba():
    if REGISTRY.numba_available:
        pytest.skip("numba importable: strict request succeeds")
    with pytest.raises(KernelUnavailableError):
        set_kernel_mode("numba", strict=True)
    # non-strict degrades with a warning and lands on the fallback
    with pytest.warns(RuntimeWarning):
        assert set_kernel_mode("numba", strict=False) == "numpy"


def test_duplicate_registration_rejected():
    reg = KernelRegistry(numba_available=False)
    reg.register("k", numpy_impl=lambda: None)
    with pytest.raises(ValueError):
        reg.register("k", numpy_impl=lambda: None)


def test_registry_to_dict_is_json_ready():
    import json

    d = REGISTRY.to_dict()
    assert d["mode"] in KERNEL_MODES
    assert json.loads(json.dumps(d)) == d


def test_every_entry_has_python_source_twin():
    # the parity suite runs the numba kernels interpreted; every entry
    # must carry its uncompiled source
    for name in REGISTRY.names():
        entry = REGISTRY.entry(name)
        assert entry.python_impl is not None
        assert entry.numpy_impl is not entry.python_impl


# ----------------------------------------------------------------------
# dtype guard at the kernel boundary (the old noqa[RPR101] site)
# ----------------------------------------------------------------------
def test_kernel_boundary_rejects_int64_queries_against_uint64_keys():
    data = np.arange(16, dtype=np.uint64)
    queries = np.array([-3, 5], dtype=np.int64)  # promotes to float64
    lo = np.zeros(2, dtype=np.int64)
    hi = np.full(2, 16, dtype=np.int64)
    with pytest.raises(TypeError, match="promote"):
        bounded_lower_bound_batch(data, queries, lo, hi)
    with pytest.raises(TypeError, match="promote"):
        validated_lower_bound_batch(data, queries, lo, hi)


def test_kernel_boundary_rejects_float_queries_against_wide_keys():
    data = np.arange(16, dtype=np.int64)
    queries = np.array([1.5, 2.5])
    with pytest.raises(TypeError, match="float queries"):
        validated_lower_bound_batch(
            data, queries, np.zeros(2, np.int64), np.full(2, 16, np.int64)
        )


def test_kernel_boundary_allows_exact_combinations():
    # same-kind and narrow-key combinations cannot corrupt: no raise
    data64 = np.arange(16, dtype=np.uint64)
    out = bounded_lower_bound_batch(
        data64, np.array([3, 9], dtype=np.uint64),
        np.zeros(2, np.int64), np.full(2, 16, np.int64),
    )
    assert out.tolist() == [3, 9]
    data32 = np.arange(16, dtype=np.int32)  # exact in float64: exempt
    out = validated_lower_bound_batch(
        data32, np.array([3.5]), np.zeros(1, np.int64),
        np.full(1, 16, np.int64),
    )
    assert out.tolist() == [4]


def test_regression_uint64_above_2_53_with_negative_int64_queries():
    """The laundering bug the guard replaces: one batch mixing negative
    int64 queries with uint64 keys above 2**53 must stay exact — under a
    float64 promotion all 65 keys collapse onto at most two values."""
    base = 1 << 53
    keys = np.arange(base, base + 65, dtype=np.uint64)
    index = CorrectedIndex(
        SortedData(keys), InterpolationModel(keys),
        ShiftTable.build(keys, InterpolationModel(keys)),
    )
    queries = np.concatenate([
        np.array([-9, -1, 0], dtype=np.int64),
        np.arange(base, base + 65, dtype=np.int64),
    ])
    expected = np.concatenate([
        np.zeros(3, dtype=np.int64), np.arange(65, dtype=np.int64)
    ])
    for mode in ("numpy", "auto"):
        set_kernel_mode(mode, strict=False)
        got = index.lookup_batch_vectorized(queries)
        np.testing.assert_array_equal(got, expected)
    np.testing.assert_array_equal(scalar_oracle(index, queries), expected)


def test_float_queries_coerced_exactly_at_index_boundary():
    # sanctioned path: float queries against uint64 keys are converted
    # exactly (q < k iff ceil(q) <= k) before any kernel comparison
    keys = np.arange(100, 160, dtype=np.uint64)
    index = CorrectedIndex(SortedData(keys), InterpolationModel(keys))
    queries = np.array([99.5, 100.0, 100.5, 159.5, 160.5])
    got = index.lookup_batch_vectorized(queries)
    assert got.tolist() == [0, 0, 1, 60, 60]


# ----------------------------------------------------------------------
# batch tracing parity (hardware tracker satellite)
# ----------------------------------------------------------------------
def _traced_counts(executor, queries, hierarchy):
    hierarchy.reset_stats()
    out = executor.lookup_batch(queries)
    s = hierarchy.stats
    return out, (s.accesses, s.instructions, s.scan_lines)


def test_scalar_and_batch_paths_charge_identical_probe_counts():
    rng = np.random.default_rng(11)
    keys = np.sort(rng.integers(0, 1 << 40, 4000).astype(np.uint64))
    index = CorrectedIndex(
        SortedData(keys), InterpolationModel(keys),
        ShiftTable.build(keys, InterpolationModel(keys)),
    )
    queries = queries_for(keys, rng_seed=7)
    hierarchy = MemoryHierarchy(MachineSpec())
    tracker = SimTracker(hierarchy)

    scalar_ex = BatchExecutor(index, mode="scalar", tracker=tracker)
    out_scalar, counts_scalar = _traced_counts(scalar_ex, queries, hierarchy)
    vec_ex = BatchExecutor(index, mode="vectorized", tracker=tracker)
    out_vec, counts_vec = _traced_counts(vec_ex, queries, hierarchy)

    np.testing.assert_array_equal(out_scalar, out_vec)
    assert counts_scalar == counts_vec
    assert counts_scalar[0] > 0  # the tracker actually charged probes


def test_traced_batch_matches_untraced_results_on_sharded_index():
    rng = np.random.default_rng(3)
    keys = np.sort(rng.integers(0, 1 << 32, 6000).astype(np.uint64))
    sharded = ShardedIndex.build(keys, num_shards=4)
    queries = queries_for(keys, rng_seed=5)
    hierarchy = MemoryHierarchy(MachineSpec())
    traced = BatchExecutor(sharded, tracker=SimTracker(hierarchy))
    plain = BatchExecutor(sharded)
    np.testing.assert_array_equal(
        traced.lookup_batch(queries), plain.lookup_batch(queries)
    )
    assert hierarchy.stats.accesses > 0


def test_untraced_executor_charges_nothing():
    keys = np.arange(100, dtype=np.uint64)
    index = CorrectedIndex(SortedData(keys), InterpolationModel(keys))
    hierarchy = MemoryHierarchy(MachineSpec())
    executor = BatchExecutor(index)  # no tracker installed
    executor.lookup_batch(np.array([5, 50], dtype=np.uint64))
    assert hierarchy.stats.accesses == 0


# ----------------------------------------------------------------------
# dispatch plans
# ----------------------------------------------------------------------
def _make_index(keys, model_name, layer_name):
    builders = {
        "IM": lambda: InterpolationModel(keys),
        "linear": lambda: LinearModel(keys),
        "rmi-linear": lambda: RMIModel(keys, num_leaves=32, root="linear"),
        "rmi-cubic": lambda: RMIModel(keys, num_leaves=32, root="cubic"),
        "rmi-radix": lambda: RMIModel(keys, num_leaves=32, root="radix"),
        "rs": lambda: RadixSplineModel(keys, epsilon=4, radix_bits=8),
    }
    model = builders[model_name]()
    if layer_name == "R":
        layer = ShiftTable.build(keys, builders[model_name]())
    elif layer_name == "R-coarse":
        layer = ShiftTable.build(
            keys, builders[model_name](),
            num_partitions=max(len(keys) // 4, 1),
        )
    elif layer_name == "S":
        layer = CompactShiftTable.build(
            keys, builders[model_name](),
            num_partitions=max(len(keys) // 2, 1),
        )
    else:
        layer = None
    return CorrectedIndex(SortedData(keys), model, layer)


MODEL_NAMES = ("IM", "linear", "rmi-linear", "rmi-cubic", "rmi-radix", "rs")
LAYER_NAMES = ("none", "R", "R-coarse", "S")


def test_build_plan_families_and_search_kinds():
    keys = np.arange(0, 3000, 3, dtype=np.uint64)
    n = len(keys)
    expect_kind = {"none": None, "R": "window", "R-coarse": "window",
                   "S": "point"}
    for model_name in MODEL_NAMES:
        for layer_name in LAYER_NAMES:
            index = _make_index(keys, model_name, layer_name)
            plan = dispatch.build_plan(index.model, index.layer, n)
            if layer_name == "none":
                if model_name.startswith("rmi"):
                    assert plan.search_kind == "leaf_bounds"
                elif model_name == "rs":
                    assert plan.search_kind == "const_bounds"
                else:  # boundless bare model: searchsorted is optimal
                    assert plan is None
            else:
                assert plan.search_kind == expect_kind[layer_name]


def test_plan_unsupported_configurations_return_none():
    keys = np.arange(64, dtype=np.uint64)
    fn_model = FunctionModel(lambda k: float(k), len(keys))
    assert dispatch.build_plan(fn_model, None, len(keys)) is None
    # degenerate one-knot spline opts out via kernel_spec() -> None
    const_keys = np.full(8, 42, dtype=np.uint64)
    rs = RadixSplineModel(const_keys, epsilon=4, radix_bits=8)
    if rs.num_spline_points < 2:
        assert rs.kernel_spec() is None


def test_plan_cache_invalidates_on_model_swap():
    keys = np.arange(256, dtype=np.uint64)
    index = _make_index(keys, "IM", "R")
    plan1 = dispatch.plan_for(index)
    assert dispatch.plan_for(index) is plan1  # cached by identity
    index.model = LinearModel(keys)
    plan2 = dispatch.plan_for(index)
    assert plan2 is not plan1
    assert plan2.family == "affine"


def test_fused_dispatch_declines_in_numpy_mode():
    keys = np.arange(256, dtype=np.uint64)
    index = _make_index(keys, "IM", "R")
    set_kernel_mode("numpy")
    assert dispatch.fused_lookup_batch(
        index, keys, len(keys), np.array([5], dtype=np.uint64)
    ) is None


# ----------------------------------------------------------------------
# oracle parity: kernels vs numpy vs the scalar Algorithm-1 loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("model_name", MODEL_NAMES)
@pytest.mark.parametrize("layer_name", LAYER_NAMES)
def test_kernel_parity_fixed_dataset(model_name, layer_name):
    rng = np.random.default_rng(19)
    keys = np.sort(
        np.concatenate([
            rng.integers(0, 1 << 45, 1500).astype(np.uint64),
            np.full(120, 1 << 44, dtype=np.uint64),  # duplicate run
        ])
    )
    index = _make_index(keys, model_name, layer_name)
    queries = queries_for(keys, rng_seed=23)
    oracle = scalar_oracle(index, queries)
    for mode in ("numpy", "auto"):
        set_kernel_mode(mode, strict=False)
        got = index.lookup_batch_vectorized(queries)
        np.testing.assert_array_equal(got, oracle, err_msg=f"mode={mode}")
    plan = dispatch.build_plan(index.model, index.layer, len(keys))
    if plan is None:
        return
    for impls in (cpu, numpy_impl):
        got = dispatch.run_plan(plan, keys, queries, impls)
        np.testing.assert_array_equal(
            got, oracle, err_msg=f"impls={impls.__name__}"
        )


@settings(max_examples=25, deadline=None)
@given(keys=sorted_uint_arrays(min_size=2, max_size=200), seed=st.integers(0, 2**16))
def test_kernel_parity_property_interpolation_window(keys, seed):
    index = _make_index(keys, "IM", "R")
    queries = queries_for(keys, rng_seed=seed, count=32)
    oracle = scalar_oracle(index, queries)
    plan = dispatch.build_plan(index.model, index.layer, len(keys))
    for impls in (cpu, numpy_impl):
        np.testing.assert_array_equal(
            dispatch.run_plan(plan, keys, queries, impls), oracle
        )
    set_kernel_mode("numpy")
    np.testing.assert_array_equal(
        index.lookup_batch_vectorized(queries), oracle
    )


@settings(max_examples=15, deadline=None)
@given(keys=sorted_uint_arrays(min_size=4, max_size=150), seed=st.integers(0, 2**16))
def test_kernel_parity_property_rmi_point_correction(keys, seed):
    # constant-key data breaks numpy's polyfit (pre-existing cubic-RMI
    # build limitation, unrelated to the kernels under test)
    assume(keys[0] != keys[-1])
    index = _make_index(keys, "rmi-cubic", "S")
    queries = queries_for(keys, rng_seed=seed, count=32)
    oracle = scalar_oracle(index, queries)
    plan = dispatch.build_plan(index.model, index.layer, len(keys))
    for impls in (cpu, numpy_impl):
        np.testing.assert_array_equal(
            dispatch.run_plan(plan, keys, queries, impls), oracle
        )


# ----------------------------------------------------------------------
# adversarial windows: §3.8 validation must recover exact answers
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=1, max_size=120),
    seed=st.integers(0, 2**16),
)
def test_validated_search_exact_under_arbitrary_windows(keys, seed):
    """Whatever garbage windows arrive — empty, width-0, inverted,
    fully out of range — edge validation must restore np.searchsorted."""
    rng = np.random.default_rng(seed)
    n = len(keys)
    queries = queries_for(keys, rng_seed=seed, count=24)
    starts = rng.integers(-n - 3, 2 * n + 3, size=len(queries))
    widths = rng.integers(0, n + 3, size=len(queries))
    truth = np.searchsorted(keys, queries, side="left").astype(np.int64)
    public = validated_lower_bound_batch(keys, queries, starts, widths)
    np.testing.assert_array_equal(public, truth)
    for impls in (cpu, numpy_impl):
        out = np.empty(len(queries), dtype=np.int64)
        impls.validated_search(
            keys, queries, starts.astype(np.int64),
            widths.astype(np.int64), out,
        )
        np.testing.assert_array_equal(out, truth)


@pytest.mark.parametrize("impls", [cpu, numpy_impl], ids=["cpu", "numpy"])
def test_validated_search_adversarial_fixed_windows(impls):
    keys = np.array([5, 5, 5, 9, 9, 14, 20, 20], dtype=np.uint64)
    queries = np.array([0, 5, 6, 9, 14, 15, 20, 21], dtype=np.uint64)
    cases = [
        np.zeros(len(queries), dtype=np.int64),              # width-0 at 0
        np.full(len(queries), len(keys), dtype=np.int64),    # beyond end
        np.full(len(queries), -50, dtype=np.int64),          # far negative
        np.arange(len(queries), dtype=np.int64) - 4,         # mixed
    ]
    truth = np.searchsorted(keys, queries, side="left").astype(np.int64)
    for starts in cases:
        for width in (0, 1, 3):
            out = np.empty(len(queries), dtype=np.int64)
            impls.validated_search(
                keys, queries, starts,
                np.full(len(queries), width, dtype=np.int64), out,
            )
            np.testing.assert_array_equal(out, truth)


@settings(max_examples=30, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=1, max_size=100),
    seed=st.integers(0, 2**16),
)
def test_bounded_search_backends_agree(keys, seed):
    rng = np.random.default_rng(seed)
    n = len(keys)
    queries = queries_for(keys, rng_seed=seed, count=16)
    lo = rng.integers(0, n + 1, size=len(queries))
    hi = np.minimum(lo + rng.integers(0, n + 1, size=len(queries)), n)
    ref = bounded_lower_bound_batch(keys, queries, lo, hi)
    for impls in (cpu, numpy_impl):
        out = np.empty(len(queries), dtype=np.int64)
        impls.bounded_search(
            keys, queries, lo.astype(np.int64), hi.astype(np.int64), out
        )
        np.testing.assert_array_equal(out, ref)
    # in-window lanes must equal searchsorted
    truth = np.searchsorted(keys, queries, side="left")
    inside = (truth >= lo) & (truth <= hi)
    np.testing.assert_array_equal(ref[inside], truth[inside])


def test_empty_batch_and_empty_window_edges():
    keys = np.arange(10, dtype=np.uint64)
    empty_q = np.empty(0, dtype=np.uint64)
    assert validated_lower_bound_batch(
        keys, empty_q, np.empty(0, np.int64), np.empty(0, np.int64)
    ).size == 0
    # a window entirely past the data answers n (no element >= q there)
    out = bounded_lower_bound_batch(
        keys, np.array([3], dtype=np.uint64),
        np.array([10], dtype=np.int64), np.array([10], dtype=np.int64),
    )
    assert out.tolist() == [10]


# ----------------------------------------------------------------------
# engine-level parity across backends × kernel modes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["static", "gapped", "fenwick"])
def test_executor_parity_across_backends_and_modes(backend):
    rng = np.random.default_rng(31)
    keys = np.sort(rng.integers(0, 1 << 45, 5000).astype(np.uint64))
    sharded = ShardedIndex.build(keys, num_shards=3, backend=backend)
    queries = queries_for(keys, rng_seed=37)
    truth = np.searchsorted(keys, queries, side="left")
    executor = BatchExecutor(sharded)
    for mode in ("numpy", "auto"):
        set_kernel_mode(mode, strict=False)
        np.testing.assert_array_equal(
            executor.lookup_batch(queries), truth, err_msg=f"{backend}/{mode}"
        )
