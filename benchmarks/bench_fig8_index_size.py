"""F8 — Figure 8: effect of index size on performance (face64, osmc64).

For each method a size knob is swept (RS ε, RMI leaves, B+tree fanout,
RBS radix bits, Shift-Table layer M) and five series are reported per
dataset: lookup ns, log2 error, instructions, L1 misses, LLC misses —
the five panels of the paper's figure.
"""

from conftest import run_once

from repro.bench.experiments import fig8_index_size
from repro.bench.figures import ascii_chart, series_from_rows
from repro.bench.reporting import format_table


def test_fig8_index_size(benchmark):
    rows = run_once(benchmark, fig8_index_size)

    for ds in ("face64", "osmc64"):
        table = [
            [r["method"], r["size_bytes"], r["ns"], r["log2_error"],
             r["instructions"], r["l1_misses"], r["llc_misses"]]
            for r in rows if r["dataset"] == ds
        ]
        print()
        print(
            format_table(
                ["method", "size_B", "ns", "log2err", "instr", "L1miss",
                 "LLCmiss"],
                table,
                title=f"Figure 8 — {ds}",
            )
        )
        ds_rows = [r for r in rows if r["dataset"] == ds]
        print()
        print(ascii_chart(
            series_from_rows(ds_rows, "method", "size_bytes", "ns"),
            title=f"Figure 8 (log-log): lookup ns vs index size, {ds}",
        ))

    # paper shapes, asserted on face64:
    face = [r for r in rows if r["dataset"] == "face64"]

    def series(method):
        return sorted((r for r in face if r["method"] == method),
                      key=lambda r: r["size_bytes"])

    rs = series("RS")
    assert rs[0]["log2_error"] > rs[-1]["log2_error"]  # bigger model, less err

    # the paper's §4.2 claim: "RBS has a much larger latency than both
    # [IM/RS]-ShiftTable indexes of the same size" — compare the best
    # ShiftTable point against the RBS point closest to it in footprint
    best_st = min(
        (r for r in face if r["method"] in ("IM+ShiftTable", "RS+ShiftTable")),
        key=lambda r: r["ns"],
    )
    rbs_same_size = min(
        (r for r in face if r["method"] == "RBS"),
        key=lambda r: abs(r["size_bytes"] - best_st["size_bytes"]),
    )
    assert best_st["ns"] < rbs_same_size["ns"]

    benchmark.extra_info["rows"] = [
        {k: (round(v, 2) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
