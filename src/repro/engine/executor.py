"""Batch query execution over a (sharded) corrected index.

:class:`BatchExecutor` turns an array of point lookups or ``(lo, hi)``
range queries into per-shard vectorised pipeline runs:

1. **route** — one vectorised ``searchsorted`` assigns every query a
   shard;
2. **group** — a stable argsort gathers each shard's queries into one
   contiguous chunk (cache-friendly, one model/layer pass per shard);
3. **execute** — each chunk runs the shard's fully-vectorised
   predict → correct → bounded-search pipeline
   (:meth:`CorrectedIndex.lookup_batch_vectorized`), optionally across a
   thread pool (numpy releases the GIL inside the heavy kernels);
4. **scatter** — shard-local answers plus shard base offsets land back
   in the original query order.

``mode="scalar"`` keeps the per-query Python reference loop; it exists
so benchmarks and tests can quantify exactly what vectorisation buys.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..core.corrected_index import CorrectedIndex
from ..core.records import coerce_query_array
from ..core.shift_table import ShiftTable
from .plan import ExecutionPlan, ShardSlice
from .sharded import ShardedIndex

MODES = ("vectorized", "scalar")


def _as_sharded(index: ShardedIndex | CorrectedIndex) -> ShardedIndex:
    """Adopt a plain CorrectedIndex as a degenerate one-shard index."""
    if isinstance(index, ShardedIndex):
        return index
    keys = index.data.keys
    offsets = np.asarray([0, len(keys)], dtype=np.int64)
    return ShardedIndex([index], offsets, keys, name=index.name)


class BatchExecutor:
    """Routes, groups and executes query batches against an index."""

    def __init__(
        self,
        index: ShardedIndex | CorrectedIndex,
        mode: str = "vectorized",
        workers: int | None = None,
        tracker=None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.index = _as_sharded(index)
        self.mode = mode
        self.workers = int(workers) if workers else 1
        #: optional :class:`~repro.hardware.tracker.SimTracker`: when
        #: installed, point lookups charge the canonical per-query probe
        #: sequence (Algorithm 1) through it — the same sequence the
        #: compiled per-lane kernels execute — so scalar and batch
        #: execution charge identical probe counts by construction
        self.tracker = tracker
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # worker-pool lifecycle
    # ------------------------------------------------------------------
    def _get_pool(self) -> ThreadPoolExecutor:
        """Lazily-created pool, reused across batches (serving hot path)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (no-op if none was created)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, queries: np.ndarray) -> ExecutionPlan:
        """Route a batch without executing it (the engine's EXPLAIN)."""
        queries = np.asarray(queries)
        index = self.index
        slices: list[ShardSlice] = []
        if queries.size and len(index):
            shard_ids = index.route_batch(queries)
            counts = np.bincount(shard_ids, minlength=index.num_shards)
            for s in np.flatnonzero(counts):
                shard = index.shards[int(s)]
                assert shard is not None, "router targeted an empty shard"
                expected = (
                    shard.layer.expected_window()
                    if isinstance(shard.layer, ShiftTable)
                    else None
                )
                slices.append(
                    ShardSlice(
                        shard_id=int(s),
                        num_queries=int(counts[s]),
                        num_keys=len(shard),
                        index_name=shard.name,
                        strategy=shard.strategy(),
                        expected_window=expected,
                        backend=shard.kind,
                        pending_updates=shard.pending,
                        origin=shard.origin,
                        decision=shard.decision_label,
                    )
                )
        return ExecutionPlan(
            num_queries=int(queries.size),
            num_shards=index.num_shards,
            mode=self.mode,
            workers=self.workers,
            slices=slices,
            num_splits=index.num_splits,
            num_merges=index.num_merges,
        )

    def explain(self, queries: np.ndarray) -> str:
        """Human-readable :meth:`plan` (mirrors the CLI output)."""
        return self.plan(queries).describe()

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Global lower-bound position for every query, original order."""
        # shards re-normalise their own chunks (and patch overflow lanes
        # to exact answers), so the original queries pass through; only
        # routing uses the clamped dtype view
        queries = np.asarray(queries)
        out = np.empty(queries.size, dtype=np.int64)
        if queries.size == 0:
            return out
        if len(self.index) == 0:
            # every key was deleted: the global lower bound is 0 everywhere
            out[:] = 0
            return out
        if self.mode == "scalar" or self.tracker is not None:
            # traced batches run the sequential reference path: hardware
            # cost simulation needs the exact Algorithm-1 probe order,
            # which vectorised lane passes reorder
            index = self.index
            tracker = self.tracker
            for i, q in enumerate(queries):  # repro: noqa[RPR501] — traced/scalar reference path must charge the sequential Algorithm-1 probe order
                out[i] = (
                    index.lookup(q)
                    if tracker is None
                    else index.lookup(q, tracker)
                )
            return out

        index = self.index
        if len(index._nonempty) == 1:
            # one live shard: routing, grouping and scatter are all
            # identity — skip them (the serving layer's small batches
            # are dominated by exactly this fixed overhead)
            s = int(index._nonempty[0])
            shard = index.shards[s]
            shard.stats.reads += int(queries.size)
            out[:] = shard.lookup_batch(queries) + int(index.offsets[s])
            return out
        shard_ids = index.route_batch(queries)
        order = np.argsort(shard_ids, kind="stable")
        sorted_ids = shard_ids[order]
        # chunk bounds: one contiguous run per touched shard
        cut = np.flatnonzero(np.diff(sorted_ids)) + 1
        chunk_bounds = np.concatenate(([0], cut, [len(order)]))

        def run_chunk(a: int, b: int) -> None:
            take = order[a:b]
            s = int(sorted_ids[a])
            shard = index.shards[s]
            assert shard is not None, "router targeted an empty shard"
            # each chunk touches a distinct shard, so the workload
            # counter update is race-free even across pool workers
            shard.stats.reads += int(b - a)
            # backends answer in shard-local *logical* ranks, so the
            # shard base offset still globalises them under updates
            out[take] = shard.lookup_batch(queries[take]) + int(
                index.offsets[s]
            )

        spans = list(zip(chunk_bounds[:-1], chunk_bounds[1:]))
        if self.workers > 1 and len(spans) > 1:
            list(self._get_pool().map(lambda ab: run_chunk(*ab), spans))
        else:
            for a, b in spans:
                run_chunk(a, b)
        return out

    # ------------------------------------------------------------------
    # range queries
    # ------------------------------------------------------------------
    def range_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``[first, last)`` global positions per ``lo <= key < hi`` query.

        Both bounds are independent global lower bounds, so a range may
        straddle any number of shard cuts; inverted ranges come back
        empty (``first == last``) like the scalar range engine.
        """
        # raw client bounds may be a mixed python list whose dtype
        # inference lands on float64; coerce into the key domain exactly
        # and patch the above-domain lanes (true lower bound: len(index))
        lows, oob_lo = coerce_query_array(lows, self.index.key_dtype)
        highs, oob_hi = coerce_query_array(highs, self.index.key_dtype)
        if lows.shape != highs.shape:
            raise ValueError("lows and highs must align")
        first = self.lookup_batch(lows)
        last = self.lookup_batch(highs)
        # guard inverted ranges (hi <= lo): empty, anchored at first —
        # unless hi only *clamped* equal to lo from above the domain
        bad = highs <= lows
        if oob_hi is not None:
            bad &= ~oob_hi
        last[bad] = first[bad]
        n = len(self.index)
        if oob_lo is not None:
            first[oob_lo] = n
        if oob_hi is not None:
            last[oob_hi] = n
        return first, np.maximum(first, last)

    def count_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Cardinality of every ``lo <= key < hi`` range."""
        first, last = self.range_batch(lows, highs)
        return last - first

    def scan_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> list[np.ndarray]:
        """Materialised key slices per range (clustered scans)."""
        first, last = self.range_batch(lows, highs)
        keys = self.index.keys
        return [keys[a:b] for a, b in zip(first, last)]
