"""The Shift-Table correction layer, R-mode (paper §3, Algorithms 1–2).

Given a monotone CDF model, the layer is an array indexed by the model's
own output: partition ``P_j`` collects the keys the model sends to
partition ``j``, and the entry stores

* ``delta[j]`` — eq. (2)/(5): ``min(N·F(x) − ⌊N·F_θ(x)⌋)`` over ``P_j``,
  i.e. how far the *local search start* must shift from the prediction;
* ``width[j]`` — eq. (6): the largest extra offset needed beyond that
  start, so the guaranteed window for a prediction ``p`` in partition
  ``j`` is ``[p + delta[j], p + delta[j] + width[j]]``.

With ``M = N`` (the paper's default, §3.9) every prediction *is* its own
partition and the window is exactly ``[k+Δ_k, k+Δ_k+C_k−1]`` of §3;
``width = C_k − 1``.  With ``M < N`` the layer is the paper's merged-
partition compression (§3.4, eqs. 4–6).

Empty partitions get pseudo-entries pointing at the first record of the
next non-empty partition (§3.1, and the backward pass of Algorithm 2 —
note the paper's pseudo-code indexes ``k−1`` where its own text and
Figure 5 require the *right* neighbour; we follow the text).  Entries are
stored as a single array of ``<Δ, C>`` pairs, exactly one memory lookup
per query (the paper's core selling point).
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, alloc_region
from ..models.base import (
    CDFModel,
    partition_index,
    partition_index_batch,
    predicted_index_batch,
)
from ..datasets.cdf import key_positions


def _entry_bytes(max_abs_delta: int, max_width: int) -> int:
    """Per-field width needed to store the layer (§3.9, last paragraph).

    The paper notes that when the model error is small the entries can
    shrink (e.g. 16-bit shifts).  We pick the smallest of 2/4/8 bytes per
    field that fits both the deltas and the widths.
    """
    bound = max(max_abs_delta, max_width)
    for bytes_per_field in (1, 2, 4):
        if bound < (1 << (8 * bytes_per_field - 1)):
            return 2 * bytes_per_field
    return 16  # two full int64 fields


class ShiftTable:
    """R-mode correction layer: ``<Δ, C>`` pairs, one lookup per query."""

    def __init__(
        self,
        deltas: np.ndarray,
        widths: np.ndarray,
        counts: np.ndarray,
        num_keys: int,
    ) -> None:
        if not (len(deltas) == len(widths) == len(counts)):
            raise ValueError("deltas, widths and counts must align")
        self.deltas = deltas
        self.widths = widths
        self.counts = counts
        self.num_keys = int(num_keys)
        self.num_partitions = len(deltas)
        self.entry_bytes = _entry_bytes(
            int(np.abs(deltas).max(initial=0)), int(widths.max(initial=0))
        )
        self.region = alloc_region(
            f"shift_table_{id(self):x}", self.entry_bytes, self.num_partitions
        )

    # ------------------------------------------------------------------
    # construction (Algorithm 2, vectorised)
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        data: np.ndarray,
        model: CDFModel,
        num_partitions: int | None = None,
    ) -> "ShiftTable":
        """Build the layer in one pass over the data (Algorithm 2).

        ``num_partitions`` is the paper's ``M``; the default ``M = N`` is
        the paper's recommended configuration (§3.9).
        """
        n = len(data)
        if n == 0:
            raise ValueError("cannot build a Shift-Table over empty data")
        if n != model.num_keys:
            raise ValueError("model was trained for a different key count")
        m = int(num_partitions) if num_partitions is not None else n
        if m <= 0:
            raise ValueError("num_partitions must be positive")

        pred_float = model.predict_pos_batch(data)
        pred = predicted_index_batch(pred_float, n)
        part = partition_index_batch(pred_float, n, m)
        pos = key_positions(data)  # lower-bound position of every slot (§3.2)

        drift = pos - pred
        deltas = np.full(m, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(deltas, part, drift)
        counts = np.bincount(part, minlength=m).astype(np.int64)
        occupied = counts > 0

        # the window end must cover every *slot* of the partition, not just
        # lower-bound positions: the paper's C_k counts array slots, which
        # is what makes a window span an entire duplicate run (§3.1's
        # "just after the range" argument depends on it)
        slot = np.arange(n, dtype=np.int64)
        widths = np.zeros(m, dtype=np.int64)
        occupied_safe = np.where(occupied, deltas, 0)
        np.maximum.at(widths, part, slot - (pred + occupied_safe[part]))

        # earliest data position covered by each partition, for the
        # empty-partition back-fill
        starts = np.full(m, n, dtype=np.int64)
        np.minimum.at(starts, part, pos)

        deltas, widths = cls._fill_empty(
            deltas, widths, starts, occupied, n, m
        )
        return cls(deltas, widths, counts, n)

    @staticmethod
    def _fill_empty(
        deltas: np.ndarray,
        widths: np.ndarray,
        starts: np.ndarray,
        occupied: np.ndarray,
        n: int,
        m: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pseudo-entries for empty partitions (§3.1, Algorithm 2 pass 2).

        A query predicted into an empty partition ``j`` must land on the
        first record of the next non-empty partition, at position ``s'``.
        Predictions in partition ``j`` range over ``[b_j, b_{j+1})`` where
        ``b_j = ⌈j·N/M⌉``, so the entry is chosen to cover ``s'`` from any
        of them:  ``delta = s' − (b_{j+1}−1)`` and the width absorbs the
        partition's prediction span plus the neighbour's own width.  For
        ``M = N`` this reduces exactly to the paper's
        ``Δ_{k∅} = Δ_next + (k_next − k∅)``, ``C_{k∅} = C_next``.
        Trailing empty partitions point one past the last key.
        """
        if bool(occupied.all()):
            return deltas, widths
        idx = np.arange(m)
        # index of the next occupied partition at or after j (m if none)
        next_occ = np.where(occupied, idx, m)
        next_occ = np.minimum.accumulate(next_occ[::-1])[::-1]

        # prediction-range bounds per partition
        if m == n:
            b_lo = idx
            b_hi_minus1 = idx
        else:
            # smallest / largest integer prediction p with ⌊p·(m/n)⌋ == j,
            # bounded via the partition boundaries with a ±1 margin so
            # float rounding in the partition computation can never push a
            # prediction outside the covered span (widths only grow)
            b_lo = np.maximum(np.ceil(idx * (n / m)).astype(np.int64) - 1, 0)
            b_hi_minus1 = np.minimum(
                np.ceil((idx + 1) * (n / m)).astype(np.int64), n - 1
            )
            b_hi_minus1 = np.maximum(b_hi_minus1, b_lo)

        empty = ~occupied
        has_next = next_occ < m
        j_next = np.where(has_next, next_occ, m - 1)
        s_next = np.where(has_next, starts[j_next], n)
        w_next = np.where(has_next, widths[j_next], 0)

        deltas = deltas.copy()
        widths = widths.copy()
        deltas[empty] = s_next[empty] - b_hi_minus1[empty]
        widths[empty] = (b_hi_minus1[empty] - b_lo[empty]) + w_next[empty]
        return deltas, widths

    # ------------------------------------------------------------------
    # query path (Algorithm 1, lines 2–4)
    # ------------------------------------------------------------------
    def window(
        self, pred_float: float, tracker: NullTracker = NULL_TRACKER
    ) -> tuple[int, int]:
        """Guaranteed local-search window for a model prediction.

        Returns ``(start, width)``: the result lies in
        ``[start, start+width]`` (or at ``start+width+1`` for non-indexed
        queries just past the window, §3.1).  Costs exactly one layer
        lookup.
        """
        n = self.num_keys
        j = partition_index(pred_float, n, self.num_partitions)
        tracker.touch(self.region, j)
        tracker.instr(4)
        if pred_float <= 0.0:
            pred = 0
        else:
            pred = int(pred_float)
            if pred >= n:
                pred = n - 1
        return pred + int(self.deltas[j]), int(self.widths[j])

    def window_batch(self, pred_float: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`window` (no tracing)."""
        n = self.num_keys
        j = partition_index_batch(pred_float, n, self.num_partitions)
        pred = predicted_index_batch(pred_float, n)
        return pred + self.deltas[j], self.widths[j]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Layer footprint: M entries of the auto-chosen width."""
        return self.num_partitions * self.entry_bytes

    def expected_window(self) -> float:
        """Mean window length over a uniform-over-keys query workload."""
        if self.counts.sum() == 0:
            return 0.0
        return float((self.counts * (self.widths + 1)).sum() / self.counts.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShiftTable(M={self.num_partitions}, N={self.num_keys}, "
            f"entry_bytes={self.entry_bytes})"
        )


def pack_layer_arrays(layer: "ShiftTable") -> "ShiftTable":
    """Re-store the layer's arrays at their minimal integer width.

    ``entry_bytes`` already *accounts* for the §3.9 entry-width rule in
    the simulated footprint; packing applies it to the actual numpy
    arrays too, so host memory matches the simulated memory.  Returns
    the same layer object with ``deltas``/``widths`` narrowed (int64
    arithmetic still applies on read — numpy upcasts automatically).
    """
    field_bytes = layer.entry_bytes // 2
    dtype = {1: np.int8, 2: np.int16, 4: np.int32, 8: np.int64}[field_bytes]
    layer.deltas = layer.deltas.astype(dtype)
    # widths are non-negative; same signed dtype keeps comparisons simple
    layer.widths = layer.widths.astype(dtype)
    return layer
