"""Pluggable per-shard storage backends for the updatable engine.

The batch engine's shards were read-only ``CorrectedIndex`` objects; a
:class:`ShardBackend` generalises the shard into a small storage engine
that also absorbs ``insert``/``delete`` and can ``refresh`` itself
(amortised rebuild) when its update slack runs out.  Three backends
implement the repo's two update designs plus the trivial one:

* ``"static"``  — rebuild-on-write: every mutation re-sorts the shard's
  key slice and refits model + layer.  Reads stay as fast as the
  read-only engine; writes cost O(shard).
* ``"gapped"``  — :class:`~repro.core.gapped.GappedLearnedIndex`
  (ALEX-style): inserts memmove to the nearest gap, deletes clear an
  occupancy bit, the correction layer is rebuilt amortised.
* ``"fenwick"`` — :class:`~repro.core.fenwick.UpdatableCorrectedIndex`
  (the paper's §6 sketch): base array untouched, inserts/deletes
  buffered, lookups merge buffer ranks, periodic merge folds the
  buffers back.

All backends answer in *logical* ranks — positions in the shard's live,
gap-free key sequence — so the sharded router can keep treating every
answer as ``shard offset + local rank``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

import numpy as np

from ..core.compact import CompactShiftTable
from ..core.corrected_index import CorrectedIndex
from ..core.fenwick import UpdatableCorrectedIndex
from ..core.gapped import GappedLearnedIndex
from ..core.shift_table import ShiftTable
from ..hardware.machine import DEFAULT_PAYLOAD_BYTES
from ..hardware.tracker import NULL_TRACKER, NullTracker
from ..models.factory import (
    ModelFactory,
    build_corrected_index,
    model_kind_name,
)

#: Shard storage engines the sharded index can be built with.
BACKEND_KINDS = ("static", "gapped", "fenwick")


@dataclass
class ShardStats:
    """Observed per-shard workload counters (feeds the §3.9 auto-tuner).

    ``reads`` counts queries the executor routed to the shard, ``writes``
    counts routed inserts/deletes.  The counters survive shard rebuilds
    triggered by a retune (the observation window carries over) and are
    summed when shards merge; a split resets both children.
    """

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Observed operations in the current window."""
        return self.reads + self.writes

    def write_fraction(self) -> float:
        """Observed write mix in ``[0, 1]`` (0.0 before any operation)."""
        if self.total == 0:
            return 0.0
        return self.writes / self.total

    def merged_with(self, other: "ShardStats") -> "ShardStats":
        """Combined counters for a shard built from two merged shards."""
        return ShardStats(self.reads + other.reads,
                          self.writes + other.writes)


@dataclass(frozen=True)
class BackendConfig:
    """How a shard (re)builds its model, layer and update machinery.

    ``density`` only affects the gapped backend (fraction of slots
    holding real keys); ``merge_threshold`` only the fenwick backend
    (buffered updates before a merge is due).  The gapped backend always
    uses an R-mode layer over its gapped array, so ``layer`` applies to
    the static and fenwick backends.
    """

    model: str | ModelFactory = "interpolation"
    layer: str | None = "R"
    layer_partitions: int | None = None
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    density: float = 0.75
    merge_threshold: int = 4096


def config_from_index(index: CorrectedIndex,
                      defaults: BackendConfig) -> BackendConfig:
    """Derive a rebuild config matching an adopted index's configuration.

    When a bare :class:`CorrectedIndex` (the read-only construction
    path) is adopted as a shard backend, post-mutation rebuilds must
    refit *its* model kind and layer mode — not the engine defaults.
    Known model types map back to their factory names; an unknown model
    falls back to its own class as the factory callable.
    """
    model_type = type(index.model)
    model: str | ModelFactory = model_kind_name(model_type) or model_type
    if isinstance(index.layer, ShiftTable):
        layer = "R"
        partitions = (
            index.layer.num_partitions
            if index.layer.num_partitions != index.layer.num_keys else None
        )
    elif isinstance(index.layer, CompactShiftTable):
        layer = "S"
        partitions = index.layer.num_partitions
    else:
        layer, partitions = None, None
    return replace(
        defaults, model=model, layer=layer, layer_partitions=partitions,
        payload_bytes=index.data.payload_bytes,
    )


class ShardBackend:
    """One shard's storage engine: logical-rank reads + writes.

    Subclasses must provide ``self._index`` (the primary
    :class:`CorrectedIndex` view used for planning/diagnostics) and the
    query/update methods.  The ``data``/``model``/``layer`` properties
    exist so planning code and tests can introspect a shard without
    caring which backend it runs.
    """

    kind: str = "?"
    #: live size at which the last split attempt came back degenerate
    #: (one giant duplicate run); lets the sharded layer back off
    #: instead of re-materialising the shard's keys on every insert
    split_failed_at: int = 0
    #: how this shard came to be: "build", "split", "merge" or "retune"
    #: (surfaces in plan()/explain() lineage columns)
    origin: str = "build"
    #: compact tuner-decision label (e.g. "rmi+R/gapped"), set by the
    #: auto-tuner; None for shards built from a hand-picked config
    decision_label: str | None = None
    _stats: ShardStats | None = None
    _lock: threading.RLock | None = None
    #: class-level guard so two threads racing the lazy ``lock`` create
    #: exactly one per-shard lock (double-checked)
    _lock_guard = threading.Lock()

    @property
    def lock(self) -> threading.RLock:
        """This shard's own write lock (created lazily, exactly once).

        Shared-mode engine writers (:mod:`repro.engine.locks`) take this
        before mutating the shard's content, so writers on *distinct*
        shards proceed concurrently while two writers on the same shard
        still serialise.  Living on the backend object, the lock follows
        the shard through splits/merges/retunes (each rebuilt backend
        gets a fresh lock) and through persistence decode paths that
        bypass ``__init__``.
        """
        lock = self._lock
        if lock is None:
            with ShardBackend._lock_guard:
                lock = self._lock
                if lock is None:
                    lock = self._lock = threading.RLock()
        return lock

    @property
    def stats(self) -> ShardStats:
        """Per-shard workload counters.

        Concrete backends initialise ``_stats`` eagerly in their
        constructors so lock-free readers and lock-holding writers never
        race to create it; the lazy fallback only serves exotic
        subclasses that skip the stock constructors.
        """
        if self._stats is None:
            self._stats = ShardStats()
        return self._stats

    # -- introspection -------------------------------------------------
    @property
    def index(self) -> CorrectedIndex:
        return self._index

    @property
    def data(self):
        return self.index.data

    @property
    def model(self):
        return self.index.model

    @property
    def layer(self):
        return self.index.layer

    @property
    def name(self) -> str:
        return self.index.name

    def size_bytes(self) -> int:
        """Model + layer footprint in bytes (excludes the key data)."""
        return self.index.size_bytes()

    def strategy(self) -> str:
        """Last-mile strategy label the shard's configuration implies."""
        index = self.index
        if isinstance(index.layer, ShiftTable):
            return "R-window + bounded batch search"
        if isinstance(index.layer, CompactShiftTable):
            return "S-point ± expected error"
        if index._model_bounds_batch(np.empty(0)) is not None:
            return "model bounds + bounded batch search"
        return "full searchsorted"

    def min_key(self):
        """Smallest live key (the shard's routing boundary)."""
        return self.keys()[0]

    # -- abstract ------------------------------------------------------
    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> np.ndarray:
        """The live, logical (sorted, gap-free) key sequence."""
        raise NotImplementedError

    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Logical lower-bound rank of ``q`` in the live keys."""
        raise NotImplementedError

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`lookup` (one pipeline pass per batch)."""
        raise NotImplementedError

    def insert(self, key) -> None:
        """Insert ``key`` into the shard (duplicates allowed)."""
        raise NotImplementedError

    def delete(self, key) -> None:
        """Delete one occurrence of ``key`` (KeyError if absent)."""
        raise NotImplementedError

    def refresh(self) -> None:
        """Amortised rebuild: fold updates back into a clean state."""
        raise NotImplementedError

    @property
    def pending(self) -> int:
        """Update staleness: mutations not yet folded into the base."""
        raise NotImplementedError

    def needs_refresh(self) -> bool:
        """True once the backend's update slack has run out."""
        raise NotImplementedError


class StaticBackend(ShardBackend):
    """Rebuild-on-write: the read-only engine's behaviour, made writable."""

    kind = "static"

    def __init__(
        self,
        source: CorrectedIndex | np.ndarray,
        config: BackendConfig,
        name: str = "static",
    ) -> None:
        self.config = config
        self._stats = ShardStats()
        if isinstance(source, CorrectedIndex):
            self._index = source
        else:
            self._index = build_corrected_index(
                source, config.model, config.layer, config.layer_partitions,
                config.payload_bytes, name,
            )

    def __len__(self) -> int:
        return 0 if self._index is None else len(self._index.data)

    def keys(self) -> np.ndarray:
        if self._index is None:
            return self._empty_keys
        return self._index.data.keys

    def min_key(self):
        return self._index.data.keys[0]

    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        return self._index.lookup(q, tracker)

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        return self._index.lookup_batch_vectorized(queries)

    def _set_keys(self, keys: np.ndarray) -> None:
        self._index = build_corrected_index(
            keys, self.config.model, self.config.layer,
            self.config.layer_partitions, self.config.payload_bytes,
            self._index.data.name,
        )

    def insert(self, key) -> None:
        keys = self._index.data.keys
        pos = int(np.searchsorted(keys, key, side="left"))
        self._set_keys(np.insert(keys, pos, key))

    def delete(self, key) -> None:
        keys = self._index.data.keys
        pos = int(np.searchsorted(keys, key, side="left"))
        if pos >= len(keys) or keys[pos] != key:
            raise KeyError(key)
        if len(keys) == 1:
            # emptied: the sharded layer drops the shard; keep a valid
            # zero-length view so len()/keys() stay answerable
            self._empty_keys = keys[:0]
            self._index = None  # type: ignore[assignment]
            return
        self._set_keys(np.delete(keys, pos))

    def refresh(self) -> None:
        pass  # every write already rebuilt; nothing is ever stale

    @property
    def pending(self) -> int:
        return 0

    def needs_refresh(self) -> bool:
        return False


class GappedBackend(ShardBackend):
    """ALEX-style gapped array with amortised layer refresh."""

    kind = "gapped"

    def __init__(self, keys: np.ndarray, config: BackendConfig,
                 name: str = "gapped") -> None:
        self.config = config
        self._stats = ShardStats()
        self._g = GappedLearnedIndex(
            keys, density=config.density, name=name, model=config.model
        )

    @property
    def index(self) -> CorrectedIndex:
        return self._g._index

    @property
    def name(self) -> str:
        return self._g.name

    def size_bytes(self) -> int:
        # model + layer over the gapped array, plus the occupancy bitmap
        return self._g._index.size_bytes() + self._g._occupied.nbytes

    def __len__(self) -> int:
        return self._g.num_keys

    def keys(self) -> np.ndarray:
        return self._g.real_keys()

    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        return self._g.rank(q, tracker)

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        return self._g.rank_batch(queries)

    def min_key(self):
        return self._g.min_key()

    def insert(self, key) -> None:
        self._g.insert(key)

    def delete(self, key) -> None:
        self._g.delete(key)

    def refresh(self) -> None:
        self._g.compact()

    @property
    def pending(self) -> int:
        return self._g.pending

    def needs_refresh(self) -> bool:
        return self._g.needs_expand()


class FenwickBackend(ShardBackend):
    """Delta-main buffers + Fenwick drift tracking (the §6 sketch)."""

    kind = "fenwick"

    def __init__(self, keys: np.ndarray, config: BackendConfig,
                 name: str = "fenwick") -> None:
        self.config = config
        self._stats = ShardStats()
        self._u = self._build(keys, name)

    def _build(self, keys: np.ndarray, name: str) -> UpdatableCorrectedIndex:
        config = self.config
        base = build_corrected_index(
            keys, config.model, config.layer, config.layer_partitions,
            config.payload_bytes, name,
        )
        # scale the merge trigger down for small shards so the delta
        # buffer can never dwarf the base it shadows (a user-supplied
        # threshold below the cap is honoured as-is)
        threshold = max(1, min(config.merge_threshold,
                               max(1, len(keys) // 4)))
        return UpdatableCorrectedIndex(base, merge_threshold=threshold)

    @property
    def index(self) -> CorrectedIndex:
        return self._u.base

    @property
    def name(self) -> str:
        return self._u.base.name

    def strategy(self) -> str:
        return super().strategy() + " + delta/tombstone merge"

    def __len__(self) -> int:
        return len(self._u)

    def keys(self) -> np.ndarray:
        return self._u.merged_keys()

    def min_key(self):
        return self._u.min_key()

    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        return self._u.lookup(q, tracker)

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        return self._u.lookup_batch(queries)

    def insert(self, key) -> None:
        self._u.insert(key)

    def delete(self, key) -> None:
        self._u.delete(key)

    def refresh(self) -> None:
        if self._u.pending_updates == 0:
            return  # nothing buffered: a rebuild would be bit-identical
        merged = self._u.merged_keys()
        if len(merged) == 0:
            raise ValueError("cannot refresh an empty shard backend")
        self._u = self._build(merged, self._u.base.name)

    @property
    def pending(self) -> int:
        return self._u.pending_updates

    def needs_refresh(self) -> bool:
        return self._u.needs_merge()


_BACKENDS = {
    "static": StaticBackend,
    "gapped": GappedBackend,
    "fenwick": FenwickBackend,
}


def make_backend(kind: str, keys: np.ndarray, config: BackendConfig,
                 name: str = "shard") -> ShardBackend:
    """Build a shard backend of ``kind`` over a sorted key slice."""
    try:
        backend_cls = _BACKENDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown backend kind {kind!r}; known: {BACKEND_KINDS}"
        ) from None
    return backend_cls(keys, config, name=name)
