"""Experiment drivers: the exact Table 1 reproduction plus smoke tests of
every table/figure driver at a small scale (the full-scale runs live in
``benchmarks/``)."""

import math

import numpy as np
import pytest

from repro.bench import experiments

SMALL = dict(n=8000, seed=17)


def test_table1_reproduces_every_paper_cell():
    """The Table 1 worked example must match the paper exactly."""
    r = experiments.table1_compact_example()
    assert r["predicted"] == r["paper_predicted"]
    assert r["error_before"] == r["paper_error_before"]
    assert r["corrected"] == r["paper_corrected"]
    assert r["error_after"] == r["paper_error_after"]
    drift_by_partition = dict(zip(r["partition"], r["mean_drift"]))
    assert drift_by_partition == r["paper_mean_drift_by_partition"]


def test_table2_driver_smoke():
    rows = experiments.table2(
        datasets=("uden32", "wiki64"),
        methods=("BS", "IM", "IM+ShiftTable", "RMI"),
        n=SMALL["n"],
        num_queries=96,
        seed=SMALL["seed"],
    )
    assert len(rows) == 8
    assert all(m.correct for m in rows if m.available)
    by = {(m.dataset, m.method): m for m in rows}
    # the paper's headline on the rough dataset: correction beats bare IM
    assert (
        by[("wiki64", "IM+ShiftTable")].ns_per_lookup
        < by[("wiki64", "IM")].ns_per_lookup
    )
    # and everything beats full binary search
    assert (
        by[("wiki64", "IM+ShiftTable")].ns_per_lookup
        < by[("wiki64", "BS")].ns_per_lookup
    )


def test_table2_reports_na_cells():
    rows = experiments.table2(
        datasets=("wiki64",), methods=("ART", "FAST"),
        n=SMALL["n"], num_queries=32, seed=SMALL["seed"],
    )
    assert all(not m.available for m in rows)
    assert all(math.isnan(m.ns_per_lookup) for m in rows)


def test_fig2_driver_shapes():
    rows = experiments.fig2_local_search(
        n=60_000, errors=(10, 100, 1000), num_queries=24, seed=SMALL["seed"]
    )
    by_method = {}
    for r in rows:
        by_method.setdefault(r["method"], []).append(r)
    assert set(by_method) >= {
        "Linear", "Binary", "Exponential", "Binary w/o model", "FAST",
        "DRAM latency",
    }
    linear = sorted(by_method["Linear"], key=lambda r: r["error"])
    assert linear[-1]["ns"] > linear[0]["ns"]  # linear degrades with error
    fast = by_method["FAST"]
    assert max(r["ns"] for r in fast) == min(r["ns"] for r in fast)  # flat


def test_fig3_driver_contrast():
    rows = experiments.fig3_distributions(
        n=SMALL["n"], datasets=("uden64", "face64"), windows=(128,),
        seed=SMALL["seed"],
    )
    lin = {r["dataset"]: r["local_linearity"] for r in rows}
    assert lin["face64"] > lin["uden64"]


def test_fig6_driver_error_collapse():
    # the paper's 200M-scale factor is ~217,000x; at this tiny test scale
    # osmc's congested partitions leave more residual error, but the
    # correction must still collapse the error by well over an order of
    # magnitude (the benchmark target runs the full scale)
    r = experiments.fig6_error_correction(n=40_000, seed=SMALL["seed"])
    assert r["mean_error_before"] > 20 * r["mean_error_after"]
    assert r["reduction_factor"] > 20


def test_fig9_driver_modes():
    rows = experiments.fig9_layer_size(
        datasets=("wiki64",), n=SMALL["n"], num_queries=64, seed=SMALL["seed"]
    )
    modes = [r["mode"] for r in rows]
    assert modes == ["R-1", "S-1", "S-10", "S-100", "S-1000",
                     "Without Shift-Table"]
    by = {r["mode"]: r for r in rows}
    # Figure 9b: error grows with compression; no layer is worst
    assert by["S-1"]["avg_error"] <= by["S-100"]["avg_error"]
    assert by["Without Shift-Table"]["avg_error"] >= by["S-10"]["avg_error"]
    # S-1 footprint is half of R-1 (paper §4.3)
    assert by["S-1"]["size_bytes"] * 2 == by["R-1"]["size_bytes"]


def test_ablation_cost_model_driver():
    rows = experiments.ablation_cost_model(
        datasets=("wiki64",), n=SMALL["n"], seed=SMALL["seed"]
    )
    r = rows[0]
    # the eq. 9/10 predictions should be the right order of magnitude
    assert 0.2 < r["predicted_with"] / r["measured_with"] < 5.0
    assert r["measured_with"] < r["measured_without"]


def test_ablation_local_threshold_driver():
    rows = experiments.ablation_local_threshold(
        thresholds=(0, 8), dataset="wiki64", n=SMALL["n"], seed=SMALL["seed"]
    )
    assert len(rows) == 2
    assert all(r["ns"] > 0 for r in rows)


def test_ablation_sampling_driver():
    rows = experiments.ablation_sampling(
        fractions=(0.05, 1.0), dataset="wiki64", n=SMALL["n"],
        seed=SMALL["seed"],
    )
    assert rows[0]["avg_error"] >= rows[1]["avg_error"]


def test_ablation_monotonicity_driver():
    rows = experiments.ablation_monotonicity(
        dataset="face64", n=SMALL["n"], seed=SMALL["seed"]
    )
    assert all(r["correct"] for r in rows)
    validated = {r["model"]: r["validated"] for r in rows}
    assert any(validated.values()) and not all(validated.values())


def test_ablation_updates_driver():
    r = experiments.ablation_updates(
        dataset="wiki64", n=SMALL["n"], num_inserts=200, seed=SMALL["seed"]
    )
    assert r["lookups_correct"]
    assert r["pending"] == 200


def test_ablation_pgm_driver():
    rows = experiments.ablation_pgm(
        dataset="face64", n=SMALL["n"], seed=SMALL["seed"]
    )
    assert len(rows) == 6
    assert all(r["correct"] for r in rows)
