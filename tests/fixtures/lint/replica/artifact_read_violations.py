"""Lint fixture: RPR6xx replication artifact-read violations.

This file is never imported, only parsed.
"""

import json

import numpy as np
from json import loads


def load_segment_fast(path):
    return np.load(path)  # expect: RPR601


def peek_manifest(path):
    with open(path) as fh:
        return json.load(fh)  # expect: RPR602


def read_state_shortcut(text):
    return loads(text)  # expect: RPR602


async def fetch_and_trust(path):
    blob = np.load(path, allow_pickle=False)  # expect: RPR601
    return blob
