"""RPR6xx — replication artifact-read discipline (``engine``/``replica``).

Replication moves checkpoint artifacts between machines, so every byte
a replica trusts must come through a checksum-verifying loader: segment
archives through ``_read_verified`` (``engine/persist.py``, CRC32C over
the manifest + every array) and manifest/state JSON through the
sanctioned readers that validate format magic and fail loudly
(``DurabilityManager._read_manifest``, ``read_replica_state``).  A raw
``np.load``/``json.loads`` of those files skips the verification a
torn ship or bit-rot depends on being caught by:

- ``RPR601``: ``np.load`` outside ``_read_verified`` — segment bytes
  trusted without checksum verification
- ``RPR602``: ``json.load(s)`` outside a sanctioned reader — manifest
  or replica-state JSON trusted without format validation
"""

from __future__ import annotations

import ast

from .framework import ModuleContext, Rule, register

#: functions allowed to deserialise manifest/state JSON directly
_SANCTIONED_JSON_READERS = (
    "_read_manifest",
    "_read_verified",
    "read_replica_state",
)

#: functions allowed to call ``np.load`` directly
_SANCTIONED_ARCHIVE_READERS = ("_read_verified",)


def _enclosing_functions(tree: ast.Module):
    """Yield ``(func_node, name_chain)`` for every function in ``tree``."""
    def visit(node, chain):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            chain = chain + (node.name,)
            yield node, chain
        for child in ast.iter_child_nodes(node):
            yield from visit(child, chain)
    yield from visit(tree, ())


def _calls_in_function(fn: ast.AST):
    """Calls belonging to ``fn`` itself (not to a nested function)."""
    def visit(node, top):
        if not top and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            yield node
        for child in ast.iter_child_nodes(node):
            yield from visit(child, False)
    yield from visit(fn, True)


def _is_module_call(ctx: ModuleContext, call: ast.Call, module: str,
                    attrs: tuple[str, ...]) -> bool:
    func = call.func
    if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
            and func.value.id in ctx.aliases_of(module)
            and func.attr in attrs):
        return True
    if isinstance(func, ast.Name):
        origin = ctx.from_imports.get(func.id)
        return origin is not None and origin[0] == module \
            and origin[1] in attrs
    return False


class _ArtifactReadRule(Rule):
    """Shared shape: flag calls outside a sanctioned-reader allowlist."""

    sanctioned: tuple[str, ...] = ()

    def _match(self, ctx: ModuleContext, call: ast.Call) -> bool:
        raise NotImplementedError

    def _message(self, fn_name: str) -> str:
        raise NotImplementedError

    def check(self, ctx: ModuleContext) -> list:
        findings = []
        for fn, chain in _enclosing_functions(ctx.tree):
            if any(name in self.sanctioned for name in chain):
                continue
            for call in _calls_in_function(fn):
                if self._match(ctx, call):
                    findings.append(self.finding(
                        ctx, call, self._message(fn.name)))
        return findings


@register
class UnverifiedArchiveRead(_ArtifactReadRule):
    """``np.load`` outside the checksum-verifying loader."""

    code = "RPR601"
    name = "unverified-archive-read"
    summary = ("np.load outside _read_verified trusts segment bytes "
               "without checksum verification — shipped or synced "
               "artifacts must go through the verified loaders")
    scope_dirs = ("engine", "replica")
    sanctioned = _SANCTIONED_ARCHIVE_READERS

    def _match(self, ctx: ModuleContext, call: ast.Call) -> bool:
        return _is_module_call(ctx, call, "numpy", ("load",))

    def _message(self, fn_name: str) -> str:
        return (f"np.load in `{fn_name}` bypasses checksum verification; "
                "read segment archives through load_shard_segment / "
                "load_index (the _read_verified path)")


@register
class UnverifiedManifestRead(_ArtifactReadRule):
    """``json.load(s)`` outside a sanctioned manifest/state reader."""

    code = "RPR602"
    name = "unverified-manifest-read"
    summary = ("json.load(s) outside the sanctioned readers trusts "
               "manifest/replica-state JSON without format validation "
               "(_read_manifest / read_replica_state / _read_verified)")
    scope_dirs = ("engine", "replica")
    sanctioned = _SANCTIONED_JSON_READERS

    def _match(self, ctx: ModuleContext, call: ast.Call) -> bool:
        return _is_module_call(ctx, call, "json", ("load", "loads"))

    def _message(self, fn_name: str) -> str:
        return (f"json deserialisation in `{fn_name}` bypasses format "
                "validation; read manifests through "
                "DurabilityManager._read_manifest and replica state "
                "through read_replica_state")
