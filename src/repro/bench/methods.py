"""The method registry: every column of Table 2, buildable by name.

Four algorithmic indexes (ART, FAST, RBS, B+tree), four on-the-fly
searches (BS, TIP, IS, IM), and the learned-index family (IM+Shift-Table,
RMI, RS, RS+Shift-Table).  Each factory returns ``(index, build_seconds)``
or raises :class:`MethodNotAvailable` with the paper's reason for an
"N/A" cell.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from ..algorithmic import (
    ART,
    BPlusTree,
    DuplicateKeyError,
    FASTree,
    KeyWidthError,
    RadixBinarySearch,
)
from ..core.corrected_index import CorrectedIndex
from ..core.records import SortedData
from ..core.shift_table import ShiftTable
from ..core.tuner import tune_radix_spline, tune_rmi
from ..hardware.tracker import NULL_TRACKER, NullTracker
from ..models.interpolation import InterpolationModel
from ..search.binary import lower_bound
from ..search.interpolation import interpolation_lower_bound
from ..search.tip import tip_lower_bound

#: Table 2 column order.
TABLE2_METHODS = (
    "ART",
    "FAST",
    "RBS",
    "B+tree",
    "BS",
    "TIP",
    "IS",
    "IM",
    "IM+ShiftTable",
    "RMI",
    "RS",
    "RS+ShiftTable",
)


class MethodNotAvailable(RuntimeError):
    """The paper reports N/A for this method/dataset combination."""


#: Tuned models memoised per (dataset name, n, family): the grid tuners
#: are the expensive part of a Table 2 run and RS / RS+ShiftTable (and
#: repeated sweeps) would otherwise re-tune identical models.
_model_cache: dict[tuple[str, int, str], object] = {}


def _cached_model(data: SortedData, family: str, build: Callable):
    key = (data.name, len(data), family)
    if key not in _model_cache:
        _model_cache[key] = build()
    return _model_cache[key]


def clear_model_cache() -> None:
    """Drop memoised tuned models (e.g. before timing builds)."""
    _model_cache.clear()


class OnTheFlyIndex:
    """Wraps a no-index search algorithm behind the index protocol."""

    def __init__(self, data: SortedData, fn: Callable, name: str) -> None:
        self.data = data
        self._fn = fn
        self.name = name

    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        return self._fn(self.data.keys, self.data.region, tracker, q)

    def size_bytes(self) -> int:
        return 0


def _default_rbs_bits(n: int) -> int:
    """Scale the radix table so buckets average ~8 records (SOSD-like)."""
    return int(min(max(math.log2(max(n, 2)) - 3, 8), 26))


def build_method(name: str, data: SortedData, seed: int = 42):
    """Build a Table 2 method over ``data``; returns (index, build_seconds).

    Raises :class:`MethodNotAvailable` for the paper's N/A combinations
    (ART on duplicate data, FAST on 64-bit keys).
    """
    keys = data.keys
    t0 = time.perf_counter()

    if name == "ART":
        try:
            index = ART(data)
        except DuplicateKeyError as exc:
            raise MethodNotAvailable(str(exc)) from exc
    elif name == "FAST":
        try:
            index = FASTree(data)
        except KeyWidthError as exc:
            raise MethodNotAvailable(str(exc)) from exc
    elif name == "RBS":
        index = RadixBinarySearch(data, radix_bits=_default_rbs_bits(len(data)))
    elif name == "B+tree":
        index = BPlusTree(data)
    elif name == "BS":
        index = OnTheFlyIndex(data, lower_bound, "BS")
    elif name == "TIP":
        index = OnTheFlyIndex(data, tip_lower_bound, "TIP")
    elif name == "IS":
        index = OnTheFlyIndex(data, interpolation_lower_bound, "IS")
    elif name == "IM":
        index = CorrectedIndex(data, InterpolationModel(keys), None, name="IM")
    elif name == "IM+ShiftTable":
        model = InterpolationModel(keys)
        layer = ShiftTable.build(keys, model)
        index = CorrectedIndex(data, model, layer, name="IM+ShiftTable")
    elif name == "RMI":
        model = _cached_model(data, "rmi", lambda: tune_rmi(data)[0])
        index = CorrectedIndex(data, model, None, name="RMI")
    elif name == "RS":
        model = _cached_model(data, "rs", lambda: tune_radix_spline(data)[0])
        index = CorrectedIndex(data, model, None, name="RS")
    elif name == "RS+ShiftTable":
        model = _cached_model(data, "rs", lambda: tune_radix_spline(data)[0])
        layer = ShiftTable.build(keys, model)
        index = CorrectedIndex(data, model, layer, name="RS+ShiftTable")
    else:
        raise KeyError(f"unknown method {name!r}; known: {TABLE2_METHODS}")

    return index, time.perf_counter() - t0
