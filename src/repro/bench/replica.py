"""Replication benchmark driver: sync cost, steady-state lag, exactness.

Two experiment axes, both oracle-gated (the driver counts mismatches
and the CLI exits nonzero on any):

* **full sync vs data size** — time :func:`repro.replica.follow` on an
  empty directory against leaders of increasing size; report wall
  time, shipped bytes and effective throughput.  Afterwards the
  replica's key array and a sampled ``lookup_many`` batch are checked
  against an ``np.searchsorted`` mirror.
* **steady-state lag vs write rate** — a writer thread applies
  single-key inserts/deletes at a target rate while a follower
  streams; the driver samples :meth:`ReplicaIndex.lag` and reports the
  mean/max LSN lag and the final catch-up.  The replica must converge
  to the exact oracle key set once the writer stops.

Used by ``benchmarks/bench_replica.py`` (CI runs it with ``--smoke``).
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from ..api import Index
from ..replica import ReplicationServer, follow

__all__ = ["run_replica_bench"]


def _make_keys(n: int, rng: np.random.Generator) -> np.ndarray:
    return np.sort(rng.choice(1 << 40, n, replace=False).astype(np.uint64))


class _OracleLeader:
    """Durable leader plus the op log that makes its history checkable."""

    def __init__(self, root: Path, n: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        self.base = _make_keys(n, rng)
        self.index = Index.build(
            self.base, backend="gapped", num_shards=4,
            durable_dir=root, durability="async")
        self.index.durability.keep_generations = 2
        self.index.checkpoint()
        self.ops: list[tuple[str, int]] = []
        self._inserts = iter(
            (rng.choice(1 << 40, max(4 * n, 10_000), replace=False)
             .astype(np.uint64) | np.uint64(1 << 41)).tolist())
        self._deletes = iter(self.base.tolist())

    def write(self, count: int) -> None:
        for i in range(count):
            if i % 4 == 3:
                key = next(self._deletes)
                self.index.delete(np.uint64(key))
                self.ops.append(("delete", key))
            else:
                key = next(self._inserts)
                self.index.insert(np.uint64(key))
                self.ops.append(("insert", key))

    def oracle(self) -> np.ndarray:
        live = set(self.base.tolist())
        for op, key in self.ops:
            (live.add if op == "insert" else live.discard)(key)
        return np.sort(np.fromiter(live, dtype=np.uint64, count=len(live)))

    def close(self) -> None:
        self.index.close()


def _verify(replica, oracle: np.ndarray, queries: int,
            rng: np.random.Generator) -> int:
    """Mismatch count across the key array + a sampled lookup batch."""
    mismatches = 0
    if not np.array_equal(replica.keys, oracle):
        mismatches += 1
    qs = rng.integers(0, 1 << 42, queries).astype(np.uint64)
    want = np.searchsorted(oracle, qs, side="left")
    if not np.array_equal(replica.lookup_many(qs), want):
        mismatches += 1
    return mismatches


async def _sync_cell(n: int, ops: int, queries: int, seed: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-repl-") as tmp:
        tmp = Path(tmp)
        leader = _OracleLeader(tmp / "leader", n, seed)
        try:
            leader.write(ops)
            async with ReplicationServer(leader.index.durability) as server:
                t0 = time.perf_counter()
                replica = await follow(server.address, tmp / "replica")
                await replica.wait_caught_up(timeout=120)
                sync_s = time.perf_counter() - t0
                mismatches = _verify(
                    replica, leader.oracle(), queries,
                    np.random.default_rng(seed + 1))
                row = {
                    "experiment": "full-sync",
                    "n": n,
                    "wal_ops": ops,
                    "sync_s": sync_s,
                    "ship_bytes": replica.bytes_synced,
                    "stream_bytes": replica.bytes_streamed,
                    "mb_per_s": (replica.bytes_synced / max(sync_s, 1e-9)
                                 / 1e6),
                    "mismatches": mismatches,
                }
                await replica.close()
                return row
        finally:
            leader.close()


async def _lag_cell(n: int, rate: int, duration_s: float, queries: int,
                    seed: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-repl-") as tmp:
        tmp = Path(tmp)
        leader = _OracleLeader(tmp / "leader", n, seed)
        stop = threading.Event()
        applied = [0]

        def writer() -> None:
            batch = max(1, rate // 100)
            period = batch / rate
            next_at = time.perf_counter()
            while not stop.is_set():
                leader.write(batch)
                applied[0] += batch
                next_at += period
                delay = next_at - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)

        try:
            async with ReplicationServer(leader.index.durability) as server:
                replica = await follow(server.address, tmp / "replica")
                thread = threading.Thread(target=writer)
                thread.start()
                samples: list[int] = []
                t_end = time.perf_counter() + duration_s
                try:
                    while time.perf_counter() < t_end:
                        await asyncio.sleep(0.05)
                        samples.append(replica.lag().lsns)
                finally:
                    stop.set()
                    thread.join()
                t0 = time.perf_counter()
                await replica.wait_caught_up(timeout=120)
                catch_up_s = time.perf_counter() - t0
                mismatches = _verify(
                    replica, leader.oracle(), queries,
                    np.random.default_rng(seed + 1))
                row = {
                    "experiment": "steady-lag",
                    "n": n,
                    "write_rate": rate,
                    "achieved_rate": applied[0] / duration_s,
                    "mean_lag_lsn": float(np.mean(samples)) if samples
                    else 0.0,
                    "max_lag_lsn": max(samples, default=0),
                    "catch_up_s": catch_up_s,
                    "streamed_records": replica.streamed_records,
                    "mismatches": mismatches,
                }
                await replica.close()
                return row
        finally:
            stop.set()
            leader.close()


def run_replica_bench(
    *,
    sizes: tuple[int, ...] = (50_000, 200_000),
    wal_ops: int = 2_000,
    rates: tuple[int, ...] = (500, 2_000),
    lag_n: int = 50_000,
    duration_s: float = 3.0,
    queries: int = 5_000,
    seed: int = 42,
) -> dict:
    """Run both experiments; returns ``{"rows": [...], "mismatches": int}``.

    Every cell is oracle-verified; ``mismatches`` is the total across
    all cells (callers gate CI on it being zero).
    """

    async def drive() -> list[dict]:
        rows = []
        for n in sizes:
            rows.append(await _sync_cell(n, wal_ops, queries, seed))
        for rate in rates:
            rows.append(await _lag_cell(
                lag_n, rate, duration_s, queries, seed))
        return rows

    rows = asyncio.run(drive())
    return {
        "rows": rows,
        "mismatches": sum(r["mismatches"] for r in rows),
        "cpu_count": os.cpu_count(),
    }
