"""Compiled builds of the :mod:`repro.kernels.cpu` kernels.

Importing this module requires numba; :mod:`repro.kernels` guards the
import and records availability on the registry.  Compilation options:

* ``cache=True``  — machine code persists in ``__pycache__`` so only the
  first process ever pays the compile;
* ``nogil=True``  — kernels release the GIL, so the
  :class:`~repro.engine.executor.BatchExecutor` thread pool gets real
  CPU parallelism across shard chunks;
* **no** ``fastmath`` — the kernels' float64 expressions must stay
  bit-identical to the numpy fallback.

Each kernel compiles lazily on first call, specialised per input dtype
(the engine serves int32/int64/uint64/float64 key domains).
"""

from __future__ import annotations

import numba

from . import cpu

_njit = numba.njit(cache=True, nogil=True)

bounded_search = _njit(cpu.bounded_search)
validated_search = _njit(cpu.validated_search)
predict_interpolation = _njit(cpu.predict_interpolation)
predict_affine = _njit(cpu.predict_affine)
predict_rmi_linear = _njit(cpu.predict_rmi_linear)
predict_rmi_cubic = _njit(cpu.predict_rmi_cubic)
predict_rmi_radix_signed = _njit(cpu.predict_rmi_radix_signed)
predict_rmi_radix_unsigned = _njit(cpu.predict_rmi_radix_unsigned)
predict_radix_spline = _njit(cpu.predict_radix_spline)
fused_window_search = _njit(cpu.fused_window_search)
fused_point_search = _njit(cpu.fused_point_search)
fused_leaf_bounds_search = _njit(cpu.fused_leaf_bounds_search)
fused_const_bounds_search = _njit(cpu.fused_const_bounds_search)
