"""Shared helpers for the benchmark targets.

Every bench prints the paper's rows/series (run pytest with ``-s`` to see
them) and records them in ``benchmark.extra_info`` for machine use.
Scale knobs: ``REPRO_SOSD_N`` (default 2,000,000 keys), ``REPRO_QUERIES``
(default 1024), ``REPRO_SEED``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import env_num_keys, env_num_queries, env_seed


@pytest.fixture(scope="session", autouse=True)
def announce_scale():
    print(
        f"\n[repro] benchmark scale: n={env_num_keys():,} keys, "
        f"{env_num_queries()} queries/method, seed={env_seed()}"
    )
    yield


def run_once(benchmark, fn):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
