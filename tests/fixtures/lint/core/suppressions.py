"""Lint fixture: suppression grammar (RPR002 reason required, RPR003
unused, and a correctly justified suppression).

This file is never imported, only parsed.  Expected findings are listed
explicitly in ``tests/test_analysis.py`` because the markers would
collide with the suppression comments under test.
"""

import numpy as np


def missing_reason(queries):
    # line below: RPR101 still fires AND the bare noqa earns RPR002
    return np.asarray(queries)  # repro: noqa[RPR101]


def unused_suppression(n):
    # line below: nothing to suppress, so the annotation earns RPR003
    total = n + 1  # repro: noqa[RPR102] — no division happens here
    return total


def justified(queries):
    # line below: suppressed cleanly, no findings at all
    return np.asarray(queries)  # repro: noqa[RPR101] — fixture of a reasoned exception
