"""Whole-engine persistence: save → load is bit-identical, and broken
files are rejected loudly (ISSUE 5 tentpole).

Round-trip properties run across all three shard backends and every
serialisable model family, with writes applied first so the archives
carry pending deltas/tombstones; corruption, version-mismatch and
not-an-index files must raise :class:`IndexPersistError` with a clear
message instead of answering queries wrongly.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import (
    SERIALIZABLE_MODELS,
    model_from_state,
    model_to_state,
)
from repro.engine import BatchExecutor, ShardedIndex
from repro.engine.persist import (
    FORMAT_VERSION,
    IndexPersistError,
    load_index,
    read_manifest,
    save_index,
)
from repro.models.factory import make_model

from helpers import queries_for, sorted_uint_arrays

BACKENDS = ("static", "gapped", "fenwick")


def make_index(keys, backend, model="interpolation", num_shards=4, **kw):
    return ShardedIndex.build(
        keys, num_shards, model=model, backend=backend, name="persist",
        **kw,
    )


def apply_writes(index, rng, inserts=30, deletes=10):
    """Mutate so gapped/fenwick shards carry pending state."""
    for k in rng.integers(0, 1 << 44, inserts, dtype=np.uint64):
        index.insert(k)
    for k in rng.choice(index.keys, min(deletes, len(index) - 1),
                        replace=False):
        index.delete(k)


def assert_equivalent(original, loaded, rng):
    """Loaded engine answers every probe class like the original."""
    assert len(loaded) == len(original)
    assert np.array_equal(loaded.offsets, original.offsets)
    assert np.array_equal(loaded.keys, original.keys)
    queries = np.concatenate([
        queries_for(original.keys, count=64),
        rng.integers(0, 1 << 45, 256, dtype=np.uint64),
    ])
    got = BatchExecutor(loaded).lookup_batch(queries)
    want = BatchExecutor(original).lookup_batch(queries)
    assert np.array_equal(got, want)
    for q in queries[:32]:
        assert loaded.lookup(q) == original.lookup(q)


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_round_trip_with_pending_writes(tmp_path, backend):
    rng = np.random.default_rng(7)
    keys = np.sort(rng.integers(0, 1 << 44, 20_000, dtype=np.uint64))
    index = make_index(keys, backend)
    apply_writes(index, rng)
    path = tmp_path / "engine.npz"
    manifest = save_index(index, path)
    assert manifest["format_version"] == FORMAT_VERSION
    loaded, loaded_manifest = load_index(path)
    assert loaded_manifest["backend"] == backend
    assert loaded.build_info()["source"] == "loaded"
    assert loaded.pending_updates() == index.pending_updates()
    assert_equivalent(index, loaded, rng)


@pytest.mark.parametrize("model", SERIALIZABLE_MODELS)
def test_round_trip_every_model_family(tmp_path, model):
    rng = np.random.default_rng(11)
    keys = np.sort(rng.integers(0, 1 << 40, 6_000, dtype=np.uint64))
    index = make_index(keys, "static", model=model, num_shards=3)
    path = tmp_path / "engine.npz"
    save_index(index, path)
    loaded, _ = load_index(path)
    assert_equivalent(index, loaded, rng)


@pytest.mark.parametrize("model", SERIALIZABLE_MODELS)
def test_model_state_codec_is_bit_identical(model):
    rng = np.random.default_rng(3)
    keys = np.sort(rng.integers(0, 1 << 40, 5_000, dtype=np.uint64))
    keys[100:140] = keys[100]  # duplicate run
    fitted = make_model(model, keys)
    restored = model_from_state(*model_to_state(fitted))
    probes = np.concatenate([
        keys[::37], keys[::41] + 1, np.asarray([0, 1 << 41], dtype=np.uint64)
    ])
    assert np.array_equal(
        fitted.predict_pos_batch(probes), restored.predict_pos_batch(probes)
    )
    for q in probes[:16]:
        assert fitted.predict_pos(q) == restored.predict_pos(q)
    assert restored.num_keys == fitted.num_keys
    assert restored.size_bytes() == fitted.size_bytes()


@settings(max_examples=25, deadline=None)
@given(keys=sorted_uint_arrays(min_size=2, max_size=300),
       backend=st.sampled_from(BACKENDS))
def test_round_trip_property(tmp_path_factory, keys, backend):
    """Any sorted uint64 array round-trips through save/load exactly."""
    path = tmp_path_factory.mktemp("persist") / "engine.npz"
    index = ShardedIndex.build(keys, 3, backend=backend, name="prop")
    save_index(index, path)
    loaded, _ = load_index(path)
    queries = queries_for(keys, count=32)
    assert np.array_equal(
        BatchExecutor(loaded).lookup_batch(queries),
        np.searchsorted(keys, queries, side="left"),
    )


def test_round_trip_after_splits_and_merges(tmp_path):
    rng = np.random.default_rng(5)
    keys = np.sort(rng.integers(0, 1 << 30, 4_000, dtype=np.uint64))
    index = make_index(keys, "gapped", num_shards=4)
    for k in rng.integers(0, 1 << 30, 6_000, dtype=np.uint64):
        index.insert(k)  # forces at least one run-aligned split
    assert index.num_splits >= 1
    path = tmp_path / "engine.npz"
    save_index(index, path)
    loaded, _ = load_index(path)
    assert loaded.num_splits == index.num_splits
    assert loaded.num_shards == index.num_shards
    assert loaded._target_shard_keys == index._target_shard_keys
    assert_equivalent(index, loaded, rng)
    # the loaded engine keeps maintaining itself correctly
    for k in rng.integers(0, 1 << 30, 500, dtype=np.uint64):
        loaded.insert(k)
        index.insert(k)
    assert np.array_equal(loaded.keys, index.keys)


def test_round_trip_autotuned_decisions_and_counters(tmp_path):
    rng = np.random.default_rng(9)
    keys = np.sort(rng.integers(0, 1 << 40, 12_000, dtype=np.uint64))
    index = make_index(keys, "gapped", num_shards=4, auto_tune=True)
    BatchExecutor(index).lookup_batch(rng.choice(keys, 2_000))
    path = tmp_path / "engine.npz"
    save_index(index, path)
    loaded, manifest = load_index(path)
    assert manifest["auto_tune"] is not None
    assert loaded.tuner is not None
    assert loaded.tuner.config == index.tuner.config
    live = [int(s) for s in index._nonempty]
    assert [loaded.shards[s].decision_label for s in live] == \
        [index.shards[s].decision_label for s in live]
    # observed workload counters survive the round trip (retune evidence)
    assert [loaded.shards[s].stats.reads for s in live] == \
        [index.shards[s].stats.reads for s in live]
    loaded.retune()  # the restored tuner is actually usable


# ----------------------------------------------------------------------
# rejection: corruption, versions, non-index files
# ----------------------------------------------------------------------
def _resave_tampered(path, out, mutate):
    """Rewrite an archive with ``mutate(payload_dict)`` applied, keeping
    the stored (now wrong, unless mutate fixes it) checksum."""
    with np.load(path, allow_pickle=False) as archive:
        payload = {name: archive[name] for name in archive.files}
    mutate(payload)
    with open(out, "wb") as fh:
        np.savez(fh, **payload)


def test_corrupted_array_fails_checksum(tmp_path):
    rng = np.random.default_rng(1)
    keys = np.sort(rng.integers(0, 1 << 40, 2_000, dtype=np.uint64))
    path = tmp_path / "good.npz"
    save_index(make_index(keys, "static"), path)
    bad = tmp_path / "bad.npz"

    def flip(payload):
        name = next(k for k in payload if k.endswith("_keys"))
        arr = payload[name].copy()
        arr[0] += 1
        payload[name] = arr

    _resave_tampered(path, bad, flip)
    with pytest.raises(IndexPersistError, match="checksum"):
        load_index(bad)
    with pytest.raises(IndexPersistError, match="checksum"):
        read_manifest(bad)


def test_truncated_file_is_rejected(tmp_path):
    rng = np.random.default_rng(2)
    keys = np.sort(rng.integers(0, 1 << 40, 2_000, dtype=np.uint64))
    path = tmp_path / "good.npz"
    save_index(make_index(keys, "static"), path)
    clipped = tmp_path / "clipped.npz"
    clipped.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    with pytest.raises(IndexPersistError):
        load_index(clipped)


def test_newer_format_version_is_rejected(tmp_path):
    rng = np.random.default_rng(3)
    keys = np.sort(rng.integers(0, 1 << 40, 1_000, dtype=np.uint64))
    path = tmp_path / "good.npz"
    save_index(make_index(keys, "static"), path)
    future = tmp_path / "future.npz"

    def bump(payload):
        manifest = json.loads(str(payload["manifest"]))
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_json = json.dumps(manifest, sort_keys=True)
        payload["manifest"] = np.asarray(manifest_json)
        # keep the checksum consistent so the *version* check fires
        from repro.engine.persist import _checksum

        arrays = {k: v for k, v in payload.items()
                  if k not in ("manifest", "checksum")}
        payload["checksum"] = np.asarray(_checksum(manifest_json, arrays))

    _resave_tampered(path, future, bump)
    with pytest.raises(IndexPersistError, match="format version"):
        load_index(future)


def test_non_index_files_are_rejected(tmp_path):
    stray = tmp_path / "stray.npz"
    np.savez(stray, data=np.arange(10))
    with pytest.raises(IndexPersistError, match="not a saved index"):
        load_index(stray)
    garbage = tmp_path / "garbage.bin"
    garbage.write_bytes(b"definitely not a zip archive")
    with pytest.raises(IndexPersistError):
        load_index(garbage)
    with pytest.raises(IndexPersistError):
        load_index(tmp_path / "missing.npz")


def test_custom_model_callable_is_rejected_at_save(tmp_path):
    from repro.models.interpolation import InterpolationModel

    keys = np.arange(1_000, dtype=np.uint64) * 7
    index = ShardedIndex.build(
        keys, 2, model=lambda ks: InterpolationModel(ks), name="custom"
    )
    with pytest.raises(IndexPersistError, match="custom model"):
        save_index(index, tmp_path / "nope.npz")


# ----------------------------------------------------------------------
# crash-safety regressions (ISSUE 6 satellites)
# ----------------------------------------------------------------------
def test_load_index_leaves_no_open_handle(tmp_path):
    """``_read_verified`` must context-manage the npz archive: a leaked
    handle keeps the file's bytes pinned and, on some platforms, blocks
    the atomic-rename overwrite of the next save."""
    path = tmp_path / "handle.npz"
    index = make_index(np.arange(500, dtype=np.uint64) * 3, "gapped")
    save_index(index, path)

    def fds_on(path):
        fd_dir = Path("/proc/self/fd")
        if not fd_dir.is_dir():  # non-Linux: skip the direct check
            pytest.skip("requires /proc/self/fd")
        target = str(path.resolve())
        hits = []
        for entry in fd_dir.iterdir():
            try:
                if os.readlink(entry) == target:
                    hits.append(entry.name)
            except OSError:
                continue
        return hits

    loaded, _ = load_index(path)
    assert fds_on(path) == []  # closed before load_index returned
    del loaded
    # and the archive can be atomically replaced straight away
    save_index(index, path)


def test_failed_save_keeps_old_archive_and_cleans_tmp(tmp_path, monkeypatch):
    """A save that dies mid-serialisation must leave the previous
    archive untouched and no temp debris behind."""
    path = tmp_path / "crash.npz"
    index = make_index(np.arange(500, dtype=np.uint64) * 3, "gapped")
    save_index(index, path)
    before = path.read_bytes()

    def boom(*args, **kwargs):
        raise OSError("disk on fire")

    monkeypatch.setattr(np, "savez", boom)
    with pytest.raises(OSError, match="disk on fire"):
        save_index(index, path)
    monkeypatch.undo()

    assert path.read_bytes() == before
    assert [p.name for p in tmp_path.iterdir()] == ["crash.npz"]
    loaded, _ = load_index(path)
    assert len(loaded) == len(index)


def test_concurrent_saves_use_unique_tmp_files(tmp_path, monkeypatch):
    """Two writers saving to the same path must not share a predictable
    ``path + ".tmp"`` scratch file (the pre-fix behaviour): each gets a
    private mkstemp name and the last rename wins with an intact file."""
    import tempfile
    import threading

    path = tmp_path / "race.npz"
    seen = []
    real_mkstemp = tempfile.mkstemp

    def recording_mkstemp(*args, **kwargs):
        fd, name = real_mkstemp(*args, **kwargs)
        seen.append(name)
        return fd, name

    monkeypatch.setattr(tempfile, "mkstemp", recording_mkstemp)
    a = make_index(np.arange(400, dtype=np.uint64) * 5, "gapped")
    b = make_index(np.arange(600, dtype=np.uint64) * 7, "static")
    threads = [threading.Thread(target=save_index, args=(ix, path))
               for ix in (a, b)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(seen) == 2 and len(set(seen)) == 2
    assert str(path) not in seen  # never the destination itself
    assert all(name != str(path) + ".tmp" for name in seen)
    loaded, _ = load_index(path)  # whichever writer won, it is intact
    assert len(loaded) in (len(a), len(b))
    assert [p.name for p in tmp_path.iterdir()] == ["race.npz"]
