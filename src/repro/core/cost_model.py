"""The Shift-Table cost model (paper §3.7, eqs. 8–10; tuning rule §3.9/§4.1).

The model predicts index latency from partition statistics without
running a full benchmark:

* eq. (8)  — expected error under a uniform-over-keys workload:
  ``ē = (1/2N) Σ C_k²``;
* eq. (9)  — latency *with* the layer:
  ``Latency(F_θ) + (1/N) Σ C_k·L(C_k)`` plus the layer's own lookup;
* eq. (10) — latency *without* the layer:
  ``Latency(F_θ) + (1/N) Σ C_k·L(|Δ̄_k|)`` with ``Δ̄_k = Δ_k + C_k/2``.

``L(s)`` — the latency of a local search over ``s`` non-cached records —
is measured once per machine by the §2.3 micro-benchmark
(:func:`measure_latency_curve`) and interpolated in log-space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..hardware.hierarchy import MemoryHierarchy
from ..hardware.machine import MachineSpec
from ..hardware.tracker import SimTracker, alloc_region
from ..search.local import bounded_local_search

#: Default cost of one Shift-Table lookup, ns (§4.1: "around 40ns").
DEFAULT_LAYER_LOOKUP_NS = 40.0

#: §4.1's tuning thresholds: skip the layer if the model error is already
#: below this, or if the layer does not cut the error by this factor.
MIN_ERROR_TO_CORRECT = 10.0
MIN_IMPROVEMENT_FACTOR = 10.0


@dataclass(frozen=True)
class LatencyCurve:
    """Piecewise log-linear interpolation of measured ``L(s)`` points."""

    sizes: np.ndarray
    latencies_ns: np.ndarray

    def __post_init__(self) -> None:
        if len(self.sizes) < 2:
            raise ValueError("need at least two measured points")
        if not np.all(np.diff(self.sizes) > 0):
            raise ValueError("sizes must be strictly increasing")

    def __call__(self, s: float | np.ndarray) -> float | np.ndarray:
        log_sizes = np.log2(self.sizes.astype(np.float64))
        s_arr = np.maximum(np.asarray(s, dtype=np.float64), 1.0)
        out = np.interp(np.log2(s_arr), log_sizes, self.latencies_ns)
        # extrapolate the DRAM-bound growth past the last measured point
        last = self.sizes[-1]
        beyond = s_arr > last
        if np.any(beyond):
            slope = (self.latencies_ns[-1] - self.latencies_ns[-2]) / (
                np.log2(self.sizes[-1]) - np.log2(self.sizes[-2])
            )
            out = np.where(
                beyond,
                self.latencies_ns[-1] + slope * (np.log2(s_arr) - np.log2(last)),
                out,
            )
        if np.isscalar(s):
            return float(out)
        return out


def measure_latency_curve(
    data: np.ndarray,
    machine: MachineSpec,
    sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 64, 256, 1024, 4096, 16384, 65536),
    queries_per_size: int = 128,
    record_bytes: int = 12,
    seed: int = 0,
    search: Callable = bounded_local_search,
) -> LatencyCurve:
    """The §2.3 micro-benchmark: local-search latency vs window size.

    For each window size ``s``, queries are placed at random positions of
    ``data`` and the bounded local search is charged against a simulated
    hierarchy warmed by the *other* queries — reproducing the paper's
    observation that the local search runs over non-cached memory.
    """
    n = len(data)
    rng = np.random.default_rng(seed)
    region = alloc_region("latcurve_data", record_bytes, n)
    points = []
    for s in sizes:
        if s >= n:
            break
        hierarchy = MemoryHierarchy(machine)
        tracker = SimTracker(hierarchy)
        positions = rng.integers(0, n - s, size=queries_per_size)
        # warm the cache with a different query set so hot lines
        # (e.g. the window arithmetic) behave as in steady state
        for p in positions[: queries_per_size // 4]:
            q = data[int(p) + s // 2] if s > 1 else data[int(p)]
            search(data, region, tracker, q, int(p), s - 1)
        hierarchy.reset_stats()
        for p in positions:
            q = data[int(p) + s // 2] if s > 1 else data[int(p)]
            search(data, region, tracker, q, int(p), s - 1)
        points.append((s, hierarchy.stats.total_ns / queries_per_size))
    sizes_arr = np.asarray([p[0] for p in points], dtype=np.int64)
    lat_arr = np.asarray([p[1] for p in points], dtype=np.float64)
    return LatencyCurve(sizes_arr, lat_arr)


# ----------------------------------------------------------------------
# the §3.7 equations
# ----------------------------------------------------------------------
def expected_error(counts: np.ndarray) -> float:
    """Eq. (8): average post-correction error for uniform key queries."""
    n = counts.sum()
    if n == 0:
        return 0.0
    return float((counts.astype(np.float64) ** 2).sum() / (2.0 * n))


def latency_with_layer(
    model_ns: float,
    counts: np.ndarray,
    curve: LatencyCurve,
    layer_ns: float = DEFAULT_LAYER_LOOKUP_NS,
) -> float:
    """Eq. (9): predicted lookup latency with the Shift-Table enabled."""
    n = counts.sum()
    if n == 0:
        return model_ns + layer_ns
    c = counts.astype(np.float64)
    occupied = c > 0
    local = (c[occupied] * curve(c[occupied])).sum() / n
    return float(model_ns + layer_ns + local)


def latency_without_layer(
    model_ns: float,
    counts: np.ndarray,
    deltas: np.ndarray,
    curve: LatencyCurve,
) -> float:
    """Eq. (10): predicted latency of the bare model.

    The model's own error for the keys of partition ``k`` is
    ``Δ̄_k = Δ_k + C_k/2`` (§3.7); the local search must cover that
    distance.
    """
    n = counts.sum()
    if n == 0:
        return model_ns
    c = counts.astype(np.float64)
    occupied = c > 0
    mid_err = np.abs(deltas.astype(np.float64) + c / 2.0)[occupied]
    local = (c[occupied] * curve(np.maximum(mid_err, 1.0))).sum() / n
    return float(model_ns + local)


def should_enable_layer(
    error_before: float, error_after: float
) -> bool:
    """§4.1's decision rule for switching the layer on.

    Do not add the layer if (1) the model's error is already below ~10
    records, or (2) correction does not cut the error by at least 10×
    (roughly the layer's 40–50 ns overhead on the error-to-latency curve).
    """
    if error_before < MIN_ERROR_TO_CORRECT:
        return False
    if error_after <= 0:
        return True
    return (error_before / error_after) >= MIN_IMPROVEMENT_FACTOR
