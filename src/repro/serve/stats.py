"""Serving telemetry: latency percentiles, batch shapes, cache health.

:class:`ServerStats` is deliberately boring — bounded-memory counters a
hot path can feed with O(1) appends.  Latencies go into a fixed-size
ring (oldest samples fall off under sustained load, which is what a
serving dashboard wants anyway); batch sizes into a histogram dict;
cache and backpressure activity into plain counters.  ``snapshot()``
renders the lot into one flat dict the CLI and benchmarks print.
"""

from __future__ import annotations

from collections import Counter, deque

import numpy as np


class ServerStats:
    """Aggregated serving metrics (latency ring, histograms, counters)."""

    def __init__(self, latency_window: int = 65536) -> None:
        self._latencies: deque = deque(maxlen=latency_window)
        self.batch_sizes: Counter = Counter()
        self.served = 0
        self.cache_hits = 0
        self.writes = 0
        self.invalidated_points = 0
        self.invalidated_ranges = 0
        self.inflight = 0
        self.peak_inflight = 0
        self.backpressure_waits = 0
        self.retunes = 0
        self.background_retunes = 0
        self.background_retune_errors = 0
        self.group_commits = 0
        self.checkpoints = 0
        self.background_checkpoints = 0
        self.background_checkpoint_errors = 0

    # ------------------------------------------------------------------
    # hot-path feeds
    # ------------------------------------------------------------------
    def record_latency(self, seconds: float) -> None:
        """One served request's submit-to-answer latency."""
        self._latencies.append(seconds)
        self.served += 1

    def record_batch(self, size: int) -> None:
        """One dispatched batch of ``size`` requests."""
        self.batch_sizes[int(size)] += 1

    def record_cache_hit(self) -> None:
        """One request answered straight from the result cache."""
        self.served += 1
        self.cache_hits += 1

    def record_write(self, dropped_points: int = 0, dropped_ranges: int = 0) -> None:
        """One applied write and the cache entries it invalidated."""
        self.writes += 1
        self.invalidated_points += dropped_points
        self.invalidated_ranges += dropped_ranges

    def request_started(self) -> None:
        """A request entered the server (tracks peak concurrency)."""
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def request_finished(self) -> None:
        """The matching exit bookend of :meth:`request_started`."""
        self.inflight -= 1

    # ------------------------------------------------------------------
    # readouts
    # ------------------------------------------------------------------
    def latency_us(self, percentile: float) -> float:
        """Latency percentile in microseconds (NaN before any sample)."""
        if not self._latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self._latencies), percentile) * 1e6)

    @property
    def num_batches(self) -> int:
        return sum(self.batch_sizes.values())

    @property
    def mean_batch_size(self) -> float:
        total = self.num_batches
        if total == 0:
            return float("nan")
        return sum(s * c for s, c in self.batch_sizes.items()) / total

    @property
    def cache_hit_rate(self) -> float:
        """Hits over all served requests (0.0 before any request)."""
        return self.cache_hits / self.served if self.served else 0.0

    def batch_histogram(self, bins=(1, 2, 4, 8, 16, 32, 64, 128, 256)) -> dict:
        """Batch-size counts rolled up into ``<=bin`` buckets."""
        out = {f"<={b}": 0 for b in bins}
        out[f">{bins[-1]}"] = 0
        for size, count in self.batch_sizes.items():
            for b in bins:
                if size <= b:
                    out[f"<={b}"] += count
                    break
            else:
                out[f">{bins[-1]}"] += count
        return out

    def snapshot(self) -> dict[str, object]:
        """Flat metrics dict (what the CLI and benchmarks print)."""
        return {
            "served": self.served,
            "p50_us": self.latency_us(50),
            "p99_us": self.latency_us(99),
            "batches": self.num_batches,
            "mean_batch": self.mean_batch_size,
            "cache_hit_rate": self.cache_hit_rate,
            "writes": self.writes,
            "invalidated_points": self.invalidated_points,
            "invalidated_ranges": self.invalidated_ranges,
            "peak_inflight": self.peak_inflight,
            "backpressure_waits": self.backpressure_waits,
            "retunes": self.retunes,
            "background_retunes": self.background_retunes,
            "background_retune_errors": self.background_retune_errors,
            "group_commits": self.group_commits,
            "checkpoints": self.checkpoints,
            "background_checkpoints": self.background_checkpoints,
            "background_checkpoint_errors": self.background_checkpoint_errors,
        }

    def describe(self) -> str:  # pragma: no cover - formatting aid
        """Multi-line text rendering of :meth:`snapshot` + histogram."""
        snap = self.snapshot()
        lines = [f"{k:>20}: {v}" for k, v in snap.items()]
        hist = self.batch_histogram()
        lines.append(f"{'batch histogram':>20}: "
                     + ", ".join(f"{k}:{v}" for k, v in hist.items() if v))
        return "\n".join(lines)
