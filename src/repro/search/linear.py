"""Linear (sequential) search with access tracing.

Two flavours are needed by the paper:

* :func:`linear_lower_bound` — forward scan over a bounded window, the
  cheap branch of Algorithm 1 (window smaller than the linear→binary
  threshold).  Sequential touches go through ``tracker.scan`` so the
  simulated prefetcher applies.
* :func:`linear_around` — unbounded bidirectional scan from a predicted
  position, the "linear search" of Figure 1a used when the correction
  layer only provides a midpoint (compressed S-mode, §3.4).
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, Region

#: Instructions charged per scanned record (compare + increment).
INSTR_PER_RECORD = 2


def linear_lower_bound(
    data: np.ndarray,
    region: Region,
    tracker: NullTracker = NULL_TRACKER,
    q: int | float = 0,
    lo: int = 0,
    hi: int | None = None,
) -> int:
    """Forward scan: first index in ``[lo, hi)`` with ``data[idx] >= q``."""
    if hi is None:
        hi = len(data)
    if lo < 0 or hi > len(data) or lo > hi:
        raise ValueError(f"invalid range [{lo}, {hi}) for array of {len(data)}")
    pos = lo
    while pos < hi and data[pos] < q:
        pos += 1
    scanned = max(pos - lo, 0) + (1 if pos < hi else 0)
    if scanned:
        tracker.scan(region, lo, lo + scanned)
        tracker.instr(scanned * INSTR_PER_RECORD)
    return pos


def linear_around(
    data: np.ndarray,
    region: Region,
    tracker: NullTracker = NULL_TRACKER,
    q: int | float = 0,
    start: int = 0,
) -> int:
    """Bidirectional scan from ``start``; returns the global lower bound.

    Walks left while the element before the cursor is ``>= q``, otherwise
    walks right while the element at the cursor is ``< q``.
    """
    n = len(data)
    pos = min(max(start, 0), n)
    if pos < n and data[pos] < q:
        # answer is to the right
        first = pos
        while pos < n and data[pos] < q:
            pos += 1
        scanned = pos - first + (1 if pos < n else 0)
        tracker.scan(region, first, first + scanned)
        tracker.instr(scanned * INSTR_PER_RECORD)
        return pos
    # answer is here or to the left
    first = pos
    while pos > 0 and data[pos - 1] >= q:
        pos -= 1
    scanned = first - pos + 1
    lo_touch = max(pos - 1, 0)
    tracker.scan(region, lo_touch, lo_touch + scanned)
    tracker.instr(scanned * INSTR_PER_RECORD)
    return pos
