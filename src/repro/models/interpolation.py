"""The dummy interpolation model ``IM`` (paper §4, "On-the-fly search").

``F_θ(x) = (x - minVal) / (maxVal - minVal)`` — two parameters, no
training.  The paper deliberately pairs this model with Shift-Table "to
purely delegate the burden of data modelling to the correction layers"
(§4.1), and its headline result is that IM+Shift-Table beats tuned RMI on
real-world data.
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker
from .base import CDFModel

#: Instructions per prediction: subtract, multiply, convert.
_INSTR_PER_PREDICT = 4


class InterpolationModel(CDFModel):
    """Min/max linear interpolation over the key domain."""

    name = "IM"
    is_monotone = True

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(len(data))
        self._min = float(data[0])
        self._max = float(data[-1])
        span = self._max - self._min
        # N / span, precomputed; degenerate (all-equal) data maps to pos 0
        self._scale = self.num_keys / span if span > 0 else 0.0

    def predict_pos(
        self, key: int | float, tracker: NullTracker = NULL_TRACKER
    ) -> float:
        tracker.instr(_INSTR_PER_PREDICT)
        return (float(key) - self._min) * self._scale

    def predict_pos_batch(self, keys: np.ndarray) -> np.ndarray:
        return (keys.astype(np.float64) - self._min) * self._scale  # repro: noqa[RPR103] — model domain is float64 by design; correction layer bounds the error

    def size_bytes(self) -> int:
        return 16  # min and scale, two doubles — lives in registers

    def kernel_spec(self) -> dict:
        return {"family": "interpolation", "kmin": self._min,
                "scale": self._scale}
