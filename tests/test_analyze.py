"""Layer analysis reports (§3.6/§3.7 introspection)."""

import numpy as np
import pytest

from repro.core.analyze import (
    CONGESTION_THRESHOLD,
    analyze_layer,
    format_report,
)
from repro.core.compact import CompactShiftTable
from repro.core.cost_model import LatencyCurve, measure_latency_curve
from repro.core.shift_table import ShiftTable
from repro.datasets import load
from repro.hardware.machine import MachineSpec
from repro.models import InterpolationModel

N = 20_000


@pytest.fixture(scope="module")
def osmc_layer():
    keys = load("osmc64", N, seed=91)
    return ShiftTable.build(keys, InterpolationModel(keys))


@pytest.fixture(scope="module")
def uden_layer():
    keys = load("uden64", N, seed=91)
    return ShiftTable.build(keys, InterpolationModel(keys))


def test_report_basic_fields(osmc_layer):
    report = analyze_layer(osmc_layer)
    assert report.num_partitions == N
    assert report.num_keys == N
    assert 0 < report.occupied_fraction <= 1
    assert report.max_count >= report.p99_count >= report.median_count
    assert report.size_bytes == osmc_layer.size_bytes()


def test_congestion_share_contrast(osmc_layer, uden_layer):
    congested = analyze_layer(osmc_layer)
    smooth = analyze_layer(uden_layer)
    assert congested.congested_key_share > smooth.congested_key_share
    assert smooth.congested_key_share == 0.0


def test_recommendation_matches_41_rule(osmc_layer, uden_layer):
    assert analyze_layer(osmc_layer).recommend_enable is True
    assert analyze_layer(uden_layer).recommend_enable is False


def test_report_with_latency_curve(osmc_layer):
    keys = load("osmc64", N, seed=91)
    machine = MachineSpec.paper().scaled_for(N, 16)
    curve = measure_latency_curve(
        keys, machine, sizes=(1, 16, 256, 4096), queries_per_size=24
    )
    report = analyze_layer(osmc_layer, curve=curve)
    assert report.predicted_ns_with is not None
    assert report.predicted_ns_with < report.predicted_ns_without
    assert report.recommend_enable is True


def test_s_mode_report_has_no_recommendation():
    keys = load("wiki64", N, seed=91)
    layer = CompactShiftTable.build(keys, InterpolationModel(keys))
    report = analyze_layer(layer)
    assert report.recommend_enable is None
    assert report.error_before is None
    assert report.expected_error_eq8 > 0


def test_format_report_renders(osmc_layer):
    text = format_report(analyze_layer(osmc_layer))
    assert "partitions:" in text
    assert "eq. 8" in text
    assert "ENABLE" in text
    assert str(CONGESTION_THRESHOLD) in text


def test_format_report_without_optional_sections():
    keys = load("wiki64", N, seed=91)
    layer = CompactShiftTable.build(keys, InterpolationModel(keys))
    text = format_report(analyze_layer(layer))
    assert "recommendation" not in text
    assert "predicted latency" not in text
