"""Binary search (``std::lower_bound`` equivalent) with access tracing.

This is both the paper's ``BS`` baseline (binary search over the whole
record array) and the bounded local-search routine used inside learned
indexes when the correction layer provides a guaranteed window
(Algorithm 1, line 8).
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, Region

#: Instructions charged per binary-search iteration (compare + branch +
#: midpoint arithmetic), matching a tight ``std::lower_bound`` loop.
INSTR_PER_ITERATION = 5


def lower_bound(
    data: np.ndarray,
    region: Region,
    tracker: NullTracker = NULL_TRACKER,
    q: int | float = 0,
    lo: int = 0,
    hi: int | None = None,
) -> int:
    """First index in ``[lo, hi)`` with ``data[idx] >= q``, else ``hi``.

    ``data`` must be sorted ascending.  Every probed element is charged to
    ``tracker`` as one touch of ``region``.
    """
    if hi is None:
        hi = len(data)
    if lo < 0 or hi > len(data) or lo > hi:
        raise ValueError(f"invalid range [{lo}, {hi}) for array of {len(data)}")
    touch = tracker.touch
    instr = tracker.instr
    while lo < hi:
        mid = (lo + hi) >> 1
        touch(region, mid)
        instr(INSTR_PER_ITERATION)
        if data[mid] < q:
            lo = mid + 1
        else:
            hi = mid
    return lo


def lower_bound_batch(data: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Vectorised lower bound for a batch of queries (no tracing)."""
    return np.searchsorted(data, queries, side="left")
