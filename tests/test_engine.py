"""Batch engine vs the scalar reference path: element-wise identical.

The acceptance bar for the engine is exactness, not plausibility: every
position a :class:`BatchExecutor` returns must be bit-identical to what
a per-query ``CorrectedIndex.lookup`` loop over the *unsharded* index
produces — for every model, both correction modes and none, duplicate
runs, and queries outside the key domain.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compact import CompactShiftTable
from repro.core.corrected_index import CorrectedIndex
from repro.core.range_query import RangeQueryEngine
from repro.core.records import SortedData
from repro.core.shift_table import ShiftTable
from repro.engine import BatchExecutor, ShardedIndex
from repro.models import make_model

from helpers import queries_for, sorted_uint_arrays

MODELS = ["linear", "rmi", "pgm", "radix_spline", "histogram", "interpolation"]
LAYERS = ["R", "S", None]


def scalar_reference(keys: np.ndarray, model_kind: str, layer_mode,
                     queries: np.ndarray) -> np.ndarray:
    """Per-query loop over one unsharded CorrectedIndex (ground truth)."""
    model = make_model(model_kind, keys)
    if layer_mode == "R":
        layer = ShiftTable.build(keys, model)
    elif layer_mode == "S":
        layer = CompactShiftTable.build(keys, model)
    else:
        layer = None
    index = CorrectedIndex(SortedData(keys), model, layer)
    return np.fromiter(
        (index.lookup(q) for q in queries), dtype=np.int64, count=len(queries)
    )


def duplicate_heavy_keys(seed: int, n: int = 3_000) -> np.ndarray:
    """Sorted keys where ~half the slots belong to fat duplicate runs."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 1 << 44, size=n // 2, dtype=np.uint64)
    runs = np.repeat(rng.choice(base, 16), n // 32)
    keys = np.concatenate([base, runs])
    keys.sort()
    return keys


@pytest.mark.parametrize("model_kind", MODELS)
@pytest.mark.parametrize("layer_mode", LAYERS)
@pytest.mark.parametrize("num_shards", [1, 5])
def test_point_lookups_match_scalar_loop(model_kind, layer_mode, num_shards):
    keys = duplicate_heavy_keys(seed=7)
    queries = queries_for(keys, rng_seed=1, count=200)
    want = scalar_reference(keys, model_kind, layer_mode, queries)

    index = ShardedIndex.build(keys, num_shards, model=model_kind,
                               layer=layer_mode)
    got = BatchExecutor(index).lookup_batch(queries)
    assert np.array_equal(got, want)
    # and both agree with the global ground truth
    assert np.array_equal(got, np.searchsorted(keys, queries, side="left"))


@pytest.mark.parametrize("layer_mode", LAYERS)
def test_range_queries_match_scalar_engine(layer_mode):
    keys = duplicate_heavy_keys(seed=11)
    rng = np.random.default_rng(2)
    lows = rng.choice(keys, 150)
    highs = lows + rng.integers(0, 1 << 40, 150, dtype=np.uint64)
    # include inverted and empty ranges
    lows[:10], highs[:10] = highs[:10], lows[:10].copy()

    model = make_model("interpolation", keys)
    layer = (ShiftTable.build(keys, model) if layer_mode == "R"
             else CompactShiftTable.build(keys, model)
             if layer_mode == "S" else None)
    scalar_engine = RangeQueryEngine(CorrectedIndex(SortedData(keys), model, layer))
    want_counts = np.asarray(
        [scalar_engine.count(lo, hi) for lo, hi in zip(lows, highs)],
        dtype=np.int64,
    )
    want_scans = [scalar_engine.scan(lo, hi) for lo, hi in zip(lows, highs)]

    executor = BatchExecutor(
        ShardedIndex.build(keys, 6, model="interpolation", layer=layer_mode)
    )
    got_counts = executor.count_batch(lows, highs)
    assert np.array_equal(got_counts, want_counts)
    for got, want in zip(executor.scan_batch(lows, highs), want_scans):
        assert np.array_equal(got, want)


@settings(max_examples=30, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=1, max_size=300),
    seed=st.integers(0, 99),
    num_shards=st.integers(1, 12),
)
def test_property_engine_exact_on_arbitrary_arrays(keys, seed, num_shards):
    queries = queries_for(keys, rng_seed=seed, count=32)
    index = ShardedIndex.build(keys, num_shards)
    got = BatchExecutor(index).lookup_batch(queries)
    assert np.array_equal(got, np.searchsorted(keys, queries, side="left"))


@settings(max_examples=20, deadline=None)
@given(
    keys=sorted_uint_arrays(min_size=2, max_size=200),
    layer=st.sampled_from(LAYERS),
)
def test_property_engine_matches_scalar_loop(keys, layer):
    queries = queries_for(keys, rng_seed=5, count=24)
    want = scalar_reference(keys, "interpolation", layer, queries)
    got = BatchExecutor(
        ShardedIndex.build(keys, 3, layer=layer)
    ).lookup_batch(queries)
    assert np.array_equal(got, want)


def test_out_of_range_and_extreme_queries():
    keys = np.sort(
        np.random.default_rng(3).integers(1 << 20, 1 << 40, 5_000,
                                          dtype=np.uint64)
    )
    queries = np.asarray(
        [0, 1, keys[0] - 1, keys[0], keys[-1], keys[-1] + 1,
         np.iinfo(np.uint64).max],
        dtype=np.uint64,
    )
    for layer in LAYERS:
        got = BatchExecutor(
            ShardedIndex.build(keys, 4, layer=layer)
        ).lookup_batch(queries)
        assert np.array_equal(got, np.searchsorted(keys, queries, side="left"))


def test_scalar_mode_and_workers_agree_with_vectorized():
    keys = duplicate_heavy_keys(seed=23, n=2_000)
    queries = queries_for(keys, rng_seed=9, count=100)
    index = ShardedIndex.build(keys, 4)
    vectorized = BatchExecutor(index).lookup_batch(queries)
    scalar = BatchExecutor(index, mode="scalar").lookup_batch(queries)
    threaded = BatchExecutor(index, workers=3).lookup_batch(queries)
    assert np.array_equal(vectorized, scalar)
    assert np.array_equal(vectorized, threaded)


def test_empty_batch_and_bad_arguments():
    keys = np.arange(100, dtype=np.uint64)
    index = ShardedIndex.build(keys, 3)
    executor = BatchExecutor(index)
    assert executor.lookup_batch(np.empty(0, dtype=np.uint64)).size == 0
    assert executor.plan(np.empty(0, dtype=np.uint64)).shards_touched == 0
    with pytest.raises(ValueError):
        BatchExecutor(index, mode="telepathic")
    with pytest.raises(ValueError):
        executor.range_batch(keys[:3], keys[:2])


def test_plan_routes_every_query_once():
    keys = duplicate_heavy_keys(seed=31, n=4_000)
    queries = queries_for(keys, rng_seed=13, count=300)
    executor = BatchExecutor(ShardedIndex.build(keys, 7), workers=2)
    plan = executor.plan(queries)
    assert plan.num_queries == len(queries)
    assert sum(s.num_queries for s in plan.slices) == len(queries)
    assert 1 <= plan.shards_touched <= 7
    text = plan.describe()
    assert "mode=vectorized" in text and "workers=2" in text
    assert executor.explain(queries) == text


def test_mismatched_integer_query_dtypes_stay_exact():
    # int64 queries against uint64 keys above 2^53: a float64 promotion
    # or a wrapping astype would both silently corrupt positions
    keys = np.sort(
        np.random.default_rng(41).integers(1 << 61, 1 << 63, 5_000,
                                           dtype=np.uint64)
    )
    queries = np.concatenate(
        [keys[:500].astype(np.int64) + 1, np.asarray([-5, -1, 0], np.int64)]
    )
    want = np.searchsorted(keys, np.maximum(queries, 0).astype(np.uint64),
                           side="left")
    for num_shards in (1, 6):
        index = ShardedIndex.build(keys, num_shards)
        got = BatchExecutor(index).lookup_batch(queries)
        assert np.array_equal(got, want)
        # negative queries precede every unsigned key
        assert got[-3] == 0 and got[-2] == 0
        # the scalar reference path must not wrap either
        assert index.lookup(np.int64(-5)) == 0
        assert index.lookup((1 << 64) - 1) == len(keys)
        scalar = BatchExecutor(index, mode="scalar").lookup_batch(queries[-3:])
        assert np.array_equal(scalar, got[-3:])

    # uint64 queries against narrower uint32 keys: above-domain lanes
    # must answer n, not wrap into the key domain
    keys32 = np.sort(
        np.random.default_rng(43).integers(0, 1 << 32, 2_000,
                                           dtype=np.uint64)
    ).astype(np.uint32)
    wide = np.asarray([0, 1 << 20, (1 << 32) - 1, 1 << 40,
                       np.iinfo(np.uint64).max], dtype=np.uint64)
    got = BatchExecutor(ShardedIndex.build(keys32, 4)).lookup_batch(wide)
    assert np.array_equal(got, np.searchsorted(keys32, wide, side="left"))
    assert got[-1] == len(keys32) and got[-2] == len(keys32)


def test_executor_accepts_bare_corrected_index():
    keys = duplicate_heavy_keys(seed=37, n=1_500)
    model = make_model("interpolation", keys)
    index = CorrectedIndex(SortedData(keys), model, ShiftTable.build(keys, model))
    queries = queries_for(keys, rng_seed=17, count=80)
    got = BatchExecutor(index).lookup_batch(queries)
    assert np.array_equal(got, np.searchsorted(keys, queries, side="left"))
