"""Bulk-loaded B+tree over a sorted array (the paper's STX ``B+tree``).

A static read-only B+tree in the STX style: the leaves are the record
array itself (clustered index), and each inner level stores the first key
of every child node in one contiguous array.  Because the tree is
bulk-loaded perfectly balanced, child pointers are implicit
(``child = node * fanout + slot``) — what remains, and what the simulator
charges, is exactly what hurts a real B+tree on modern hardware: a key
binary-search inside every node on the way down, touching one node per
level (§2.2, §5: "B+-tree is cache-efficient, but requires pointer
chasing, which incurs multiple cache misses").
"""

from __future__ import annotations

import numpy as np

from ..core.records import SortedData
from ..hardware.tracker import NULL_TRACKER, NullTracker, Region, alloc_region
from ..search.binary import lower_bound

#: STX's default: 16 keys per inner node (128 B = two cache lines of u64).
DEFAULT_FANOUT = 16


class BPlusTree:
    """Static bulk-loaded B+tree; ``lookup`` returns the lower bound."""

    def __init__(self, data: SortedData, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.data = data
        self.fanout = int(fanout)
        self.name = f"B+tree[f={fanout}]"
        self._levels: list[np.ndarray] = []
        self._regions: list[Region] = []
        self._build()

    def _build(self) -> None:
        keys = self.data.keys
        fanout = self.fanout
        n = len(keys)
        if n == 0:
            return
        # leaf "nodes" are runs of `fanout` records of the data itself;
        # the first inner level stores each leaf's first key
        level = keys[::fanout]
        depth = 0
        while True:
            self._levels.append(level)
            self._regions.append(
                alloc_region(
                    f"btree_{id(self):x}_L{depth}",
                    keys.dtype.itemsize,
                    len(level),
                )
            )
            if len(level) <= fanout:
                break
            level = level[::fanout]
            depth += 1
        # levels[0] is just above the leaves; root is levels[-1]
        self._levels.reverse()
        self._regions.reverse()

    @property
    def height(self) -> int:
        """Inner levels above the record array."""
        return len(self._levels)

    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Position of the first record with key >= q."""
        data = self.data
        n = len(data.keys)
        if n == 0:
            return 0
        node = 0
        fanout = self.fanout
        for level, region in zip(self._levels, self._regions):
            lo = node * fanout
            hi = min(lo + fanout, len(level))
            # descend into the last child whose separator is *strictly*
            # below q; a non-strict comparison would skip the start of a
            # duplicate run that straddles a node boundary
            slot = lo
            while slot < hi:
                mid = (slot + hi) >> 1
                tracker.touch(region, mid)
                tracker.instr(5)
                if level[mid] < q:
                    slot = mid + 1
                else:
                    hi = mid
            node = max(slot - 1, lo)
        # bounded search in the chosen leaf's record run; `stop` itself is
        # the correct answer when the whole run is below q (the next
        # leaf's first record)
        start = node * fanout
        stop = min(start + fanout, n)
        return lower_bound(data.keys, data.region, tracker, q, start, stop)

    def size_bytes(self) -> int:
        itemsize = self.data.keys.dtype.itemsize
        return sum(len(level) * itemsize for level in self._levels)
