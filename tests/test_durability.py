"""Crash-recovery oracle suite for the durability layer (ISSUE 6).

Every test builds the same ground truth two ways: a live engine that
applied the writes, and a recovered engine rebuilt from the durable
directory (checkpoint segments + WAL tail).  Crashes are simulated two
ways — copying the directory of a *live* manager (the OS page cache
survives a crash, open handles do not) and SIGKILLing a real child
process mid-write and mid-checkpoint.  Recovery must always land on an
acknowledged prefix of the write schedule, key for key.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ShardedIndex
from repro.engine.durability import (
    DURABLE_FORMAT_VERSION,
    MANIFEST_NAME,
    DurabilityError,
    DurabilityManager,
    is_durable_dir,
)
from repro.engine.wal import list_generations
from repro.serve import IndexServer

SRC = Path(__file__).resolve().parents[1] / "src"
BACKENDS = ("static", "gapped", "fenwick")


def make_keys(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(1 << 40, n, replace=False).astype(np.uint64))


def build(keys, backend="gapped", shards=4):
    return ShardedIndex.build(keys, shards, backend=backend, name="dur")


def fresh_keys(n, seed):
    """Keys disjoint from :func:`make_keys` (bit 41 set)."""
    rng = np.random.default_rng(seed)
    picks = rng.choice(1 << 40, n, replace=False).astype(np.uint64)
    return picks | np.uint64(1 << 41)


def apply_mixed(index, oracle, ops, seed):
    """~70% fresh inserts / 30% live deletes, mirrored into ``oracle``."""
    rng = np.random.default_rng(seed)
    fresh = iter(int(k) for k in fresh_keys(2 * ops, seed + 1))
    for i in range(ops):
        if i % 10 < 7:
            key = next(fresh)
            index.insert(np.uint64(key))
            oracle.append(key)
        else:
            key = oracle.pop(int(rng.integers(len(oracle))))
            index.delete(np.uint64(key))


def crash_image(db: Path, dst: Path) -> Path:
    """Copy a *live* durable dir: what a kill -9 leaves on disk."""
    shutil.copytree(db, dst)
    return dst


def assert_same_keys(recovered: ShardedIndex, live: ShardedIndex) -> None:
    assert np.array_equal(np.sort(recovered.keys), np.sort(live.keys))


# ----------------------------------------------------------------------
# checkpoint → crash → recover round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_checkpoint_plus_tail_recovers_oracle(self, tmp_path, backend):
        keys = make_keys()
        index = build(keys, backend)
        oracle = [int(k) for k in keys]
        with DurabilityManager.create(index, tmp_path / "db",
                                      sync="always") as mgr:
            apply_mixed(index, oracle, 300, seed=11)
            mgr.checkpoint()
            apply_mixed(index, oracle, 300, seed=12)
            crash = crash_image(tmp_path / "db", tmp_path / "crash")

        rec = DurabilityManager.recover(crash)
        try:
            assert rec.index.source == "recovered"
            assert rec.index.backend_kind == backend
            assert_same_keys(rec.index, index)
            assert sorted(oracle) == np.sort(rec.index.keys).tolist()
            # recovered engine answers queries like the live one
            qs = np.sort(rec.index.keys)[::97]
            assert np.array_equal(rec.index.lookup_batch(qs),
                                  index.lookup_batch(qs))
        finally:
            rec.close()

    def test_clean_reopen_replays_nothing_after_checkpoint(self, tmp_path):
        index = build(make_keys(1000))
        with DurabilityManager.create(index, tmp_path / "db") as mgr:
            apply_mixed(index, [int(k) for k in index.keys], 50, seed=3)
            mgr.checkpoint()
            generation = mgr.generation
        rec = DurabilityManager.recover(tmp_path / "db")
        assert rec.replayed == 0 and rec.skipped == 0
        assert rec.generation == generation
        assert_same_keys(rec.index, index)
        rec.close()

    def test_recovery_without_checkpoint_replays_whole_tail(self, tmp_path):
        index = build(make_keys(1000))
        mgr = DurabilityManager.create(index, tmp_path / "db", sync="always")
        for k in fresh_keys(40, seed=7):
            index.insert(k)
        crash = crash_image(tmp_path / "db", tmp_path / "crash")
        mgr.close()
        rec = DurabilityManager.recover(crash)
        assert rec.replayed == 40 and rec.skipped == 0
        assert_same_keys(rec.index, index)
        rec.close()

    def test_second_crash_after_recovery_still_recovers(self, tmp_path):
        index = build(make_keys(1000))
        oracle = [int(k) for k in index.keys]
        mgr = DurabilityManager.create(index, tmp_path / "db", sync="always")
        apply_mixed(index, oracle, 100, seed=21)
        first = crash_image(tmp_path / "db", tmp_path / "crash1")
        mgr.close()

        rec1 = DurabilityManager.recover(first)
        apply_mixed(rec1.index, oracle, 100, seed=22)
        second = crash_image(first, tmp_path / "crash2")
        rec1.close()

        rec2 = DurabilityManager.recover(second)
        assert sorted(oracle) == np.sort(rec2.index.keys).tolist()
        rec2.close()

    def test_checkpoint_gcs_wal_and_stale_segments(self, tmp_path):
        index = build(make_keys(1000))
        with DurabilityManager.create(index, tmp_path / "db") as mgr:
            apply_mixed(index, [int(k) for k in index.keys], 60, seed=5)
            mgr.checkpoint()
            gen = mgr.generation
            assert list_generations(tmp_path / "db" / "wal") == [gen]
            names = {
                p.name for p in (tmp_path / "db" / "segments").iterdir()
            }
            assert names == {
                f"g{gen:010d}-s{s:04d}.npz"
                for s in range(index.num_shards)
            }

    def test_config_and_sync_round_trip_through_manifest(self, tmp_path):
        index = build(make_keys(500))
        cfg = {"model": "interpolation", "durability": "always"}
        mgr = DurabilityManager.create(
            index, tmp_path / "db", sync="always", index_config=cfg
        )
        mgr.close()
        rec = DurabilityManager.recover(tmp_path / "db")
        assert rec.sync == "always"  # policy persisted in the manifest
        assert rec.index_config == cfg
        rec.close()
        override = DurabilityManager.recover(tmp_path / "db", sync="async")
        assert override.sync == "async"
        override.close()

    def test_delete_all_then_insert_replays_through_empty(self, tmp_path):
        """The WAL tail may pass through an empty index; recovery must
        re-seed the engine from the first insert after the trough."""
        keys = make_keys(8)
        index = build(keys, shards=1)
        mgr = DurabilityManager.create(index, tmp_path / "db", sync="always")
        for k in keys:
            index.delete(k)
        reborn = [int(k) for k in fresh_keys(5, seed=9)]
        for k in reborn:
            index.insert(np.uint64(k))
        crash = crash_image(tmp_path / "db", tmp_path / "crash")
        mgr.close()
        rec = DurabilityManager.recover(crash)
        assert np.sort(rec.index.keys).tolist() == sorted(reborn)
        rec.close()

    def test_maintenance_resumes_after_checkpoint(self, tmp_path):
        index = build(make_keys(500))
        with DurabilityManager.create(index, tmp_path / "db") as mgr:
            mgr.checkpoint()
            assert not index._defer_maintenance
            mgr.checkpoint(resume=False)
            assert index._defer_maintenance  # caller's job now
            index.resume_maintenance()
            assert not index._defer_maintenance


# ----------------------------------------------------------------------
# error paths
# ----------------------------------------------------------------------
class TestErrors:
    def test_recover_refuses_non_durable_dir(self, tmp_path):
        (tmp_path / "plain").mkdir()
        with pytest.raises(DurabilityError, match="not a durable index"):
            DurabilityManager.recover(tmp_path / "plain")
        assert not is_durable_dir(tmp_path / "plain")

    def test_create_refuses_existing_durable_dir(self, tmp_path):
        index = build(make_keys(200))
        DurabilityManager.create(index, tmp_path / "db").close()
        assert is_durable_dir(tmp_path / "db")
        with pytest.raises(DurabilityError, match="recover"):
            DurabilityManager.create(build(make_keys(200)), tmp_path / "db")

    def test_checkpoint_refuses_empty_index(self, tmp_path):
        keys = make_keys(4)
        index = build(keys, shards=1)
        with DurabilityManager.create(index, tmp_path / "db",
                                      sync="always") as mgr:
            for k in keys:
                index.delete(k)
            with pytest.raises(DurabilityError, match="empty"):
                mgr.checkpoint()

    def test_closed_manager_refuses_checkpoint(self, tmp_path):
        index = build(make_keys(200))
        mgr = DurabilityManager.create(index, tmp_path / "db")
        mgr.close()
        mgr.close()  # idempotent
        with pytest.raises(DurabilityError, match="closed"):
            mgr.checkpoint()

    def test_future_layout_version_rejected(self, tmp_path):
        index = build(make_keys(200))
        DurabilityManager.create(index, tmp_path / "db").close()
        manifest_path = tmp_path / "db" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = DURABLE_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DurabilityError, match="version"):
            DurabilityManager.recover(tmp_path / "db")

    def test_garbage_manifest_rejected(self, tmp_path):
        index = build(make_keys(200))
        DurabilityManager.create(index, tmp_path / "db").close()
        (tmp_path / "db" / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(DurabilityError, match="unreadable"):
            DurabilityManager.recover(tmp_path / "db")


# ----------------------------------------------------------------------
# crash at every cut point (hypothesis-driven schedules)
# ----------------------------------------------------------------------
class TestCrashCutProperty:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, (1 << 40) - 1)),
            max_size=40,
        ),
        cut=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_recovery_is_exact_at_any_cut(self, tmp_path_factory, ops, cut):
        """``sync="always"`` acknowledges inside the write call, so the
        crash image at any cut point must recover to *exactly* the
        prefix applied so far — writes after the cut never leak in."""
        tmp = tmp_path_factory.mktemp("crashcut")
        base = (np.arange(1, 129, dtype=np.uint64) * 977) | np.uint64(1 << 41)
        index = build(base, shards=2)
        oracle = [int(k) for k in base]
        mgr = DurabilityManager.create(index, tmp / "db", sync="always")

        def apply(is_insert, value):
            if is_insert or not oracle:
                index.insert(np.uint64(value))
                oracle.append(value)
            else:
                key = oracle.pop(value % len(oracle))
                index.delete(np.uint64(key))

        cut = min(cut, len(ops))
        for is_insert, value in ops[:cut]:
            apply(is_insert, value)
        prefix = sorted(oracle)
        crash = crash_image(tmp / "db", tmp / "crash")
        for is_insert, value in ops[cut:]:
            apply(is_insert, value)
        mgr.close()

        rec = DurabilityManager.recover(crash)
        assert np.sort(rec.index.keys).tolist() == prefix
        rec.close()


# ----------------------------------------------------------------------
# checkpoints racing live writers
# ----------------------------------------------------------------------
class TestConcurrentCheckpoint:
    def test_checkpoints_under_write_load_lose_nothing(self, tmp_path):
        index = build(make_keys(3000), shards=4)
        mgr = DurabilityManager.create(index, tmp_path / "db", sync="async")
        supply = fresh_keys(20_000, seed=31)
        stop = threading.Event()
        cursor = {"n": 0}

        def writer():
            i = 0
            while not stop.is_set() and i < len(supply):
                index.insert(supply[i])
                i += 1
            cursor["n"] = i

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(4):
                mgr.checkpoint()
        finally:
            stop.set()
            thread.join()
        assert not index._defer_maintenance
        mgr.commit()
        crash = crash_image(tmp_path / "db", tmp_path / "crash")
        mgr.close()

        rec = DurabilityManager.recover(crash)
        assert_same_keys(rec.index, index)
        assert len(rec.index) == 3000 + cursor["n"]
        rec.close()


# ----------------------------------------------------------------------
# real SIGKILL, real process (the ISSUE acceptance harness)
# ----------------------------------------------------------------------
CHILD = """
import sys, time
from pathlib import Path
import numpy as np
from repro.engine import ShardedIndex
from repro.engine.durability import DurabilityManager

work = Path(sys.argv[1])
seed, nbase, ops, ckpt_every = map(int, sys.argv[2:6])
rng = np.random.default_rng(seed)
keys = np.sort(rng.choice(1 << 40, nbase, replace=False).astype(np.uint64))
index = ShardedIndex.build(keys, 4, backend="gapped", name="kill")
mgr = DurabilityManager.create(index, work / "db", sync="always")
live = [int(k) for k in keys]
fresh = iter(
    int(k) for k in
    (rng.choice(1 << 40, 2 * ops, replace=False).astype(np.uint64)
     | np.uint64(1 << 41))
)
intent = open(work / "intent.log", "w")
acked = open(work / "acked.log", "w")
for i in range(ops):
    if rng.random() < 0.7 or not live:
        op, key = "insert", next(fresh)
    else:
        op, key = "delete", live.pop(int(rng.integers(len(live))))
    intent.write(f"{op} {key}\\n")
    intent.flush()  # in the OS page cache: survives SIGKILL
    if op == "insert":
        index.insert(np.uint64(key))
        live.append(key)
    else:
        index.delete(np.uint64(key))
    acked.write(f"{i}\\n")
    acked.flush()
    if ckpt_every and (i + 1) % ckpt_every == 0:
        mgr.checkpoint()
(work / "done").write_text("done")
time.sleep(30)  # hold still so the parent's SIGKILL always lands
"""


class TestKillRecovery:
    SEED = 424242
    NBASE = 2500
    OPS = 2000

    def run_kill(self, tmp_path, ckpt_every, kill_after_acks=150):
        work = tmp_path
        env = dict(os.environ, PYTHONPATH=str(SRC))
        stderr = open(work / "stderr.log", "wb")
        proc = subprocess.Popen(
            [sys.executable, "-c", CHILD, str(work), str(self.SEED),
             str(self.NBASE), str(self.OPS), str(ckpt_every)],
            env=env, stderr=stderr,
        )
        try:
            acked_path = work / "acked.log"
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    pytest.fail(
                        "child exited before the kill: "
                        + (work / "stderr.log").read_text()
                    )
                if (acked_path.exists()
                        and acked_path.read_bytes().count(b"\n")
                        >= kill_after_acks):
                    break
                time.sleep(0.002)
            else:
                pytest.fail("child never reached the kill point")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
        finally:
            stderr.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert not (work / "done").exists(), "kill landed after the run"
        return work

    def check_recovery_matches_acknowledged_prefix(self, work):
        """Recovered keys == oracle after m ops, for an m no older than
        the last acknowledged op and no newer than the last attempted."""
        rng = np.random.default_rng(self.SEED)
        base = np.sort(
            rng.choice(1 << 40, self.NBASE, replace=False).astype(np.uint64)
        )
        intent_ops = []
        for line in (work / "intent.log").read_text().splitlines():
            op, key = line.split()
            intent_ops.append((op, int(key)))
        n_acked = (work / "acked.log").read_bytes().count(b"\n")
        assert n_acked <= len(intent_ops)

        rec = DurabilityManager.recover(work / "db")
        try:
            recovered = np.sort(rec.index.keys).tolist()
        finally:
            rec.close()

        oracle = sorted(int(k) for k in base)
        import bisect

        def step(op, key):
            if op == "insert":
                bisect.insort(oracle, key)
            else:
                oracle.pop(bisect.bisect_left(oracle, key))

        for op, key in intent_ops[:n_acked]:
            step(op, key)
        for m in range(n_acked, len(intent_ops) + 1):
            if recovered == oracle:
                return m, n_acked, len(intent_ops)
            if m < len(intent_ops):
                step(*intent_ops[m])
        pytest.fail(
            f"recovered state matches no acknowledged prefix "
            f"(acked={n_acked}, attempted={len(intent_ops)})"
        )

    def test_sigkill_mid_wal_append(self, tmp_path):
        work = self.run_kill(tmp_path, ckpt_every=0)
        m, n_acked, n_intent = \
            self.check_recovery_matches_acknowledged_prefix(work)
        assert n_acked <= m <= n_intent

    def test_sigkill_mid_checkpoint(self, tmp_path):
        work = self.run_kill(tmp_path, ckpt_every=25, kill_after_acks=180)
        m, n_acked, n_intent = \
            self.check_recovery_matches_acknowledged_prefix(work)
        assert n_acked <= m <= n_intent


# ----------------------------------------------------------------------
# serving-layer integration: group commit + background checkpoints
# ----------------------------------------------------------------------
class TestServeDurable:
    def test_group_commit_acks_and_background_checkpoints(self, tmp_path):
        index = build(make_keys(2000))
        mgr = DurabilityManager.create(index, tmp_path / "db", sync="group")

        async def run():
            async with IndexServer(
                index, durability=mgr, checkpoint_interval=0.05
            ) as server:
                for k in fresh_keys(64, seed=41):
                    await server.insert(k)
                    # the await contract: once a write returns, it is on
                    # disk — the group fsync covered its LSN
                    assert mgr.durable_lsn >= mgr.last_lsn
                await server.checkpoint()
                snap = server.stats.snapshot()
                assert snap["checkpoints"] >= 1
                assert snap["group_commits"] >= 1
                deadline = time.monotonic() + 5
                while (server.stats.background_checkpoints == 0
                       and time.monotonic() < deadline):
                    await asyncio.sleep(0.02)
                assert server.stats.background_checkpoints >= 1
                assert server.checkpoint_error is None

        asyncio.run(run())
        crash = crash_image(tmp_path / "db", tmp_path / "crash")
        mgr.close()
        rec = DurabilityManager.recover(crash)
        assert_same_keys(rec.index, index)
        rec.close()

    def test_concurrent_writers_share_one_fsync(self, tmp_path):
        index = build(make_keys(2000))
        mgr = DurabilityManager.create(index, tmp_path / "db", sync="group")

        async def run():
            async with IndexServer(index, durability=mgr) as server:
                keys = fresh_keys(200, seed=43)
                await asyncio.gather(
                    *(server.insert(k) for k in keys)
                )
                assert mgr.durable_lsn >= mgr.last_lsn
                return server.stats.snapshot()

        snap = asyncio.run(run())
        # far fewer fsyncs than writes is the whole point of group commit
        assert 1 <= snap["group_commits"] < 200
        mgr.close()

    def test_checkpoint_interval_requires_durability(self):
        index = build(make_keys(200))
        with pytest.raises(ValueError, match="durability"):
            IndexServer(index, checkpoint_interval=1.0)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            IndexServer(index, durability=object(), checkpoint_interval=0)

    def test_server_checkpoint_without_durability_raises(self):
        index = build(make_keys(200))

        async def run():
            async with IndexServer(index) as server:
                with pytest.raises(ValueError, match="durability"):
                    await server.checkpoint()

        asyncio.run(run())


# ----------------------------------------------------------------------
# runtime durability sanitizer (repro.analysis.sanitizers)
# ----------------------------------------------------------------------
class TestDurabilitySanitizer:
    """The RPR3xx invariant at runtime: apply order equals LSN order,
    every content-changing write is logged exactly once, and the durable
    LSN never moves backwards."""

    def test_clean_lifecycle(self, tmp_path):
        from repro.analysis import DurabilitySanitizer

        index = build(make_keys(1000))
        oracle = [int(k) for k in index.keys]
        with DurabilityManager.create(index, tmp_path / "db") as mgr:
            san = DurabilitySanitizer.install(mgr)
            try:
                apply_mixed(index, oracle, 120, seed=21)
                mgr.wal.commit()
                mgr.checkpoint()
                # checkpoint rotates the WAL in place; the wrapped
                # methods must keep validating post-rotation appends
                apply_mixed(index, oracle, 60, seed=22)
                mgr.wal.commit()
            finally:
                san.uninstall()
        rec = DurabilityManager.recover(tmp_path / "db")
        try:
            assert sorted(oracle) == np.sort(rec.index.keys).tolist()
        finally:
            rec.close()

    def test_rogue_append_breaks_apply_order(self, tmp_path):
        from repro.analysis import DurabilitySanitizer, SanitizerError
        from repro.engine.wal import OP_INSERT

        index = build(make_keys(500))
        with DurabilityManager.create(index, tmp_path / "db") as mgr:
            san = DurabilitySanitizer.install(mgr)
            try:
                # log a write that was never applied to the index: the
                # next real insert sees two appends for one event
                mgr.wal.append(OP_INSERT, 0, 7)
                with pytest.raises(SanitizerError, match="2 WAL appends"):
                    index.insert(next(iter(fresh_keys(1, seed=31))))
            finally:
                san.uninstall()

    def test_mismatched_tail_record_detected(self, tmp_path):
        from repro.analysis import DurabilitySanitizer, SanitizerError
        from repro.engine.wal import OP_DELETE

        index = build(make_keys(500))
        with DurabilityManager.create(index, tmp_path / "db") as mgr:
            # under REPRO_SANITIZE=1 install_global() already attached a
            # sanitizer; detach it so only ours observes the evil logger
            global_san = getattr(mgr, "_durability_sanitizer", None)
            if global_san is not None:
                global_san.uninstall()
            # replace the manager's listener with one that logs the
            # wrong opcode, simulating an apply/log divergence
            index.remove_write_listener(mgr._on_write)

            def evil(event):
                if event.kind in ("insert", "delete"):
                    mgr.wal.append(OP_DELETE, event.shard, event.key)

            index.add_write_listener(evil)
            san = DurabilitySanitizer.install(mgr)
            try:
                with pytest.raises(SanitizerError,
                                   match="does not match WriteEvent"):
                    index.insert(next(iter(fresh_keys(1, seed=32))))
            finally:
                san.uninstall()
                index.remove_write_listener(evil)
                # restore the real listener so close() finds it
                index.add_write_listener(mgr._on_write)
