"""RPR1xx — dtype safety in the predict→correct→search path.

Shift-Table's correctness argument (§3 of the paper) assumes rank
arithmetic is exact in the key dtype.  One stray ``np.asarray`` without
a dtype on a mixed query list silently infers float64 and corrupts any
uint64 key above 2**53 (PR 1/PR 3 both fixed instances of this), so the
rules here flag the three ways the upcast sneaks in:

- ``RPR101``: ``np.array``/``np.asarray`` on query input without an
  explicit dtype, outside the designated normalisation helpers
- ``RPR102``: true division on key/rank arrays (promotes to float64;
  use ``//`` or cast through the correction layer)
- ``RPR103``: ``astype`` to a float dtype on key-like arrays without an
  explicit ``casting=`` policy
"""

from __future__ import annotations

import ast

from .framework import ModuleContext, Rule, register

#: Functions that ARE the sanctioned query normalisation layer: calling
#: one of these in the same function body proves the raw conversion is
#: followed by exact dtype handling.
NORMALIZER_CALLS = frozenset({
    "normalize_query_dtype",
    "coerce_query_array",
    "ensure_kernel_query_dtype",
    "route_batch",
    "_query_array",
})

#: Functions whose whole body is exempt — they implement normalisation.
NORMALIZER_DEFS = frozenset({
    "normalize_query_dtype",
    "coerce_query_array",
})

_QUERY_EXACT = frozenset({"q", "qs", "probes", "lo", "hi", "lows", "highs"})
_KEY_EXACT = frozenset({
    "key", "keys", "q", "query", "queries",
    "rank", "ranks", "position", "positions",
})
_KEY_SUFFIXES = ("_key", "_keys", "_rank", "_ranks",
                 "_position", "_positions", "_query", "_queries")
_COUNT_PREFIXES = ("num_", "n_", "count", "len_", "total_")


def is_queryish(name: str) -> bool:
    """Identifier that plausibly carries raw client query values."""
    return name in _QUERY_EXACT or "quer" in name


def is_keyish(name: str) -> bool:
    """Identifier that plausibly carries key/rank arrays (not counts)."""
    if name.startswith(_COUNT_PREFIXES):
        return False
    return name in _KEY_EXACT or name.endswith(_KEY_SUFFIXES)


def names_in(node: ast.AST):
    """Every identifier mentioned in an expression (Names and attrs)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def innermost_receiver(node: ast.AST) -> str | None:
    """The variable name a method call is ultimately invoked on."""
    while True:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Subscript):
            node = node.value
            continue
        return None


def _calls_normalizer(func_node: ast.AST) -> bool:
    for sub in ast.walk(func_node):
        if isinstance(sub, ast.Call):
            callee = sub.func
            name = (callee.attr if isinstance(callee, ast.Attribute)
                    else callee.id if isinstance(callee, ast.Name) else None)
            if name in NORMALIZER_CALLS:
                return True
    return False


def _numpy_converter(ctx: ModuleContext, call: ast.Call) -> str | None:
    """``"array"``/``"asarray"`` when the call is a numpy conversion."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in ctx.numpy_aliases and func.attr in (
                "array", "asarray", "asanyarray"):
            return func.attr
    elif isinstance(func, ast.Name):
        target = ctx.numpy_names.get(func.id)
        if target in ("array", "asarray", "asanyarray"):
            return target
    return None


def _has_dtype(call: ast.Call) -> bool:
    if any(kw.arg == "dtype" for kw in call.keywords):
        return True
    # np.array(obj, dtype) / np.asarray(obj, dtype) positional form
    return len(call.args) >= 2


_DTYPE_SCOPE = ("core", "models", "search", "engine", "serve")


@register
class UntypedQueryConversion(Rule):
    """``np.asarray(queries)`` without a dtype outside the normalisers."""

    code = "RPR101"
    name = "untyped-query-conversion"
    summary = ("np.array/np.asarray on query input without an explicit "
               "dtype can infer float64 and corrupt keys above 2**53")
    scope_dirs = _DTYPE_SCOPE
    scope_files = ("api.py",)

    def check(self, ctx: ModuleContext) -> list:
        findings = []
        exempt_cache: dict[ast.AST, bool] = {}

        def exempt(fn) -> bool:
            if fn not in exempt_cache:
                exempt_cache[fn] = (fn.name in NORMALIZER_DEFS
                                    or _calls_normalizer(fn))
            return exempt_cache[fn]

        def visit(node, stack) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack = stack + [node]
            if isinstance(node, ast.Call):
                conv = _numpy_converter(ctx, node)
                if (conv is not None and not _has_dtype(node) and node.args
                        and any(is_queryish(n)
                                for n in names_in(node.args[0]))
                        and not any(exempt(fn) for fn in stack)):
                    findings.append(self.finding(
                        ctx, node,
                        f"np.{conv} on query input without an explicit "
                        "dtype; mixed int/float extremes infer float64 and "
                        "corrupt keys above 2**53 — pass dtype= or route "
                        "through coerce_query_array/normalize_query_dtype"))
            for child in ast.iter_child_nodes(node):
                visit(child, stack)

        visit(ctx.tree, [])
        return findings


@register
class KeyTrueDivision(Rule):
    """``/`` on key or rank arrays promotes to float64."""

    code = "RPR102"
    name = "key-true-division"
    summary = ("true division on key/rank arrays promotes uint64 to "
               "float64; use // or an explicit, bounded float transform")
    scope_dirs = ("core", "models", "search", "engine")

    def check(self, ctx: ModuleContext) -> list:
        findings = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Div)):
                continue
            hot = [n for side in (node.left, node.right)
                   for n in names_in(side) if is_keyish(n)]
            if hot:
                findings.append(self.finding(
                    ctx, node,
                    f"true division involving key/rank data "
                    f"({', '.join(sorted(set(hot)))}) promotes to float64; "
                    "use // for rank arithmetic or isolate the float "
                    "transform behind the correction layer"))
        return findings


@register
class UncheckedFloatCast(Rule):
    """``keys.astype(np.float64)`` without an explicit casting policy."""

    code = "RPR103"
    name = "unchecked-float-cast"
    summary = ("astype to float on key-like arrays without casting= hides "
               "precision loss above 2**53")
    scope_dirs = ("core", "models", "search", "engine")

    def check(self, ctx: ModuleContext) -> list:
        findings = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"):
                continue
            receiver = innermost_receiver(node.func.value)
            if receiver is None or not is_keyish(receiver):
                continue
            if not node.args or not _is_float_dtype(node.args[0]):
                continue
            if any(kw.arg == "casting" for kw in node.keywords):
                continue
            findings.append(self.finding(
                ctx, node,
                f"{receiver}.astype(<float>) without casting=; keys above "
                "2**53 lose precision silently — state the intent with "
                "casting='same_kind' (and bound the error downstream) or "
                "keep the integer dtype"))
        return findings


def _is_float_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    else:
        return False
    return name.startswith(("float", "double")) or name in ("half", "single")
