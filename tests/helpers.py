"""Shared hypothesis strategies and query builders for the test suite.

Lives in a plain module (not ``conftest.py``) so test files can import it
explicitly.  ``benchmarks/conftest.py`` also exists in this repo, and a
bare ``from conftest import ...`` resolves to whichever conftest pytest
imported first — a collection-order landmine this module sidesteps.
Fixtures stay in ``tests/conftest.py``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st


def sorted_uint_arrays(
    min_size: int = 1,
    max_size: int = 400,
    max_value: int = (1 << 48) - 1,
    allow_duplicates: bool = True,
):
    """Hypothesis strategy: sorted numpy uint64 arrays."""
    elements = st.integers(min_value=0, max_value=max_value)
    lists = st.lists(elements, min_size=min_size, max_size=max_size)
    if not allow_duplicates:
        lists = st.lists(
            elements, min_size=min_size, max_size=max_size, unique=True
        )

    def to_array(values: list[int]) -> np.ndarray:
        return np.sort(np.asarray(values, dtype=np.uint64))

    return lists.map(to_array)


def queries_for(keys: np.ndarray, rng_seed: int = 0, count: int = 64) -> np.ndarray:
    """Deterministic mixed query set: stored keys, neighbours, extremes."""
    rng = np.random.default_rng(rng_seed)
    picks = rng.choice(keys, size=min(count, len(keys)))
    neighbours = np.concatenate([picks, picks + 1, np.maximum(picks, 1) - 1])
    lo, hi = int(keys.min()), int(keys.max())
    extremes = np.asarray(
        [0, lo, max(lo - 1, 0), hi, hi + 1], dtype=np.uint64
    )
    return np.concatenate([neighbours, extremes]).astype(keys.dtype)
