"""Least-squares single-line model (Figure 6's "simple model").

One straight line fitted to the (key, position) pairs by least squares.
Like IM it cannot capture any micro-structure; unlike IM it minimises the
global squared error, which is the configuration Figure 6 uses to show the
Shift-Table layer absorbing a 28-million-key average error.
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker
from .base import CDFModel

_INSTR_PER_PREDICT = 4


class LinearModel(CDFModel):
    """``pos ≈ slope · key + intercept`` fitted by least squares."""

    name = "Linear"

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(len(data))
        x = data.astype(np.float64)
        y = np.arange(len(data), dtype=np.float64)
        # closed-form simple linear regression, centred for stability
        x_mean = x.mean()
        y_mean = y.mean()
        var = ((x - x_mean) ** 2).sum()
        if var > 0:
            self.slope = float(((x - x_mean) * (y - y_mean)).sum() / var)
        else:
            self.slope = 0.0
        self.intercept = float(y_mean - self.slope * x_mean)
        # a negative slope would violate the §3.8 validity constraint; it
        # can only arise on degenerate (constant-key) data where var == 0
        self.is_monotone = self.slope >= 0.0

    def predict_pos(
        self, key: int | float, tracker: NullTracker = NULL_TRACKER
    ) -> float:
        tracker.instr(_INSTR_PER_PREDICT)
        return self.slope * float(key) + self.intercept

    def predict_pos_batch(self, keys: np.ndarray) -> np.ndarray:
        return self.slope * keys.astype(np.float64) + self.intercept  # repro: noqa[RPR103] — least-squares fit is float by design; correction layer bounds the error

    def size_bytes(self) -> int:
        return 16

    def kernel_spec(self) -> dict:
        return {"family": "affine", "slope": self.slope,
                "intercept": self.intercept}
