"""Benchmark harness: workloads, the measurement loop, the method
registry, and the report formatting."""

import math

import numpy as np
import pytest

from repro.bench import (
    Measurement,
    MethodNotAvailable,
    OnTheFlyIndex,
    TABLE2_METHODS,
    build_method,
    format_table,
    measure_index,
    mixed_workload,
    speedup,
    to_csv,
    uniform_over_domain,
    uniform_over_keys,
)
from repro.core.records import SortedData
from repro.datasets import load
from repro.hardware.machine import MachineSpec
from repro.search.binary import lower_bound

N = 20_000


@pytest.fixture(scope="module")
def face_data():
    return SortedData(load("face64", N, seed=41), name="face64")


@pytest.fixture(scope="module")
def machine():
    return MachineSpec.paper().scaled_for(N, 16)


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def test_uniform_over_keys_only_stored_keys(face_data):
    qs = uniform_over_keys(face_data.keys, 500, seed=1)
    assert len(qs) == 500
    assert bool(np.all(np.isin(qs, face_data.keys)))


def test_uniform_over_domain_within_range(face_data):
    qs = uniform_over_domain(face_data.keys, 500, seed=1)
    assert qs.min() >= face_data.keys.min()
    assert qs.max() <= face_data.keys.max()


def test_mixed_workload_fraction(face_data):
    qs = mixed_workload(face_data.keys, 400, indexed_fraction=0.5, seed=1)
    stored = np.isin(qs, face_data.keys).sum()
    assert stored >= 200  # at least the indexed half (collisions can add)
    with pytest.raises(ValueError):
        mixed_workload(face_data.keys, 10, indexed_fraction=1.5)


def test_workloads_deterministic(face_data):
    a = uniform_over_keys(face_data.keys, 100, seed=9)
    b = uniform_over_keys(face_data.keys, 100, seed=9)
    assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# measurement loop
# ----------------------------------------------------------------------
def test_measure_index_counters(face_data, machine):
    index = OnTheFlyIndex(face_data, lower_bound, "BS")
    qs = uniform_over_keys(face_data.keys, 256, seed=2)
    m = measure_index(index, face_data, qs, machine)
    assert m.correct
    assert m.ns_per_lookup > machine.dram_ns  # binary search misses a lot
    assert m.instructions_per_lookup > 10
    assert m.llc_misses_per_lookup >= 1
    assert m.queries == 192  # 25% warmup by default
    assert m.method == "BS"


def test_measure_index_detects_wrong_results(face_data, machine):
    class Broken:
        name = "broken"

        def lookup(self, q, tracker):
            return 0

        def size_bytes(self):
            return 0

    qs = uniform_over_keys(face_data.keys, 64, seed=2)
    m = measure_index(Broken(), face_data, qs, machine)
    assert not m.correct


def test_measurement_not_available():
    m = Measurement.not_available("FAST", "face64", 100, "64-bit keys")
    assert not m.available
    assert math.isnan(m.ns_per_lookup)


# ----------------------------------------------------------------------
# method registry
# ----------------------------------------------------------------------
def test_registry_covers_table2_columns():
    assert len(TABLE2_METHODS) == 12


@pytest.mark.parametrize("method", TABLE2_METHODS)
def test_build_method_face32(method):
    data = SortedData(load("face32", N, seed=41), name="face32")
    index, build_s = build_method(method, data)
    assert build_s >= 0
    qs = uniform_over_keys(data.keys, 64, seed=3)
    got = np.asarray([index.lookup(q) for q in qs])
    assert np.array_equal(got, data.lower_bound_batch(qs))


def test_build_method_na_cells():
    wiki = SortedData(load("wiki64", N, seed=41), name="wiki64")
    with pytest.raises(MethodNotAvailable):
        build_method("ART", wiki)  # duplicates
    with pytest.raises(MethodNotAvailable):
        build_method("FAST", wiki)  # 64-bit keys


def test_build_method_unknown():
    data = SortedData(load("face32", 1000, seed=41), name="face32")
    with pytest.raises(KeyError):
        build_method("BTREE-9000", data)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def test_format_table_renders_nan_as_na():
    text = format_table(["a", "b"], [["x", float("nan")], ["y", 1.25]])
    assert "N/A" in text
    assert "1.2" in text


def test_format_table_title_and_alignment():
    text = format_table(["name", "v"], [["abc", 1.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("name")


def test_to_csv_roundtrip():
    csv_text = to_csv(["a", "b"], [[1, 2], [3, 4]])
    assert csv_text.splitlines()[0] == "a,b"
    assert csv_text.splitlines()[2] == "3,4"


def test_speedup():
    assert speedup(200.0, 100.0) == 2.0
    assert math.isnan(speedup(float("nan"), 100.0))
    assert math.isnan(speedup(100.0, 0.0))


# ----------------------------------------------------------------------
# engine throughput artifact (BENCH_engine.json)
# ----------------------------------------------------------------------
def test_engine_bench_json_schema(tmp_path):
    import json

    from repro.bench.engine_throughput import run_engine_bench_json
    from repro.kernels import REGISTRY

    out = tmp_path / "BENCH_engine.json"
    payload = run_engine_bench_json(
        str(out), kernels="auto", n=8_000, num_queries=1_000,
        num_shards=2, repeats=1, scalar_queries=200,
    )
    on_disk = json.loads(out.read_text())
    assert on_disk == payload
    assert payload["bench"] == "engine_throughput"
    assert payload["numba_available"] == REGISTRY.numba_available
    assert payload["config"]["n"] == 8_000
    # auto sweeps both backends; an absent numba is recorded, not faked
    modes = {run["kernels"] for run in payload["runs"]}
    assert modes == {"numba", "numpy"}
    for run in payload["runs"]:
        if not run["available"]:
            assert run["kernels"] == "numba"
            assert not REGISTRY.numba_available
            continue
        assert {r["mode"] for r in run["results"]} == {
            "scalar-loop", "vectorized", "sharded[K=2]"
        }
        for row in run["results"]:
            assert row["kernels"] == run["kernels"]
            assert row["qps"] > 0
            assert row["p50_ns_per_lookup"] > 0
            assert row["p99_ns_per_lookup"] >= row["p50_ns_per_lookup"]


def test_engine_bench_restores_kernel_mode():
    from repro.bench.engine_throughput import run_engine_throughput
    from repro.kernels import REGISTRY

    prev = REGISTRY.mode
    run_engine_throughput(
        n=4_000, num_queries=500, num_shards=2, repeats=1,
        scalar_queries=100, kernels="numpy",
    )
    assert REGISTRY.mode == prev
