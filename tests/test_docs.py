"""Documentation cannot rot: every ``python`` code block in the user
docs executes against the real library, and every relative markdown
link resolves to a file in the repo.

The blocks run sequentially per file in one shared namespace (so a
later block can use names an earlier one defined), seeded with a small
standard dataset (``keys``, ``queries``, ``lows``/``highs``, ``q``,
``lo``/``hi``, ``new_key``) — documentation snippets are written
against those names.  Blocks containing top-level ``await`` are
compiled with ``PyCF_ALLOW_TOP_LEVEL_AWAIT`` and driven by an asyncio
event loop.
"""

import ast
import asyncio
import inspect
import re
from pathlib import Path

import numpy as np
import pytest

REPO = Path(__file__).resolve().parents[1]

#: Markdown files whose ```python blocks must execute.
EXECUTED_DOCS = ("docs/ARCHITECTURE.md", "README.md")

#: Markdown files whose relative links must resolve.
LINKED_DOCS = sorted(
    p.relative_to(REPO).as_posix()
    for p in list(REPO.glob("*.md")) + list(REPO.glob("docs/*.md"))
)

BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_namespace() -> dict:
    """The standard names documentation snippets are written against."""
    rng = np.random.default_rng(0)
    keys = np.unique(
        rng.integers(1, 1 << 30, 21_000, dtype=np.uint64)
    )[:20_000]
    queries = rng.choice(keys, 1_000)
    lows = queries[:128]
    return {
        "np": np,
        "keys": keys,
        "queries": queries,
        "lows": lows,
        "highs": lows + np.uint64(1_000),
        "q": keys[123],
        "lo": keys[10],
        "hi": keys[500],
        "new_key": np.uint64(int(keys[-1]) + 1),
    }


def run_block(source: str, namespace: dict, name: str) -> None:
    """Exec one block, supporting top-level ``await`` via an event loop."""
    code = compile(source, name, "exec",
                   flags=ast.PyCF_ALLOW_TOP_LEVEL_AWAIT)
    result = eval(code, namespace)
    if inspect.iscoroutine(result):
        asyncio.run(result)


@pytest.mark.parametrize("relpath", EXECUTED_DOCS)
def test_doc_code_blocks_execute(relpath, capsys):
    """Every ```python block in the doc runs without raising."""
    text = (REPO / relpath).read_text()
    blocks = BLOCK_RE.findall(text)
    assert blocks, f"{relpath} has no python code blocks to exercise"
    namespace = doc_namespace()
    for i, block in enumerate(blocks):
        run_block(block, namespace, f"{relpath}[block {i}]")


@pytest.mark.parametrize("relpath", LINKED_DOCS)
def test_markdown_links_resolve(relpath):
    """Relative links in the markdown point at files that exist."""
    md = REPO / relpath
    broken = []
    for target in LINK_RE.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue  # external links / in-page anchors: not checked
        resolved = (md.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{relpath}: dead links {broken}"
