"""Update handling via Fenwick-tree drift tracking (paper §6, future work).

The paper's conclusion sketches one idea for supporting inserts: "capture
the drifts in data distribution using update-tracking segments, and use
Fenwick trees to estimate and correct the drifts in both the model and
the Shift-Table".  This module builds that sketch as a working extension:

* :class:`FenwickTree` — classic binary indexed tree over int64 counts;
* :class:`UpdatableCorrectedIndex` — wraps a static
  :class:`~repro.core.corrected_index.CorrectedIndex` and absorbs inserts
  into a sorted delta buffer and deletes into a sorted tombstone buffer,
  while a Fenwick tree over the base positions tracks the *net* drift —
  how many live keys each base slot has gained (inserts) or lost
  (deletes) before it.  A lookup then returns the *merged* rank: the
  corrected base position plus buffered inserts before the query minus
  tombstoned keys before it, which is exactly the lower bound in the
  live view of ``(base ∪ buffer) − deleted``.

The buffers can be merged back (rebuilding model + layer) once they grow
past a threshold, amortising rebuild cost — the usual delta-main design.
"""

from __future__ import annotations

import bisect

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, alloc_region
from .corrected_index import CorrectedIndex
from .records import normalize_query_dtype


class FenwickTree:
    """Binary indexed tree: point update / prefix sum in O(log n)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self.region = alloc_region(f"fenwick_{id(self):x}", 8, size + 1)

    def add(self, index: int, amount: int = 1,
            tracker: NullTracker = NULL_TRACKER) -> None:
        """Add ``amount`` at position ``index`` (0-based)."""
        if not (0 <= index < self.size):
            raise IndexError(f"index {index} out of range [0, {self.size})")
        i = index + 1
        while i <= self.size:
            tracker.touch(self.region, i)
            tracker.instr(3)
            self._tree[i] += amount
            i += i & (-i)

    def prefix_sum(self, index: int, tracker: NullTracker = NULL_TRACKER) -> int:
        """Sum of positions ``[0, index)``."""
        if index <= 0:
            return 0
        i = min(index, self.size)
        total = 0
        while i > 0:
            tracker.touch(self.region, i)
            tracker.instr(3)
            total += int(self._tree[i])
            i -= i & (-i)
        return total

    def total(self) -> int:
        return self.prefix_sum(self.size)


class UpdatableCorrectedIndex:
    """Delta-main learned index with Fenwick drift correction (§6 sketch).

    Inserted keys live in a sorted buffer, deleted base keys in a sorted
    tombstone list; the Fenwick tree tracks the net per-base-position
    drift.  Lookups return ranks in the live merged view, so downstream
    range scans see a single consistent ordering.
    """

    def __init__(self, base: CorrectedIndex, merge_threshold: int = 4096) -> None:
        self.base = base
        self.merge_threshold = int(merge_threshold)
        self._buffer: list = []
        self._deleted: list = []
        self._buffer_arr: np.ndarray | None = None
        self._deleted_arr: np.ndarray | None = None
        # one Fenwick slot per base gap (position 0..N inclusive)
        self._drift = FenwickTree(len(base.data) + 1)
        self.name = base.name + "+updates"

    def __len__(self) -> int:
        return len(self.base.data) + len(self._buffer) - len(self._deleted)

    @property
    def pending_inserts(self) -> int:
        return len(self._buffer)

    @property
    def pending_deletes(self) -> int:
        return len(self._deleted)

    @property
    def pending_updates(self) -> int:
        """Buffered mutations a merge would fold back into the base."""
        return len(self._buffer) + len(self._deleted)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, key, tracker: NullTracker = NULL_TRACKER) -> None:
        """Insert a key; O(log n) buffer + Fenwick maintenance."""
        base_pos = self.base.lookup(key, tracker)
        bisect.insort(self._buffer, key)
        self._buffer_arr = None
        self._drift.add(base_pos, 1, tracker)

    def delete(self, key, tracker: NullTracker = NULL_TRACKER) -> None:
        """Delete one live occurrence of ``key`` (KeyError if absent).

        A buffered (recently inserted) copy is removed from the buffer;
        otherwise one base occurrence is tombstoned, provided the base
        holds more copies of ``key`` than are already tombstoned.
        """
        i = bisect.bisect_left(self._buffer, key)
        if i < len(self._buffer) and self._buffer[i] == key:
            base_pos = self.base.lookup(key, tracker)
            self._buffer.pop(i)
            self._buffer_arr = None
            self._drift.add(base_pos, -1, tracker)
            return
        base_keys = self.base.data.keys
        lo = int(np.searchsorted(base_keys, key, side="left"))
        hi = int(np.searchsorted(base_keys, key, side="right"))
        already = bisect.bisect_right(self._deleted, key) - bisect.bisect_left(
            self._deleted, key
        )
        if hi - lo - already <= 0:
            raise KeyError(key)
        bisect.insort(self._deleted, key)
        self._deleted_arr = None
        self._drift.add(lo, -1, tracker)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Lower-bound rank of ``q`` in the live (base ∪ buffer − deleted) view."""
        base_pos = self.base.lookup(q, tracker)
        buffered_before = bisect.bisect_left(self._buffer, q)
        deleted_before = bisect.bisect_left(self._deleted, q)
        tracker.instr(4 * max(1, len(self._buffer)).bit_length())
        return base_pos + buffered_before - deleted_before

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`lookup`: one base pipeline pass + two
        ``searchsorted`` passes over the (small) update buffers."""
        key_dtype = self.base.data.keys.dtype
        queries = np.asarray(queries)
        base_pos = self.base.lookup_batch_vectorized(queries)
        norm, oob_high = normalize_query_dtype(queries, key_dtype)
        buffered = np.searchsorted(self._buffer_sorted(), norm, side="left")
        deleted = np.searchsorted(self._deleted_sorted(), norm, side="left")
        if oob_high is not None:
            # above-domain lanes clamp to the dtype max during the
            # buffer searches; their true prefix counts are "everything"
            buffered[oob_high] = len(self._buffer)
            deleted[oob_high] = len(self._deleted)
        return base_pos + buffered - deleted

    def _buffer_sorted(self) -> np.ndarray:
        if self._buffer_arr is None:
            self._buffer_arr = np.asarray(
                self._buffer, dtype=self.base.data.keys.dtype
            )
        return self._buffer_arr

    def _deleted_sorted(self) -> np.ndarray:
        if self._deleted_arr is None:
            self._deleted_arr = np.asarray(
                self._deleted, dtype=self.base.data.keys.dtype
            )
        return self._deleted_arr

    def merged_shift(self, base_pos: int,
                     tracker: NullTracker = NULL_TRACKER) -> int:
        """Fenwick-estimated net drift before ``base_pos``.

        This is the §6 estimate — how far the static model's prediction
        has drifted because of updates: inserts landing before the slot
        count +1, tombstoned base keys before it count −1.
        """
        return self._drift.prefix_sum(base_pos, tracker)

    def needs_merge(self) -> bool:
        return self.pending_updates >= self.merge_threshold

    def min_key(self):
        """Smallest live key without materialising the merged view.

        Skips any fully-tombstoned prefix of the base (O(log n) per
        skipped distinct value) and compares against the buffer head.
        """
        base_keys = self.base.data.keys
        candidates = []
        i = 0
        while i < len(base_keys):
            value = base_keys[i]
            run_end = int(np.searchsorted(base_keys, value, side="right"))
            tombstones = bisect.bisect_right(
                self._deleted, value
            ) - bisect.bisect_left(self._deleted, value)
            if run_end - i > tombstones:
                candidates.append(value)
                break
            i = run_end
        if self._buffer:
            candidates.append(self._buffer[0])
        if not candidates:
            raise ValueError("empty index has no minimum")
        return min(candidates)

    def merged_keys(self) -> np.ndarray:
        """Materialise the live key array (used when rebuilding)."""
        base_keys = self.base.data.keys
        if self._deleted:
            values, counts = np.unique(
                self._deleted_sorted(), return_counts=True
            )
            keep = np.ones(len(base_keys), dtype=bool)
            starts = np.searchsorted(base_keys, values, side="left")
            for start, count in zip(starts, counts):
                keep[start : start + int(count)] = False
            base_keys = base_keys[keep]
        if not self._buffer:
            return base_keys.copy()
        merged = np.empty(
            len(base_keys) + len(self._buffer), dtype=base_keys.dtype
        )
        buffered = self._buffer_sorted()
        insert_at = np.searchsorted(base_keys, buffered, side="left")
        mask = np.zeros(len(merged), dtype=bool)
        mask[insert_at + np.arange(len(buffered))] = True
        merged[mask] = buffered
        merged[~mask] = base_keys
        return merged
