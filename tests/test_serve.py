"""Oracle suite for the async serving layer (ISSUE 3 tentpole).

Drives concurrent async clients — mixed point/range, duplicate keys,
out-of-domain probes — against an :class:`IndexServer` and asserts
bit-exact agreement with ``np.searchsorted`` oracles, including under
interleaved server-applied writes that must invalidate the result
cache.  Every test runs its event loop with plain ``asyncio.run`` so no
pytest async plugin is needed.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.engine import ShardedIndex
from repro.serve import IndexServer


def make_keys(rng: np.random.Generator, n: int = 8000) -> np.ndarray:
    """Sorted uint64 keys with a forced duplicate run."""
    keys = rng.integers(0, 1 << 40, n, dtype=np.uint64)
    keys[200:240] = keys[200]
    keys.sort()
    return keys


def mixed_queries(rng: np.random.Generator, live: np.ndarray, count: int):
    """Stored keys, duplicate-run members, neighbours, and extremes."""
    picks = rng.choice(live, count)
    return np.concatenate([
        picks,
        picks + 1,
        np.asarray([live[0], live[-1], np.uint64(0)], dtype=live.dtype),
        rng.integers(0, np.iinfo(np.uint64).max, count, dtype=np.uint64),
    ])


async def _point_client(server, queries, expected):
    bad = 0
    for q, e in zip(queries, expected):
        if await server.lookup(q) != e:
            bad += 1
    return bad


async def _range_client(server, lows, highs, expected):
    bad = 0
    for lo, hi, e in zip(lows, highs, expected):
        if await server.range(lo, hi) != e:
            bad += 1
    return bad


@pytest.fixture()
def keys(rng):
    return make_keys(np.random.default_rng(rng.integers(1 << 31)))


@pytest.mark.parametrize("backend", ["static", "gapped", "fenwick"])
def test_concurrent_clients_agree_with_oracle_under_writes(keys, backend):
    """N async clients, interleaved writes, zero tolerated mismatches."""
    index = ShardedIndex.build(keys, 4, backend=backend)
    server = IndexServer(index, max_batch=64, max_wait_us=100)
    wrng = np.random.default_rng(7)

    async def scenario() -> int:
        mismatches = 0
        live = keys.copy()
        async with server:
            for round_no in range(6):
                if round_no:  # writes between read rounds hit the cache
                    for _ in range(4):
                        fresh = live[int(wrng.integers(0, len(live)))] + 1
                        await server.insert(fresh)
                        live = np.insert(
                            live, np.searchsorted(live, fresh), fresh
                        )
                    for _ in range(2):
                        victim = live[int(wrng.integers(0, len(live)))]
                        await server.delete(victim)
                        live = np.delete(live, np.searchsorted(live, victim))
                clients = []
                for c in range(8):
                    qrng = np.random.default_rng(100 * round_no + c)
                    qs = mixed_queries(qrng, live, 24)
                    clients.append(_point_client(
                        server, qs, np.searchsorted(live, qs, side="left")
                    ))
                    lows = qrng.choice(live, 12)
                    highs = lows + qrng.integers(0, 1 << 32, 12).astype(live.dtype)
                    counts = (
                        np.searchsorted(live, highs, side="left")
                        - np.searchsorted(live, lows, side="left")
                    )
                    clients.append(_range_client(
                        server, lows, highs, np.maximum(counts, 0)
                    ))
                mismatches += sum(await asyncio.gather(*clients))
        return mismatches

    assert asyncio.run(scenario()) == 0
    # the rounds repeat hot keys, so the cache must have engaged...
    assert server.cache.point_hits + server.cache.range_hits > 0
    # ...and the interleaved writes must have invalidated something
    assert server.stats.writes == 30
    assert server.cache.invalidated_ranges + server.cache.invalidated_points > 0


def test_point_lookup_edge_semantics(keys):
    """Duplicates answer at the run start; out-of-domain clamp to 0/n."""
    index = ShardedIndex.build(keys, 3)
    n = len(keys)
    dup = keys[210]  # inside the forced duplicate run

    async def scenario():
        async with IndexServer(index, max_batch=8) as server:
            assert await server.lookup(dup) == int(
                np.searchsorted(keys, dup, side="left")
            )
            assert await server.lookup(np.uint64(0)) == int(
                np.searchsorted(keys, np.uint64(0), side="left")
            )
            assert await server.lookup(-3) == 0
            assert await server.lookup(int(keys[-1]) + 1) == n
            assert await server.lookup((1 << 64) + 5) == n

    asyncio.run(scenario())


def test_range_count_semantics(keys):
    """Counts match the oracle; inverted and empty ranges come back 0."""
    index = ShardedIndex.build(keys, 3)

    async def scenario():
        async with IndexServer(index) as server:
            lo, hi = keys[10], keys[900]
            oracle = int(np.searchsorted(keys, hi) - np.searchsorted(keys, lo))
            assert await server.range(lo, hi) == oracle
            assert await server.range(hi, lo) == 0  # inverted
            assert await server.range(lo, lo) == 0  # empty
            first, last = await server.range_positions(lo, hi)
            assert (first, last) == (
                int(np.searchsorted(keys, lo)), int(np.searchsorted(keys, hi))
            )
            assert await server.range(-5, (1 << 64) + 5) == len(keys)

    asyncio.run(scenario())


def test_write_invalidates_only_stale_point_entries(keys):
    """Entries above the written key go stale; entries below survive."""
    index = ShardedIndex.build(keys, 2, backend="gapped")
    low_q, high_q = keys[100], keys[7000]

    async def scenario():
        async with IndexServer(index) as server:
            before_low = await server.lookup(low_q)
            before_high = await server.lookup(high_q)
            hits0 = server.cache.point_hits
            # a write between the two cached queries
            mid = keys[4000] + 1
            await server.insert(mid)
            live = np.insert(keys, np.searchsorted(keys, mid), mid)
            # below the write: still served (from cache), still exact
            assert await server.lookup(low_q) == before_low
            assert server.cache.point_hits == hits0 + 1
            # above the write: stale entry must NOT be served
            after_high = await server.lookup(high_q)
            assert after_high == before_high + 1
            assert after_high == int(np.searchsorted(live, high_q, side="left"))

    asyncio.run(scenario())


def test_write_barrier_orders_reads_before_writes(keys):
    """Reads admitted before a write are answered pre-write."""
    index = ShardedIndex.build(keys, 2)
    q = keys[6000]
    pre = int(np.searchsorted(keys, q, side="left"))

    async def scenario():
        async with IndexServer(index, max_batch=512, max_wait_us=5000) as server:
            task = asyncio.get_running_loop().create_task(server.lookup(q))
            await asyncio.sleep(0)  # let the read park in the batch queue
            await server.insert(q - 1)  # drains the queue first
            assert await task == pre
            # a read submitted after the write sees the new rank
            assert await server.lookup(q) == pre + 1

    asyncio.run(scenario())


def test_backpressure_engages_and_stays_exact(keys):
    index = ShardedIndex.build(keys, 2)
    qrng = np.random.default_rng(3)
    qs = qrng.choice(keys, 256)
    truth = np.searchsorted(keys, qs, side="left")

    async def scenario():
        async with IndexServer(
            index, max_batch=16, max_inflight=4, point_cache=0
        ) as server:
            got = await asyncio.gather(*[server.lookup(q) for q in qs])
            assert np.array_equal(np.asarray(got), truth)
        return server

    server = asyncio.run(scenario())
    assert server.stats.backpressure_waits > 0
    assert server.stats.peak_inflight <= 256


def test_stats_surface(keys):
    index = ShardedIndex.build(keys, 2)
    server = IndexServer(index, max_batch=32)
    qrng = np.random.default_rng(5)
    qs = qrng.choice(keys, 128)

    async def scenario():
        async with server:
            await asyncio.gather(*[server.lookup(q) for q in qs])
            await asyncio.gather(*[server.lookup(q) for q in qs[:64]])

    asyncio.run(scenario())
    snap = server.stats.snapshot()
    assert snap["served"] == 192
    assert snap["p50_us"] <= snap["p99_us"]
    assert 1 <= snap["mean_batch"] <= 32
    assert 0 < snap["cache_hit_rate"] < 1
    hist = server.stats.batch_histogram()
    assert sum(hist.values()) == server.stats.num_batches
    assert "p50_us" in server.describe() or "p50_us" in str(snap)


def test_refresh_keeps_cache_valid(keys):
    """refresh() folds buffers without touching logical content or cache."""
    index = ShardedIndex.build(keys, 2, backend="fenwick")

    async def scenario():
        async with IndexServer(index) as server:
            q = keys[5000]
            await server.insert(keys[100] + 1)
            live = np.insert(keys, np.searchsorted(keys, keys[100] + 1),
                             keys[100] + 1)
            first = await server.lookup(q)
            hits0 = server.cache.point_hits
            await server.refresh()
            assert index.pending_updates() == 0
            # served from cache, still exact after the physical rebuild
            assert await server.lookup(q) == first
            assert server.cache.point_hits == hits0 + 1
            assert first == int(np.searchsorted(live, q, side="left"))

    asyncio.run(scenario())


def test_server_adopts_plain_corrected_index(small_sorted_keys):
    """A bare CorrectedIndex serves as a one-shard index."""
    from repro.core.corrected_index import CorrectedIndex
    from repro.core.records import SortedData
    from repro.core.shift_table import ShiftTable
    from repro.models.interpolation import InterpolationModel

    keys = small_sorted_keys
    model = InterpolationModel(keys)
    index = CorrectedIndex(SortedData(keys, name="bare"), model,
                           ShiftTable.build(keys, model))

    async def scenario():
        async with IndexServer(index) as server:
            qs = keys[::97]
            got = await asyncio.gather(*[server.lookup(q) for q in qs])
            assert np.array_equal(
                np.asarray(got), np.searchsorted(keys, qs, side="left")
            )

    asyncio.run(scenario())


def test_malformed_queries_fail_alone(keys):
    """A nan or non-numeric query fails its own request, not the batch."""
    index = ShardedIndex.build(keys, 2)

    async def scenario():
        async with IndexServer(index, max_batch=64) as server:
            good = keys[::1000]
            tasks = [server.lookup(q) for q in good]
            tasks.append(server.lookup(float("nan")))
            tasks.append(server.lookup("not-a-key"))
            results = await asyncio.gather(*tasks, return_exceptions=True)
            ok, bad = results[: len(good)], results[len(good):]
            assert np.array_equal(
                np.asarray(ok), np.searchsorted(keys, good, side="left")
            )
            assert isinstance(bad[0], ValueError)
            assert isinstance(bad[1], TypeError)

    asyncio.run(scenario())


def test_fractional_numpy_float_queries(keys):
    """np.float32/float64 fractional queries answer the exact lower bound."""
    index = ShardedIndex.build(keys, 2)
    frac = np.float64(keys[4000]) + 0.5

    async def scenario():
        async with IndexServer(index) as server:
            expect = int(np.searchsorted(keys, np.uint64(keys[4000]) + 1))
            assert await server.lookup(np.float32(2.5)) == int(
                np.searchsorted(keys, np.uint64(3), side="left")
            )
            assert await server.lookup(frac) == expect
            assert await server.lookup(float(frac)) == expect

    asyncio.run(scenario())


def test_cancelled_backpressure_waiter_does_not_strand_queue(keys):
    index = ShardedIndex.build(keys, 2)

    async def scenario():
        async with IndexServer(index, max_inflight=1) as server:
            server._slots = 0  # simulate a saturated server
            loop = asyncio.get_running_loop()
            t1 = loop.create_task(server._take_slot())
            t2 = loop.create_task(server._take_slot())
            await asyncio.sleep(0)
            t1.cancel()
            await asyncio.gather(t1, return_exceptions=True)
            server._release_slot()
            await asyncio.wait_for(t2, timeout=2.0)  # must not hang
            assert server._slots == 0  # t2 claimed the released slot
            server._release_slot()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# PR 5 satellites: served scans + scheduled background retune
# ----------------------------------------------------------------------
def test_range_keys_matches_oracle_under_writes(keys):
    """The served scan returns exactly the live keys of the range, even
    with inserts/deletes interleaved between requests."""
    index = ShardedIndex.build(keys, 3, backend="gapped")

    async def scenario():
        rng = np.random.default_rng(3)
        oracle = keys.copy()
        async with IndexServer(index) as server:
            for i in range(25):
                lo, hi = sorted(rng.choice(oracle, 2).tolist())
                lo, hi = oracle.dtype.type(lo), oracle.dtype.type(hi)
                got = await server.range_keys(lo, hi)
                a, b = np.searchsorted(oracle, [lo, hi])
                assert np.array_equal(got, oracle[a:b]), i
                # count answers must agree with the materialised slice
                assert await server.range(lo, hi) == len(got)
                k = oracle.dtype.type(rng.integers(0, 1 << 40))
                await server.insert(k)
                oracle = np.insert(oracle, int(np.searchsorted(oracle, k)), k)
            # inverted and empty ranges come back empty, not reversed
            assert len(await server.range_keys(oracle[50], oracle[10])) == 0

    asyncio.run(scenario())


def test_range_keys_bypasses_the_result_cache(keys):
    index = ShardedIndex.build(keys, 2)

    async def scenario():
        async with IndexServer(index) as server:
            lo, hi = keys[10], keys[5000]
            before = len(server.cache)
            for _ in range(3):
                await server.range_keys(lo, hi)
            assert len(server.cache) == before  # nothing cached
            assert server.stats.cache_hits == 0

    asyncio.run(scenario())


def test_range_keys_retries_when_writes_race_the_batch(keys):
    """A write landing while the positions were in flight must not
    produce a stale slice (the epoch guard forces a retry)."""
    index = ShardedIndex.build(keys, 2, backend="gapped")

    async def scenario():
        rng = np.random.default_rng(7)
        async with IndexServer(index, max_wait_us=5000.0) as server:
            lo, hi = keys[100], keys[6000]

            async def writer():
                # lands after the scan's range() was queued: same-loop
                # write barrier drains the batch, then mutates
                k = keys.dtype.type(rng.integers(0, 1 << 40))
                await server.insert(k)

            scan_task = asyncio.create_task(server.range_keys(lo, hi))
            write_task = asyncio.create_task(writer())
            got, _ = await asyncio.gather(scan_task, write_task)
            live = np.sort(index.keys)
            a, b = np.searchsorted(live, [lo, hi])
            assert np.array_equal(got, live[a:b])

    asyncio.run(scenario())


def test_background_retune_runs_and_stops_on_close(keys):
    index = ShardedIndex.build(keys, 3, backend="gapped")

    async def scenario():
        server = IndexServer(index, retune_interval=0.02)
        assert server._retune_task is None  # lazy: no loop work yet
        rng = np.random.default_rng(1)
        oracle = keys.copy()
        # traffic starts the timer; answers stay exact across passes
        for _ in range(3):
            for q in rng.choice(oracle, 32):
                assert await server.lookup(q) == int(
                    np.searchsorted(oracle, q))
            await asyncio.sleep(0.03)
        assert server._retune_task is not None
        snap = server.stats.snapshot()
        assert snap["background_retunes"] >= 1
        assert snap["retunes"] >= snap["background_retunes"]
        await server.close()
        assert server._retune_task is None
        settled = server.stats.background_retunes
        await asyncio.sleep(0.05)
        assert server.stats.background_retunes == settled  # timer is dead

    asyncio.run(scenario())


def test_retune_interval_validation(keys):
    index = ShardedIndex.build(keys, 2)
    with pytest.raises(ValueError, match="retune_interval"):
        IndexServer(index, retune_interval=0.0)


def test_failed_background_retune_stops_timer_and_close_still_works(keys):
    """A maintenance pass that raises must not kill serving or shutdown:
    the timer stops, the error is surfaced, close() completes."""
    index = ShardedIndex.build(keys, 2, backend="gapped")

    async def scenario():
        server = IndexServer(index, retune_interval=0.01)

        async def bad_retune(tuner=None):
            raise RuntimeError("tuner exploded")

        server.retune = bad_retune  # type: ignore[method-assign]
        assert await server.lookup(keys[5]) == int(
            np.searchsorted(keys, keys[5]))
        await asyncio.sleep(0.05)
        assert server.stats.background_retune_errors == 1
        assert isinstance(server.retune_error, RuntimeError)
        # serving continues, and close() must not re-raise the failure
        assert await server.lookup(keys[9]) == int(
            np.searchsorted(keys, keys[9]))
        await server.close()
        assert server._retune_task is None

    asyncio.run(scenario())
