"""Registry of the 14 SOSD datasets used in Table 2 of the paper.

Each name resolves to ``(generator, bits)``; :func:`load` produces the
sorted key array, memoised per ``(name, n, seed)`` so a benchmark sweep
touching the same dataset many times pays generation cost once.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from . import realworld, synthetic

#: The exact dataset list of Table 2, in the paper's row order.
TABLE2_DATASETS = (
    "logn32",
    "norm32",
    "uden32",
    "uspr32",
    "logn64",
    "norm64",
    "uden64",
    "uspr64",
    "amzn32",
    "face32",
    "amzn64",
    "face64",
    "osmc64",
    "wiki64",
)

SYNTHETIC_NAMES = ("logn", "norm", "uden", "uspr")
REALWORLD_NAMES = ("amzn", "face", "osmc", "wiki")

_GENERATORS: dict[str, Callable[..., np.ndarray]] = {
    "logn": synthetic.logn,
    "norm": synthetic.norm,
    "uden": synthetic.uden,
    "uspr": synthetic.uspr,
    "amzn": realworld.amzn,
    "face": realworld.face,
    "osmc": realworld.osmc,
    "wiki": realworld.wiki,
}

_cache: dict[tuple[str, int, int], np.ndarray] = {}


def dataset_names() -> tuple[str, ...]:
    """The Table 2 dataset names, in the paper's row order."""
    return TABLE2_DATASETS


def is_real_world(name: str) -> bool:
    """True for the four real-world surrogate datasets."""
    return parse_name(name)[0] in REALWORLD_NAMES


def parse_name(name: str) -> tuple[str, int]:
    """Split ``'face64'`` into ``('face', 64)``; validates both parts."""
    base, bits_str = name[:-2], name[-2:]
    if bits_str not in ("32", "64") or base not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; known: {TABLE2_DATASETS}")
    return base, int(bits_str)


def load(name: str, n: int, seed: int = 42) -> np.ndarray:
    """Load (generate) a dataset by Table 2 name, memoised."""
    key = (name, n, seed)
    if key not in _cache:
        base, bits = parse_name(name)
        _cache[key] = _GENERATORS[base](n, bits=bits, seed=seed)
    return _cache[key]


def clear_cache() -> None:
    """Drop all memoised dataset arrays (frees memory in sweeps)."""
    _cache.clear()
