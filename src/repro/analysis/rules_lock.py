"""RPR2xx — engine write-lock discipline.

PR 3 introduced the engine-wide write lock: every mutation of
``ShardedIndex`` shard state happens under ``self._write_lock`` and
``WriteEvent`` listeners fire while it is held, which is what makes the
WAL's LSN order equal the apply order (PR 6 relies on that for
recovery).  These rules re-derive the contract from the source itself:

- a class "owns" a lock when it assigns ``self.<x> = threading.Lock()``
  (or ``RLock``) in its body;
- an attribute is *registered* as lock-protected when at least one
  assignment to it sits lexically inside ``with self.<lock>:``;
- a private helper is *locked-only* when every call site in the class
  is under the lock, inside another locked-only helper, or in
  ``__init__`` (pre-publication, single-threaded by construction).

``RPR201`` then flags any assignment to a registered attribute outside
the lock, and ``RPR202`` flags ``WriteEvent`` construction outside a
lock-holding context.

PR 9 split the engine lock into shared/exclusive modes
(:class:`~repro.engine.locks.EngineWriteLock`): ``with
self._write_lock.shared():`` licenses per-shard *content* writes (under
the shard's own lock) but not structural state.  ``RPR203`` therefore
flags assignments to lock-protected attributes made under *only* the
shared mode — re-routing shards, replacing offsets, or touching the
keys cache there races every other shared-mode writer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .framework import ModuleContext, Rule, register

#: Methods that run before the object is published to other threads.
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__"})

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "EngineWriteLock"})


def _is_lock_factory(call: ast.AST) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    name = (func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None)
    return name in _LOCK_FACTORIES


def _self_attr(node: ast.AST) -> str | None:
    """``self.<attr>`` target name, seen through subscripts/slices."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self"):
        return node.attr
    return None


def _mentions_lockish(node: ast.AST) -> bool:
    """Whether a ``with`` context expression names something lock-like."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and "lock" in name.lower():
            return True
    return False


def _shared_mode_attr(node: ast.AST) -> str | None:
    """``self.<lock>.shared()`` context expression: the lock attr name."""
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr == "shared"):
        return _self_attr(node.func.value)
    return None


@dataclass
class _MethodInfo:
    node: ast.AST
    name: str
    # (attr, anchor node, under_own_lock, under_shared_mode_only)
    assignments: list = field(default_factory=list)
    # (callee, under_own_lock)
    self_calls: list = field(default_factory=list)
    # (anchor node, under_any_lockish_with)
    write_events: list = field(default_factory=list)


@dataclass
class _ClassInfo:
    node: ast.ClassDef
    lock_attrs: set = field(default_factory=set)
    methods: dict = field(default_factory=dict)

    @property
    def protected(self) -> set:
        return {attr for m in self.methods.values()
                for attr, _, locked, _shared in m.assignments if locked}

    def locked_only(self) -> set:
        """Fixpoint: private helpers provably called only under the lock."""
        sites: dict[str, list] = {}
        for m in self.methods.values():
            for callee, locked in m.self_calls:
                sites.setdefault(callee, []).append((m.name, locked))
        result = {name for name in self.methods
                  if name.startswith("_") and not name.startswith("__")
                  and name in sites}
        changed = True
        while changed:
            changed = False
            for name in list(result):
                for caller, locked in sites[name]:
                    if locked or caller in _CONSTRUCTORS or caller in result:
                        continue
                    result.discard(name)
                    changed = True
                    break
        return result


def _collect_class(cls: ast.ClassDef) -> _ClassInfo:
    info = _ClassInfo(node=cls)
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        m = _MethodInfo(node=stmt, name=stmt.name)
        info.methods[stmt.name] = m
    # first pass: find the lock attributes (assigned anywhere in the class)
    for m in info.methods.values():
        for sub in ast.walk(m.node):
            if isinstance(sub, ast.Assign) and _is_lock_factory(sub.value):
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        info.lock_attrs.add(attr)
    # second pass: classify every assignment / self-call / WriteEvent
    for m in info.methods.values():
        _walk_method(m, info.lock_attrs)
    return info


def _walk_method(m: _MethodInfo, lock_attrs: set) -> None:
    def visit(node, own_lock: bool, any_lock: bool, shared_only: bool) -> None:
        if isinstance(node, ast.With):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in lock_attrs:
                    # a plain `with self.<lock>:` is exclusive mode (or
                    # an auxiliary lock): it licenses everything below
                    own_lock = True
                    shared_only = False
                elif _shared_mode_attr(item.context_expr) in lock_attrs:
                    # `with self.<lock>.shared():` counts as holding the
                    # lock (RPR201/202) but only in shared mode (RPR203)
                    if not own_lock:
                        shared_only = True
                    own_lock = True
                if _mentions_lockish(item.context_expr):
                    any_lock = True
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    m.assignments.append((attr, target, own_lock,
                                          shared_only))
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"):
                m.self_calls.append((func.attr, own_lock))
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name == "WriteEvent":
                m.write_events.append((node, own_lock or any_lock))
        for child in ast.iter_child_nodes(node):
            visit(child, own_lock, any_lock, shared_only)

    for stmt in m.node.body:
        visit(stmt, False, False, False)


_LOCK_SCOPE = ("engine", "serve")


@register
class UnlockedStateMutation(Rule):
    """Assignment to a lock-registered attribute outside the lock."""

    code = "RPR201"
    name = "unlocked-state-mutation"
    summary = ("attributes assigned under `with self._write_lock` are "
               "registered as protected; every other assignment to them "
               "must also hold the lock")
    scope_dirs = _LOCK_SCOPE

    def check(self, ctx: ModuleContext) -> list:
        findings = []
        for cls in [n for n in ast.walk(ctx.tree)
                    if isinstance(n, ast.ClassDef)]:
            info = _collect_class(cls)
            if not info.lock_attrs:
                continue
            protected = info.protected
            locked_only = info.locked_only()
            for m in info.methods.values():
                if m.name in _CONSTRUCTORS or m.name in locked_only:
                    continue
                for attr, node, locked, _shared in m.assignments:
                    if locked or attr not in protected:
                        continue
                    findings.append(self.finding(
                        ctx, node,
                        f"assignment to lock-protected state "
                        f"`self.{attr}` outside `with self."
                        f"{sorted(info.lock_attrs)[0]}` in "
                        f"{cls.name}.{m.name}; writers and the WAL "
                        "listener chain race against this"))
        return findings


@register
class StructuralMutationUnderSharedLock(Rule):
    """Lock-protected state assigned under only the *shared* lock mode."""

    code = "RPR203"
    name = "structural-mutation-under-shared-lock"
    summary = ("`with self._write_lock.shared():` licenses per-shard "
               "content writes only; assignments to lock-protected "
               "attributes there race other shared-mode writers and "
               "need exclusive mode (or the meta lock)")
    scope_dirs = _LOCK_SCOPE

    def check(self, ctx: ModuleContext) -> list:
        findings = []
        for cls in [n for n in ast.walk(ctx.tree)
                    if isinstance(n, ast.ClassDef)]:
            info = _collect_class(cls)
            if not info.lock_attrs:
                continue
            protected = info.protected
            for m in info.methods.values():
                for attr, node, _locked, shared in m.assignments:
                    if not shared or attr not in protected:
                        continue
                    findings.append(self.finding(
                        ctx, node,
                        f"assignment to lock-protected state "
                        f"`self.{attr}` under the shared engine-lock "
                        f"mode in {cls.name}.{m.name}; structural state "
                        "needs exclusive mode — shared mode only covers "
                        "per-shard content under the shard's own lock"))
        return findings


@register
class WriteEventOutsideLock(Rule):
    """``WriteEvent(...)`` built where no lock is (provably) held."""

    code = "RPR202"
    name = "write-event-outside-lock"
    summary = ("WriteEvent construction outside a lock-holding method "
               "breaks apply-order = LSN-order for WAL listeners")
    scope_dirs = _LOCK_SCOPE

    def check(self, ctx: ModuleContext) -> list:
        findings = []
        classes = {n for n in ast.walk(ctx.tree)
                   if isinstance(n, ast.ClassDef)}
        method_nodes = set()
        for cls in classes:
            info = _collect_class(cls)
            locked_only = info.locked_only()
            for m in info.methods.values():
                method_nodes.add(m.node)
                if m.name in _CONSTRUCTORS or m.name in locked_only:
                    continue
                for node, locked in m.write_events:
                    if not locked:
                        findings.append(self.finding(
                            ctx, node,
                            f"WriteEvent constructed outside a lock-held "
                            f"scope in {cls.name}.{m.name}; listeners "
                            "(WAL, cache coherence) assume events are "
                            "emitted under the engine write lock"))
        # module-level / free-function constructions
        findings.extend(self._free_functions(ctx, method_nodes))
        return findings

    def _free_functions(self, ctx: ModuleContext, method_nodes) -> list:
        findings = []

        def visit(node, any_lock: bool) -> None:
            if node in method_nodes:
                return
            if isinstance(node, ast.With):
                if any(_mentions_lockish(i.context_expr)
                       for i in node.items):
                    any_lock = True
            elif isinstance(node, ast.Call):
                func = node.func
                name = (func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else None)
                if name == "WriteEvent" and not any_lock:
                    findings.append(self.finding(
                        ctx, node,
                        "WriteEvent constructed outside any lock-held "
                        "scope; emit events only from code holding the "
                        "engine write lock"))
            for child in ast.iter_child_nodes(node):
                visit(child, any_lock)

        visit(ctx.tree, False)
        return findings
