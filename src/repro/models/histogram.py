"""Equi-depth histogram CDF model (the classic DB estimator as a model).

Selectivity histograms are databases' oldest CDF approximation; as a
learned-index model they sit between the paper's dummy IM (one global
line) and a spline: ``B`` buckets holding every ``N/B``-th key, with
linear interpolation inside a bucket.  Useful as a third "simple model"
for the correction layer — it bounds the drift by the bucket depth by
construction, which makes the §3.9 entry-width discussion concrete.
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, alloc_region
from .base import CDFModel

_BOUNDARY_BYTES = 8


class HistogramModel(CDFModel):
    """Equi-depth histogram: B boundaries, binary-searched, interpolated."""

    is_monotone = True

    def __init__(self, data: np.ndarray, buckets: int = 1024) -> None:
        super().__init__(len(data))
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        n = len(data)
        self.buckets = int(min(buckets, n))
        self.name = f"Hist[{self.buckets}]"
        #: bucket b spans positions [b*depth, (b+1)*depth)
        self.depth = n / self.buckets
        idx = np.minimum(
            (np.arange(self.buckets + 1) * self.depth).astype(np.int64), n - 1
        )
        self._bounds = data[idx].astype(np.float64)
        self._region = alloc_region(
            f"hist_{id(self):x}", _BOUNDARY_BYTES, self.buckets + 1
        )

    def predict_pos(
        self, key: int | float, tracker: NullTracker = NULL_TRACKER
    ) -> float:
        k = float(key)
        bounds = self._bounds
        lo, hi = 0, self.buckets
        while lo < hi:
            mid = (lo + hi) >> 1
            tracker.touch(self._region, mid)
            tracker.instr(5)
            if bounds[mid + 1] < k:
                lo = mid + 1
            else:
                hi = mid
        b = min(lo, self.buckets - 1)  # k beyond the last bound clamps
        tracker.touch(self._region, b)
        tracker.instr(6)
        x0, x1 = bounds[b], bounds[b + 1]
        frac = (k - x0) / (x1 - x0) if x1 > x0 else 0.0
        frac = min(max(frac, 0.0), 1.0)
        return (b + frac) * self.depth

    def predict_pos_batch(self, keys: np.ndarray) -> np.ndarray:
        k = keys.astype(np.float64)  # repro: noqa[RPR103] — model domain is float64 by design; search window bounds the error
        bounds = self._bounds
        # bucket of k: first b with bounds[b+1] >= k
        b = np.searchsorted(bounds[1:], k, side="left")
        b = np.clip(b, 0, self.buckets - 1)
        x0 = bounds[b]
        x1 = bounds[b + 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(x1 > x0, (k - x0) / (x1 - x0), 0.0)
        frac = np.clip(frac, 0.0, 1.0)
        return (b + frac) * self.depth

    def size_bytes(self) -> int:
        return (self.buckets + 1) * _BOUNDARY_BYTES
