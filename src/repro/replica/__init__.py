"""Replication tier: checkpoint shipping + WAL-tail streaming replicas.

The durable engine already produces everything a warm read replica
needs — bit-identical, checksum-verified segment files per checkpoint
generation (:mod:`repro.engine.persist`), a generation-counted
``MANIFEST.json`` commit point, and a gap-free LSN-ordered WAL
(:mod:`repro.engine.wal`).  This package moves those artifacts over
the wire, following the production recipe of "Learned Indexes for a
Google-scale Disk-based Database": models are expensive to fit and
cheap to ship, so replicas *load* segments (no refits) and absorb the
live tail into their pending buffers.

Two halves, one framed TLV protocol (:mod:`repro.net.protocol`):

* :class:`~repro.replica.leader.ReplicationServer` — wraps the
  leader's :class:`~repro.engine.durability.DurabilityManager`.  Its
  ``SegmentShipper`` side serves pinned manifest generations in
  chunked, checksum-verified segment fetches; its
  :class:`~repro.replica.leader.WalStreamer` side tails committed WAL
  records (hooked at the engine apply point) to every subscribed
  follower, heartbeating its head LSN.
* :func:`~repro.replica.follower.follow` /
  :class:`~repro.replica.follower.ReplicaIndex` — syncs a manifest
  generation into a local directory, boots through the engine's
  ordinary recovery path
  (:func:`~repro.engine.durability.replay_directory`), then applies
  the live stream continuously, serving oracle-exact reads with a
  bounded, observable staleness lag (:meth:`ReplicaIndex.lag`).

Lifecycle contract (documented in ``docs/ARCHITECTURE.md``): initial
full sync → continuous streaming → on disconnect, resume from the
local WAL head if the leader still holds those generations
(``keep_generations`` / pins), else fall back to a full generation
re-sync; a synced directory is a bona fide durable directory, so
``repro.open()`` promotes it to a standalone writable index.
"""

from .follower import (
    REPLICA_STATE_NAME,
    ReplicaError,
    ReplicaIndex,
    ReplicaLag,
    follow,
    is_replica_dir,
    read_replica_state,
)
from .leader import ReplicationServer, SegmentShipper, WalStreamer

__all__ = [
    "REPLICA_STATE_NAME",
    "ReplicaError",
    "ReplicaIndex",
    "ReplicaLag",
    "ReplicationServer",
    "SegmentShipper",
    "WalStreamer",
    "follow",
    "is_replica_dir",
    "read_replica_state",
]
