"""Thin async client for :class:`~repro.net.server.NetServer`.

One TCP connection, one background reader task, and a request-id →
future map: every call writes its frame immediately and awaits its own
future, so N concurrent callers pipeline N requests onto the socket
without waiting for each other's answers.  Per-request timeouts come
from :func:`asyncio.wait_for`; a dead connection fails every pending
future with :class:`ConnectionError`, and **idempotent reads** (lookup,
range, range_keys, ping, stats) transparently reconnect and retry while
writes surface the error — the caller must decide whether an insert
whose ack was lost actually landed.

Duplicate or unknown response ids are ignored: after a read worker dies
mid-flight the server reroutes its in-flight requests, and the original
worker may still have flushed an answer — reads are idempotent, so the
first response wins and the echo is dropped.
"""

from __future__ import annotations

import asyncio

from .protocol import DEFAULT_MAX_FRAME, FrameDecoder, ProtocolError, encode_frame

__all__ = ["Client"]

#: wire error names mapped back onto the exception the in-process API
#: would have raised; anything else surfaces as RuntimeError
_ERROR_TYPES = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "OverflowError": OverflowError,
    "ProtocolError": ProtocolError,
}


class Client:
    """Async client: pipelining, per-request timeouts, read reconnect."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 5.0,
        reconnect: bool = True,
        retries: int = 2,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.reconnect = reconnect
        self.retries = retries
        self.max_frame = max_frame
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> "Client":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        await self._teardown_transport()
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "Client":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _teardown_transport(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _reconnect(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        await self._teardown_transport()
        await self.connect()

    # ------------------------------------------------------------------
    # response plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        decoder = FrameDecoder(self.max_frame)
        try:
            while True:
                data = await self._reader.read(1 << 16)
                if not data:
                    raise ConnectionResetError("server closed the connection")
                for msg in decoder.feed(data):
                    self._on_response(msg)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_pending(exc)

    def _on_response(self, msg) -> None:
        if not isinstance(msg, dict):
            return
        fut = self._pending.pop(msg.get("id"), None)
        if fut is None or fut.done():
            return  # duplicate after a reroute, or a timed-out request
        if msg.get("ok"):
            fut.set_result(msg.get("r"))
        else:
            exc_type = _ERROR_TYPES.get(msg.get("error"), RuntimeError)
            fut.set_exception(exc_type(msg.get("message", "server error")))

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(
                    ConnectionError(f"connection lost: {exc}"))

    # ------------------------------------------------------------------
    # request core
    # ------------------------------------------------------------------
    async def _request(self, msg: dict, *, idempotent: bool):
        if self._closed and self._writer is None:
            raise RuntimeError("client is closed (call connect())")
        attempts = 1 + (self.retries if (idempotent and self.reconnect) else 0)
        last: BaseException | None = None
        for attempt in range(attempts):
            if self._writer is None or self._writer.is_closing():
                if not self.reconnect:
                    raise ConnectionError("connection is closed")
                await self._reconnect()
            rid = self._next_id
            self._next_id += 1
            fut = asyncio.get_running_loop().create_future()
            self._pending[rid] = fut
            try:
                self._writer.write(
                    encode_frame(dict(msg, id=rid), self.max_frame))
                await self._writer.drain()
                return await asyncio.wait_for(fut, self.timeout)
            except (ConnectionError, OSError) as exc:
                self._pending.pop(rid, None)
                last = exc
                if not (idempotent and self.reconnect):
                    raise
            except asyncio.TimeoutError:
                self._pending.pop(rid, None)
                raise
        raise last  # retries exhausted

    # ------------------------------------------------------------------
    # public ops (scalars answer scalars, vectors answer ndarrays)
    # ------------------------------------------------------------------
    async def ping(self) -> bool:
        return await self._request({"op": "ping"}, idempotent=True) == "pong"

    async def lookup(self, q):
        """Rank of ``q`` (scalar → int, list/ndarray → ndarray)."""
        return await self._request({"op": "lookup", "q": q}, idempotent=True)

    async def range(self, lo, hi):
        """Count of keys in ``[lo, hi)`` (scalar or vector)."""
        return await self._request(
            {"op": "range", "lo": lo, "hi": hi}, idempotent=True)

    async def range_keys(self, lo, hi):
        """The keys in ``[lo, hi)`` as an ndarray (scalar bounds only)."""
        return await self._request(
            {"op": "range_keys", "lo": lo, "hi": hi}, idempotent=True)

    async def insert(self, key) -> int:
        """Insert ``key``; returns the owning shard (never auto-retried)."""
        return await self._request(
            {"op": "insert", "key": key}, idempotent=False)

    async def delete(self, key) -> int:
        """Delete ``key``; raises KeyError if absent (never auto-retried)."""
        return await self._request(
            {"op": "delete", "key": key}, idempotent=False)

    async def stats(self) -> dict:
        """The server's :meth:`ServerStats.snapshot` plus net counters."""
        return await self._request({"op": "stats"}, idempotent=True)

    async def barrier(self) -> bool:
        """Drain the batcher and every worker's event queue, then return."""
        return bool(await self._request({"op": "barrier"}, idempotent=True))
