"""The §3.9 tuning procedure: decide the index configuration by cost model.

Tuning a Shift-Table deployment answers three questions:

1. *model alone or model + layer?*  — compare eq. (9) vs eq. (10), or use
   the §4.1 error-threshold rule when no latency curve is available;
2. *which layer size M?*  — the paper's default is ``M = N`` ("using a
   mapping layer that has the same number of entries as the keys ...
   exhibits its ultimate effect", §3.9), with S-X compression as the
   memory-bound fallback;
3. *which local search?*  — guaranteed windows use linear below the
   8-key threshold and binary above it; point estimates use linear or
   exponential search by expected error (§3.8).

:func:`tune` runs the procedure and returns the chosen index together
with a report of every configuration it considered.  There are also small
grid tuners for the RMI and RadixSpline baselines (substitution S4: SOSD
hand-picks per-dataset RMI architectures, we search a grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models.base import CDFModel
from ..models.rmi import RMIModel
from ..models.radix_spline import RadixSplineModel
from .compact import CompactShiftTable
from .corrected_index import CorrectedIndex
from .cost_model import (
    LatencyCurve,
    expected_error,
    latency_with_layer,
    latency_without_layer,
    should_enable_layer,
)
from .errors import signed_drift
from .records import SortedData
from .shift_table import ShiftTable


@dataclass
class TuningReport:
    """Everything the §3.9 procedure looked at before deciding."""

    error_before: float
    error_after: float
    layer_enabled: bool
    predicted_ns_without: float | None = None
    predicted_ns_with: float | None = None
    considered: list[dict] = field(default_factory=list)


def tune(
    data: SortedData,
    model: CDFModel,
    curve: LatencyCurve | None = None,
    model_ns: float = 10.0,
    num_partitions: int | None = None,
) -> tuple[CorrectedIndex, TuningReport]:
    """Run the §3.9 procedure for one model over one dataset.

    With a measured latency curve the decision compares eq. (9) against
    eq. (10); without one it falls back to §4.1's error-threshold rule.
    """
    layer = ShiftTable.build(data.keys, model, num_partitions)
    error_before = float(np.abs(signed_drift(data.keys, model)).mean())
    error_after = expected_error(layer.counts)

    if curve is not None:
        ns_with = latency_with_layer(model_ns, layer.counts, curve)
        ns_without = latency_without_layer(
            model_ns, layer.counts, layer.deltas, curve
        )
        enable = ns_with < ns_without
    else:
        ns_with = ns_without = None
        enable = should_enable_layer(error_before, error_after)

    report = TuningReport(
        error_before=error_before,
        error_after=error_after,
        layer_enabled=enable,
        predicted_ns_without=ns_without,
        predicted_ns_with=ns_with,
        considered=[
            {
                "layer": "R",
                "error": error_after,
                "predicted_ns": ns_with,
                "chosen": enable,
            },
            {
                "layer": None,
                "error": error_before,
                "predicted_ns": ns_without,
                "chosen": not enable,
            },
        ],
    )
    index = CorrectedIndex(data, model, layer if enable else None)
    return index, report


#: The paper's best face64 RMI averages ~35 keys per leaf (a 136 MB model
#: over 200M keys); scaled-down runs must not hand RMI finer leaves than
#: the original hardware budget allowed, or the micro-structure the paper
#: is about disappears into the leaves.
MIN_KEYS_PER_LEAF = 32


def _default_l3_bytes(data: SortedData) -> int:
    from ..hardware.machine import MachineSpec

    return MachineSpec.paper().scaled_for(len(data), data.record_bytes).l3_bytes


def tune_rmi(
    data: SortedData,
    leaf_counts: tuple[int, ...] = (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18),
    roots: tuple[str, ...] = ("linear", "radix"),
    curve: LatencyCurve | None = None,
    l3_bytes: int | None = None,
) -> tuple[RMIModel, list[dict]]:
    """Grid-tune an RMI (substitution S4 for SOSD's hand-picked models).

    The score mirrors the paper's trade-off: last-mile latency from the
    mean error (via the curve when available) plus a model-access penalty
    that kicks in when the leaf array outgrows the (scaled) last-level
    cache.  Leaf counts are capped at ``n / MIN_KEYS_PER_LEAF`` to keep
    the paper's keys-per-leaf budget under dataset scaling (DESIGN.md S3).
    """
    if l3_bytes is None:
        l3_bytes = _default_l3_bytes(data)
    max_leaves = max(len(data) // MIN_KEYS_PER_LEAF, 2)
    considered = []
    best: tuple[float, RMIModel] | None = None
    for root in roots:
        for leaves in leaf_counts:
            leaves = min(leaves, max_leaves)
            model = RMIModel(data.keys, num_leaves=leaves, root=root)
            err = max(model.mean_abs_error, 1.0)
            if curve is not None:
                local_ns = float(curve(err))
            else:
                local_ns = 36.0 * np.log2(err + 1.0)
            size_penalty = 36.0 if model.size_bytes() > l3_bytes else 12.0
            score = local_ns + size_penalty
            considered.append(
                {
                    "root": root,
                    "leaves": leaves,
                    "mean_abs_error": model.mean_abs_error,
                    "size_bytes": model.size_bytes(),
                    "score_ns": score,
                }
            )
            if best is None or score < best[0]:
                best = (score, model)
    assert best is not None, "no RMI configuration fits the data"
    return best[1], considered


def tune_radix_spline(
    data: SortedData,
    epsilons: tuple[int, ...] = (8, 32, 128),
    radix_bits: int = 18,
    curve: LatencyCurve | None = None,
    l3_bytes: int | None = None,
) -> tuple[RadixSplineModel, list[dict]]:
    """Grid-tune a RadixSpline's error bound the same way."""
    if l3_bytes is None:
        l3_bytes = _default_l3_bytes(data)
    considered = []
    best: tuple[float, RadixSplineModel] | None = None
    for eps in epsilons:
        model = RadixSplineModel(data.keys, epsilon=eps, radix_bits=radix_bits)
        if curve is not None:
            local_ns = float(curve(max(eps, 1)))
        else:
            local_ns = 36.0 * np.log2(eps + 1.0)
        size_penalty = 36.0 if model.size_bytes() > l3_bytes else 12.0
        score = local_ns + size_penalty
        considered.append(
            {
                "epsilon": eps,
                "spline_points": model.num_spline_points,
                "size_bytes": model.size_bytes(),
                "score_ns": score,
            }
        )
        if best is None or score < best[0]:
            best = (score, model)
    assert best is not None
    return best[1], considered


def choose_compact_layer(
    data: SortedData,
    model: CDFModel,
    budget_bytes: int,
) -> CompactShiftTable:
    """Largest S-mode layer that fits a memory budget (§3.4 compression)."""
    n = len(data)
    m = n
    while m > 1:
        probe = CompactShiftTable.build(data.keys, model, num_partitions=m)
        if probe.size_bytes() <= budget_bytes:
            return probe
        m //= 2
    return CompactShiftTable.build(data.keys, model, num_partitions=1)
