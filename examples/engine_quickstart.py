"""Sharded batch-query engine quickstart: serve query batches at scale.

Builds a :class:`ShardedIndex` (K range shards, each its own model +
Shift-Table layer), EXPLAINs a batch, runs vectorised point lookups and
cross-shard range queries, and compares against the scalar reference
loop — all verified against ``np.searchsorted`` ground truth.

Run:  PYTHONPATH=src python examples/engine_quickstart.py
"""

import time

import numpy as np

from repro.datasets import load
from repro.engine import BatchExecutor, ShardedIndex


def main() -> None:
    # 1. a sorted key array, range-partitioned into 8 shards
    keys = load("face64", 500_000)
    index = ShardedIndex.build(keys, num_shards=8, model="interpolation",
                               layer="R", name="face64")
    info = index.build_info()
    print(", ".join(f"{k}={v}" for k, v in info.items()))

    # 2. EXPLAIN a batch before running it
    rng = np.random.default_rng(0)
    queries = rng.choice(keys, 100_000)
    executor = BatchExecutor(index)
    print(executor.explain(queries[:4096]))

    # 3. vectorised point lookups, verified against ground truth
    t0 = time.perf_counter()
    positions = executor.lookup_batch(queries)
    dt = time.perf_counter() - t0
    assert np.array_equal(positions, np.searchsorted(keys, queries))
    print(f"\n{len(queries):,} point lookups in {dt * 1e3:.1f} ms "
          f"({len(queries) / dt:,.0f} queries/sec), all verified")

    # 4. range queries may straddle shard cuts freely
    lows = rng.choice(keys, 1_000)
    highs = lows + np.uint64(1 << 32)
    first, last = executor.range_batch(lows, highs)
    counts = executor.count_batch(lows, highs)
    assert np.array_equal(first, np.searchsorted(keys, lows))
    assert np.array_equal(last, np.searchsorted(keys, highs))
    print(f"{len(lows):,} range queries, mean cardinality {counts.mean():,.1f}")

    # 5. the scalar reference loop the engine replaces
    scalar = BatchExecutor(index, mode="scalar")
    sample = queries[:2_000]
    t0 = time.perf_counter()
    scalar_positions = scalar.lookup_batch(sample)
    scalar_dt = time.perf_counter() - t0
    assert np.array_equal(scalar_positions, positions[: len(sample)])
    speedup = (len(queries) / dt) / (len(sample) / scalar_dt)
    print(f"scalar loop: {len(sample) / scalar_dt:,.0f} queries/sec "
          f"— vectorised engine is {speedup:,.0f}x faster")


if __name__ == "__main__":
    main()
