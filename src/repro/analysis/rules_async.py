"""RPR4xx — async safety in the serving layer (``serve/``).

The asyncio front end (and the replication tier, ``replica/``)
multiplexes every client over one event loop; a
single blocking call in a coroutine stalls *all* in-flight requests for
its duration (a 5 ms fsync is ~250 batch windows).  ``IndexServer``
therefore pushes every blocking durability call through
``loop.run_in_executor``; ``RPR401`` flags the ones that slipped
through:

- ``time.sleep`` (use ``asyncio.sleep``)
- ``os.fsync``/``os.fdatasync`` (wrap in an executor)
- synchronous ``open``/``fdopen`` file I/O
- non-awaited ``.acquire()`` (``threading`` lock) — ``await
  lock.acquire()`` on an asyncio lock is fine

Calls inside nested *sync* ``def``s are exempt: that is exactly the
shape of an executor-shipped closure.
"""

from __future__ import annotations

import ast

from .framework import ModuleContext, Rule, register


def _blocking_reason(ctx: ModuleContext, call: ast.Call,
                     awaited: bool) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        mod, attr = func.value.id, func.attr
        if mod in ctx.aliases_of("time") and attr == "sleep":
            return "time.sleep blocks the event loop; use asyncio.sleep"
        if mod in ctx.aliases_of("os") and attr in (
                "fsync", "fdatasync", "replace", "rename"):
            return (f"os.{attr} blocks the event loop; run it via "
                    "loop.run_in_executor")
    if isinstance(func, ast.Attribute) and func.attr == "acquire" \
            and not awaited:
        return ("synchronous .acquire() blocks the event loop; await an "
                "asyncio lock or move the critical section to an executor")
    if isinstance(func, ast.Name):
        origin = ctx.from_imports.get(func.id, (None, None))
        if (func.id == "open" and func.id not in ctx.from_imports) \
                or origin == ("io", "open"):
            return ("synchronous file I/O blocks the event loop; do it in "
                    "an executor")
        if origin == ("time", "sleep"):
            return "time.sleep blocks the event loop; use asyncio.sleep"
        if origin == ("os", "fsync") or origin == ("os", "fdatasync"):
            return ("os.fsync blocks the event loop; run it via "
                    "loop.run_in_executor")
    return None


@register
class BlockingCallInAsync(Rule):
    """Blocking call directly inside an ``async def`` body."""

    code = "RPR401"
    name = "blocking-call-in-async"
    summary = ("blocking calls (time.sleep, os.fsync, lock acquire, sync "
               "file I/O) in async def stall every in-flight request")
    scope_dirs = ("serve", "replica")

    def check(self, ctx: ModuleContext) -> list:
        findings = []

        def visit(node, in_async: bool, awaited: bool) -> None:
            if isinstance(node, ast.AsyncFunctionDef):
                in_async = True
            elif isinstance(node, (ast.FunctionDef, ast.Lambda)):
                # nested sync def: executor-shipped closure territory
                in_async = False
            if in_async and isinstance(node, ast.Call):
                reason = _blocking_reason(ctx, node, awaited)
                if reason is not None:
                    findings.append(self.finding(ctx, node, reason))
            child_awaited = isinstance(node, ast.Await)
            for child in ast.iter_child_nodes(node):
                visit(child, in_async, child_awaited)

        visit(ctx.tree, False, False)
        return findings
