"""Lint fixture: RPR2xx lock-discipline violations.

This file is never imported, only parsed.
"""

import threading

from repro.engine.sharded import WriteEvent


class Engine:
    def __init__(self):
        self._write_lock = threading.RLock()
        self._count = 0
        self._dirty = False

    def insert(self, key):
        with self._write_lock:
            self._count += 1
            self._dirty = True
            self._emit(WriteEvent("insert", 0, key))

    def _emit(self, event):
        pass

    def refresh_cache(self):
        self._dirty = False  # expect: RPR201

    def notify_unlocked(self, key):
        return WriteEvent("insert", 0, key)  # expect: RPR202


def make_event(key):
    return WriteEvent("insert", 0, key)  # expect: RPR202
