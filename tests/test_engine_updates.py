"""Updatable engine: interleaved reads/writes stay oracle-exact.

The acceptance bar mirrors the read-only engine's: every answer the
:class:`BatchExecutor` returns between (and after) mutations must equal
``np.searchsorted`` over the live key sequence — for every shard
backend, across shard boundaries, with inserts, deletes, amortised
refreshes, shard splits and drained shards in the mix.
"""

from __future__ import annotations

import bisect

import numpy as np
import pytest

from repro.engine import (
    BACKEND_KINDS,
    BatchExecutor,
    ShardedIndex,
    make_backend,
)

BACKENDS = list(BACKEND_KINDS)


def oracle(reference: list[int], dtype) -> np.ndarray:
    return np.asarray(reference, dtype=dtype)


@pytest.mark.parametrize("backend", BACKENDS)
def test_interleaved_inserts_deletes_and_batch_reads(backend):
    rng = np.random.default_rng(11)
    keys = np.unique(rng.integers(0, 100_000, 4_200, dtype=np.uint64))[:4_000]
    index = ShardedIndex.build(keys, 6, backend=backend)
    executor = BatchExecutor(index)
    reference = sorted(map(int, keys))

    for step in range(400):
        if step % 3 == 2 and reference:
            victim = reference[int(rng.integers(0, len(reference)))]
            index.delete(np.uint64(victim))
            reference.remove(victim)
        else:
            value = int(rng.integers(0, 100_000))
            index.insert(np.uint64(value))
            bisect.insort(reference, value)
        if step % 25 == 0:
            live = oracle(reference, keys.dtype)
            queries = rng.integers(0, 100_001, 256).astype(np.uint64)
            got = executor.lookup_batch(queries)
            assert np.array_equal(
                got, np.searchsorted(live, queries, side="left")
            ), f"{backend} diverged at step {step}"

    # final: point lookups, ranges straddling shard cuts, counts, scans
    live = oracle(reference, keys.dtype)
    queries = rng.integers(0, 100_001, 2_000).astype(np.uint64)
    assert np.array_equal(
        executor.lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )
    lows = rng.integers(0, 90_000, 200).astype(np.uint64)
    highs = lows + rng.integers(1, 30_000, 200).astype(np.uint64)
    first, last = executor.range_batch(lows, highs)
    assert np.array_equal(first, np.searchsorted(live, lows, side="left"))
    assert np.array_equal(last, np.searchsorted(live, highs, side="left"))
    for scanned, a, b in zip(executor.scan_batch(lows, highs), first, last):
        assert np.array_equal(scanned, live[a:b])


@pytest.mark.parametrize("backend", ["gapped", "fenwick"])
def test_acceptance_100k_keys_4_shards_10pct_inserts(backend):
    """The PR's acceptance bar: >=100k keys, >=4 shards, a 10%-insert
    mixed workload, every batch answer oracle-verified."""
    rng = np.random.default_rng(23)
    keys = np.unique(rng.integers(0, 1 << 40, 103_000, dtype=np.uint64))
    keys = keys[:100_000]
    assert len(keys) == 100_000
    index = ShardedIndex.build(keys, 4, backend=backend)
    executor = BatchExecutor(index)

    inserted: list[int] = []
    num_rounds, reads_per_round, writes_per_round = 10, 2_000, 222
    for round_no in range(num_rounds):
        for value in rng.integers(0, 1 << 40, writes_per_round):
            index.insert(np.uint64(int(value)))
            inserted.append(int(value))
        live = np.sort(np.concatenate(
            [keys, np.asarray(inserted, dtype=np.uint64)]
        ))
        queries = np.concatenate([
            rng.choice(live, reads_per_round // 2),
            rng.integers(0, 1 << 40, reads_per_round // 2,
                         dtype=np.uint64),
        ])
        got = executor.lookup_batch(queries)
        assert np.array_equal(
            got, np.searchsorted(live, queries, side="left")
        ), f"{backend} diverged in round {round_no}"
    # ~10% writes overall, and they really are pending/absorbed
    assert len(inserted) == num_rounds * writes_per_round
    assert len(index) == 100_000 + len(inserted)


@pytest.mark.parametrize("backend", BACKENDS)
def test_updates_crossing_shard_boundaries_and_duplicates(backend):
    # duplicate runs planted right on the build-time cuts, then hammered
    keys = np.repeat(
        np.asarray([100, 200, 300, 400, 500], dtype=np.uint64), 40
    )
    index = ShardedIndex.build(keys, 5, backend=backend)
    executor = BatchExecutor(index)
    reference = sorted(map(int, keys))
    rng = np.random.default_rng(3)
    for _ in range(120):
        value = int(rng.choice([100, 150, 200, 250, 300, 350, 400, 500]))
        index.insert(np.uint64(value))
        bisect.insort(reference, value)
    for _ in range(60):
        victim = reference[int(rng.integers(0, len(reference)))]
        index.delete(np.uint64(victim))
        reference.remove(victim)
    live = oracle(reference, keys.dtype)
    queries = np.arange(0, 600, dtype=np.uint64)
    assert np.array_equal(
        executor.lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )
    # a duplicate run never straddles shards, so equal-key lookups are
    # still the global run start
    run_start = executor.lookup_batch(np.asarray([200], dtype=np.uint64))[0]
    assert live[run_start] == 200 and (run_start == 0 or live[run_start - 1] < 200)


@pytest.mark.parametrize("backend", BACKENDS)
def test_shard_splits_keep_answers_exact(backend):
    rng = np.random.default_rng(7)
    keys = np.unique(rng.integers(0, 10_000, 800, dtype=np.uint64))[:600]
    index = ShardedIndex.build(keys, 4, backend=backend)
    executor = BatchExecutor(index)
    reference = sorted(map(int, keys))
    # hammer the first shard's key range so it must split
    for value in rng.integers(0, 1_500, 2_500):
        index.insert(np.uint64(int(value)))
        bisect.insort(reference, int(value))
    assert index.num_shards > 4, "expected at least one shard split"
    live = oracle(reference, keys.dtype)
    queries = rng.integers(0, 10_001, 2_000).astype(np.uint64)
    assert np.array_equal(
        executor.lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )
    # offsets stay consistent with the live shard sizes
    assert int(index.offsets[-1]) == len(reference)
    assert bool(np.all(np.diff(index.offsets) >= 0))


@pytest.mark.parametrize("backend", BACKENDS)
def test_draining_a_shard_and_the_whole_index(backend):
    keys = np.arange(0, 120, dtype=np.uint64)
    index = ShardedIndex.build(keys, 4, backend=backend)
    executor = BatchExecutor(index)
    # drain shard 0 completely
    for value in range(30):
        index.delete(np.uint64(value))
    live = np.arange(30, 120, dtype=np.uint64)
    queries = np.asarray([0, 15, 29, 30, 31, 119, 200], dtype=np.uint64)
    assert np.array_equal(
        executor.lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )
    # drain everything: every lower bound collapses to 0
    for value in range(30, 120):
        index.delete(np.uint64(value))
    assert len(index) == 0
    assert np.array_equal(
        executor.lookup_batch(queries), np.zeros(len(queries), np.int64)
    )
    # and the index is reusable afterwards
    index.insert(np.uint64(50))
    index.insert(np.uint64(10))
    assert np.array_equal(
        executor.lookup_batch(np.asarray([0, 10, 11, 50, 51], np.uint64)),
        [0, 0, 1, 1, 2],
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_delete_semantics(backend):
    keys = np.asarray([5, 7, 7, 7, 9, 12], dtype=np.uint64)
    index = ShardedIndex.build(keys, 2, backend=backend)
    with pytest.raises(KeyError):
        index.delete(np.uint64(6))
    with pytest.raises(KeyError):
        index.delete(np.uint64(10_000))
    with pytest.raises(KeyError):
        index.delete(-3)  # below the uint64 domain: cannot exist
    for expected_remaining in (2, 1, 0):
        index.delete(np.uint64(7))
        assert int((index.keys == 7).sum()) == expected_remaining
    with pytest.raises(KeyError):
        index.delete(np.uint64(7))
    assert np.array_equal(index.keys, [5, 9, 12])


def test_insert_rejects_out_of_domain_keys():
    keys = np.arange(10, dtype=np.uint64)
    index = ShardedIndex.build(keys, 2)
    with pytest.raises(ValueError):
        index.insert(-1)
    with pytest.raises(ValueError):
        index.insert(1 << 65)


@pytest.mark.parametrize("backend", BACKENDS)
def test_refresh_folds_updates_and_preserves_answers(backend):
    rng = np.random.default_rng(19)
    keys = np.unique(rng.integers(0, 50_000, 3_000, dtype=np.uint64))
    index = ShardedIndex.build(keys, 4, backend=backend)
    executor = BatchExecutor(index)
    reference = sorted(map(int, keys))
    for value in rng.integers(0, 50_000, 300):
        index.insert(np.uint64(int(value)))
        bisect.insort(reference, int(value))
    index.refresh()
    assert index.pending_updates() == 0
    live = oracle(reference, keys.dtype)
    queries = rng.integers(0, 50_001, 1_000).astype(np.uint64)
    assert np.array_equal(
        executor.lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )


def test_plan_reports_backend_and_staleness_columns():
    keys = np.arange(0, 2_000, dtype=np.uint64)
    index = ShardedIndex.build(keys, 3, backend="fenwick")
    for value in range(0, 100):
        index.insert(np.uint64(value))
    executor = BatchExecutor(index)
    plan = executor.plan(np.arange(0, 2_000, 10, dtype=np.uint64))
    assert all(s.backend == "fenwick" for s in plan.slices)
    assert sum(s.pending_updates for s in plan.slices) == 100
    text = plan.describe()
    assert "<fenwick, pending=" in text
    # static shards advertise zero staleness
    static_plan = BatchExecutor(ShardedIndex.build(keys, 3)).plan(
        np.arange(0, 100, dtype=np.uint64)
    )
    assert all(s.backend == "static" for s in static_plan.slices)
    assert all(s.pending_updates == 0 for s in static_plan.slices)
    assert "<static>" in static_plan.describe()


def test_build_rejects_unknown_backend():
    keys = np.arange(10, dtype=np.uint64)
    with pytest.raises(ValueError):
        ShardedIndex.build(keys, 2, backend="clay")
    with pytest.raises(ValueError):
        make_backend("clay", keys, None)


@pytest.mark.parametrize("backend", BACKENDS)
def test_scalar_mode_agrees_with_vectorized_under_updates(backend):
    rng = np.random.default_rng(29)
    keys = np.unique(rng.integers(0, 5_000, 500, dtype=np.uint64))
    index = ShardedIndex.build(keys, 3, backend=backend)
    reference = sorted(map(int, keys))
    for value in rng.integers(0, 5_000, 150):
        index.insert(np.uint64(int(value)))
        bisect.insort(reference, int(value))
    for victim in rng.choice(reference, 50, replace=False):
        index.delete(np.uint64(int(victim)))
        reference.remove(int(victim))
    queries = rng.integers(0, 5_001, 300).astype(np.uint64)
    vectorized = BatchExecutor(index).lookup_batch(queries)
    scalar = BatchExecutor(index, mode="scalar").lookup_batch(queries)
    live = oracle(reference, keys.dtype)
    assert np.array_equal(vectorized, scalar)
    assert np.array_equal(
        vectorized, np.searchsorted(live, queries, side="left")
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_mismatched_query_dtypes_stay_exact_under_updates(backend):
    rng = np.random.default_rng(31)
    keys = np.sort(rng.integers(1 << 61, 1 << 63, 2_000, dtype=np.uint64))
    index = ShardedIndex.build(keys, 3, backend=backend)
    inserted = rng.integers(1 << 61, 1 << 63, 200, dtype=np.uint64)
    for value in inserted:
        index.insert(value)
    live = np.sort(np.concatenate([keys, inserted]))
    queries = np.concatenate([
        live[:100].astype(np.int64) + 1,
        np.asarray([-5, -1, 0], dtype=np.int64),
    ])
    want = np.searchsorted(
        live, np.maximum(queries, 0).astype(np.uint64), side="left"
    )
    got = BatchExecutor(index).lookup_batch(queries)
    assert np.array_equal(got, want)
    assert index.lookup(np.int64(-5)) == 0
    assert index.lookup((1 << 64) - 1) == len(live)


def test_adopted_corrected_index_keeps_its_config_after_writes():
    # a bare CorrectedIndex adopted by the executor must be rebuilt with
    # ITS model/layer on the first write, not the engine defaults
    from repro.models.factory import build_corrected_index
    from repro.core.compact import CompactShiftTable
    from repro.models import RMIModel

    keys = np.sort(
        np.random.default_rng(2).integers(0, 1 << 30, 3_000, dtype=np.uint64)
    )
    executor = BatchExecutor(build_corrected_index(keys, model="rmi", layer="S"))
    index = executor.index
    index.insert(np.uint64(12345))
    shard = index.shards[0]
    assert isinstance(shard.model, RMIModel)
    assert isinstance(shard.layer, CompactShiftTable)
    live = np.sort(np.append(keys, np.uint64(12345)))
    queries = np.random.default_rng(3).choice(live, 500)
    assert np.array_equal(
        executor.lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )


def test_delete_heavy_workload_triggers_fenwick_merges():
    keys = np.arange(0, 4_000, dtype=np.uint64)
    index = ShardedIndex.build(keys, 2, backend="fenwick", merge_threshold=64)
    for value in range(0, 1_000):
        index.delete(np.uint64(value))
    # tombstones must have been folded back, not accumulated unboundedly
    assert index.pending_updates() < 64 * 2
    live = np.arange(1_000, 4_000, dtype=np.uint64)
    queries = np.arange(0, 4_000, 7, dtype=np.uint64)
    assert np.array_equal(
        BatchExecutor(index).lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_unsplittable_duplicate_run_shard_backs_off(backend):
    keys = np.arange(0, 40, dtype=np.uint64)
    index = ShardedIndex.build(keys, 4, backend=backend)
    # one value hammered until its shard is a single giant run far past
    # the split threshold: must stay exact and record the failed split
    for _ in range(300):
        index.insert(np.uint64(5))
    shard = index.shards[int(index.route(np.uint64(5)))]
    assert shard.split_failed_at > 0
    live = np.sort(np.concatenate(
        [keys, np.full(300, 5, dtype=np.uint64)]
    ))
    queries = np.asarray([0, 4, 5, 6, 39, 40], dtype=np.uint64)
    assert np.array_equal(
        BatchExecutor(index).lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_scalar_lookup_forwards_the_tracker(backend):
    from repro.hardware.hierarchy import MemoryHierarchy
    from repro.hardware.machine import MachineSpec
    from repro.hardware.tracker import SimTracker

    keys = np.arange(0, 2_000, dtype=np.uint64)
    index = ShardedIndex.build(keys, 2, backend=backend)
    index.insert(np.uint64(777))
    tracker = SimTracker(MemoryHierarchy(MachineSpec.paper().scaled_for(2_001, 16)))
    before = tracker.stats.instructions
    index.lookup(np.uint64(1_234), tracker)
    assert tracker.stats.instructions > before


def test_shard_split_preserves_adopted_config():
    from repro.models.factory import build_corrected_index
    from repro.core.compact import CompactShiftTable
    from repro.models import RMIModel

    rng = np.random.default_rng(41)
    keys = np.sort(rng.integers(0, 1 << 30, 1_500, dtype=np.uint64))
    executor = BatchExecutor(build_corrected_index(keys, model="rmi", layer="S"))
    index = executor.index
    # double the single adopted shard so it splits
    inserted = rng.integers(0, 1 << 30, 1_600, dtype=np.uint64)
    for value in inserted:
        index.insert(value)
    assert index.num_shards > 1, "expected the adopted shard to split"
    for shard in index.shards:
        if shard is not None:
            assert isinstance(shard.model, RMIModel)
            assert isinstance(shard.layer, CompactShiftTable)
    live = np.sort(np.concatenate([keys, inserted]))
    queries = rng.choice(live, 800)
    assert np.array_equal(
        executor.lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )


def test_fenwick_merge_threshold_scales_down_for_small_shards():
    from repro.engine import BackendConfig, FenwickBackend

    keys = np.arange(0, 100, dtype=np.uint64)
    backend = FenwickBackend(keys, BackendConfig())
    # the delta buffer may never dwarf the 100-key base: cap is n // 4
    assert backend._u.merge_threshold == 25
    # an explicit small threshold is honoured as-is
    small = FenwickBackend(keys, BackendConfig(merge_threshold=8))
    assert small._u.merge_threshold == 8


def test_min_key_skips_tombstoned_and_gapped_minima():
    from repro.engine import BackendConfig, FenwickBackend, GappedBackend

    keys = np.asarray([10, 10, 20, 30, 40], dtype=np.uint64)
    fen = FenwickBackend(keys, BackendConfig())
    assert fen.min_key() == 10
    fen.delete(np.uint64(10))
    assert fen.min_key() == 10  # one copy of the run survives
    fen.delete(np.uint64(10))
    assert fen.min_key() == 20
    fen.insert(np.uint64(5))
    assert fen.min_key() == 5  # buffered key below the base minimum

    gap = GappedBackend(keys, BackendConfig())
    gap.delete(np.uint64(10))
    gap.delete(np.uint64(10))
    assert gap.min_key() == 20


def test_upper_bound_negative_infinity_on_float_keys():
    keys = np.asarray([1.5, 2.5, 7.0], dtype=np.float64)
    from repro.core.corrected_index import CorrectedIndex
    from repro.core.range_query import RangeQueryEngine
    from repro.core.records import SortedData
    from repro.core.shift_table import ShiftTable
    from repro.models import InterpolationModel

    model = InterpolationModel(keys)
    eng = RangeQueryEngine(
        CorrectedIndex(SortedData(keys), model, ShiftTable.build(keys, model))
    )
    assert eng.upper_bound(-np.inf) == 0
    assert eng.equal_range(-np.inf) == (0, 0)
    assert eng.upper_bound(np.inf) == 3
    assert eng.upper_bound(np.nan) == 3  # NaN sorts after everything


def test_gapped_shard_refresh_restores_slack():
    # shard-level maintenance owns gapped compaction: once a shard's
    # slack drops under 5% the next insert must re-spread it (well
    # before the 2x-size split threshold is reached)
    keys = np.arange(0, 4_000, dtype=np.uint64)
    index = ShardedIndex.build(keys, 4, backend="gapped", density=0.75)
    reference = list(range(4_000))
    rng = np.random.default_rng(43)
    for value in rng.integers(0, 1_000, 350):  # ~35% growth of shard 0
        index.insert(np.uint64(int(value)))
        bisect.insort(reference, int(value))
    shard = index.shards[0]
    assert shard._g.gap_fraction > 0.05, "refresh never ran"
    live = np.asarray(reference, dtype=np.uint64)
    queries = rng.integers(0, 4_001, 1_000).astype(np.uint64)
    assert np.array_equal(
        BatchExecutor(index).lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_drain_then_merge_sequence_stays_exact(backend):
    """A shard drained below a quarter of the target merges into its
    neighbour (instead of lingering near-empty), and the whole
    drain-then-merge sequence keeps every answer oracle-exact."""
    rng = np.random.default_rng(17)
    keys = np.unique(rng.integers(0, 50_000, 2_100, dtype=np.uint64))[:2_000]
    index = ShardedIndex.build(keys, 4, backend=backend)
    executor = BatchExecutor(index)
    reference = sorted(map(int, keys))
    target = index._target_shard_keys

    # drain the second shard key by key, verifying along the way
    victims = list(map(int, index.shards[int(index._nonempty[1])].keys()))
    for i, victim in enumerate(victims):
        index.delete(np.uint64(victim))
        reference.remove(victim)
        if i % 100 == 0 or i == len(victims) - 1:
            live = oracle(reference, keys.dtype)
            queries = rng.integers(0, 50_001, 512).astype(np.uint64)
            assert np.array_equal(
                executor.lookup_batch(queries),
                np.searchsorted(live, queries, side="left"),
            ), f"{backend} diverged after {i + 1} drains"

    # the drained shard coalesced long before it emptied: no live shard
    # may linger below the near-empty threshold next to a viable
    # neighbour, and the merge counters must say the coalescing happened
    assert index.num_merges >= 1
    live_sizes = [len(index.shards[int(s)]) for s in index._nonempty]
    assert all(size > max(target // 4, 1) for size in live_sizes)

    # run-alignment survives the merges: shard ranges stay disjoint and
    # strictly increasing (a duplicate run can never straddle a seam)
    previous_max = None
    for s in index._nonempty:
        shard_keys = index.shards[int(s)].keys()
        if previous_max is not None:
            assert previous_max < shard_keys[0]
        previous_max = shard_keys[-1]

    # and the structure is still fully usable: mixed follow-up workload
    for value in rng.integers(0, 50_000, 200):
        index.insert(np.uint64(int(value)))
        bisect.insort(reference, int(value))
    live = oracle(reference, keys.dtype)
    queries = rng.integers(0, 50_001, 2_000).astype(np.uint64)
    assert np.array_equal(
        executor.lookup_batch(queries),
        np.searchsorted(live, queries, side="left"),
    )
