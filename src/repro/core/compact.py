"""Compressed Shift-Table, S-mode (paper §3.4, eq. 7; Figure 9's ``S-X``).

Instead of ``<Δ, C>`` pairs, each partition stores a single *mean drift*
``Δ̄^M_j = ⌊mean(N·F(x) − ⌊N·F_θ(x)⌋)⌋`` — half the footprint of R-mode
(the paper: "the memory footprint of S-1 is half the size of R-1").  The
corrected prediction ``pred + Δ̄`` is a point estimate with no guaranteed
window, so the last mile uses linear or exponential search (§3.4, §3.8).

``S-X`` in Figure 9 means one entry per ``X`` records, i.e.
``M = N / X``.  The layer can also be built from a *sample* of the keys
(§3.4, last paragraph), trading accuracy for build time.
"""

from __future__ import annotations

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, alloc_region
from ..models.base import (
    CDFModel,
    partition_index,
    partition_index_batch,
    predicted_index_batch,
)
from ..datasets.cdf import key_positions


def _field_bytes(max_abs_drift: int) -> int:
    for nbytes in (1, 2, 4):
        if max_abs_drift < (1 << (8 * nbytes - 1)):
            return nbytes
    return 8


class CompactShiftTable:
    """S-mode correction layer: one mean-drift entry per partition."""

    def __init__(
        self,
        drifts: np.ndarray,
        counts: np.ndarray,
        num_keys: int,
        mean_abs_error: float,
    ) -> None:
        if len(drifts) != len(counts):
            raise ValueError("drifts and counts must align")
        self.drifts = drifts
        self.counts = counts
        self.num_keys = int(num_keys)
        self.num_partitions = len(drifts)
        #: mean |error| after correction over the build keys — drives the
        #: linear-vs-exponential local search choice (§3.8)
        self.mean_abs_error = float(mean_abs_error)
        self.entry_bytes = _field_bytes(int(np.abs(drifts).max(initial=0)))
        self.region = alloc_region(
            f"compact_st_{id(self):x}", self.entry_bytes, self.num_partitions
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        data: np.ndarray,
        model: CDFModel,
        num_partitions: int | None = None,
        sample_size: int | None = None,
        seed: int = 0,
    ) -> "CompactShiftTable":
        """Build from all keys, or from a random sample (§3.4).

        Sampling reduces build time to ``O(S)·O(F_θ) + O(M)`` at the cost
        of accuracy; empty partitions (far more of them under sampling)
        borrow the next non-empty partition's drift.
        """
        n = len(data)
        if n == 0:
            raise ValueError("cannot build over empty data")
        if n != model.num_keys:
            raise ValueError("model was trained for a different key count")
        m = int(num_partitions) if num_partitions is not None else n
        if m <= 0:
            raise ValueError("num_partitions must be positive")

        if sample_size is not None and sample_size < n:
            rng = np.random.default_rng(seed)
            take = np.sort(rng.choice(n, size=int(sample_size), replace=False))
            sample = data[take]
            pos = np.searchsorted(data, sample, side="left").astype(np.int64)
        else:
            sample = data
            pos = key_positions(data)

        pred_float = model.predict_pos_batch(sample)
        pred = predicted_index_batch(pred_float, n)
        part = partition_index_batch(pred_float, n, m)
        drift = pos - pred

        sums = np.zeros(m, dtype=np.float64)
        np.add.at(sums, part, drift.astype(np.float64))
        counts = np.bincount(part, minlength=m).astype(np.int64)
        occupied = counts > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            mean = np.where(occupied, sums / np.maximum(counts, 1), 0.0)
        # eq. (7)'s ``[·]`` truncates toward zero (Table 1: a mean drift of
        # -40.6 becomes -40, not -41)
        drifts = np.trunc(mean).astype(np.int64)

        # empty partitions: aim at the first record of the next non-empty
        # partition (same policy as R-mode, but a point instead of a window)
        if not bool(occupied.all()):
            starts = np.full(m, n, dtype=np.int64)
            np.minimum.at(starts, part, pos)
            idx = np.arange(m)
            next_occ = np.where(occupied, idx, m)
            next_occ = np.minimum.accumulate(next_occ[::-1])[::-1]
            has_next = next_occ < m
            j_next = np.where(has_next, next_occ, m - 1)
            s_next = np.where(has_next, starts[j_next], n)
            if m == n:
                b_hi = idx
            else:
                b_hi = np.minimum(
                    np.ceil((idx + 1) * (n / m)).astype(np.int64), n - 1
                )
            empty = ~occupied
            drifts[empty] = s_next[empty] - b_hi[empty]

        err = np.abs(pos - (pred + drifts[part]))
        return cls(drifts, counts, n, float(err.mean()))

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def correct(
        self, pred_float: float, tracker: NullTracker = NULL_TRACKER
    ) -> int:
        """Corrected point prediction (one layer lookup, no window)."""
        n = self.num_keys
        j = partition_index(pred_float, n, self.num_partitions)
        tracker.touch(self.region, j)
        tracker.instr(4)
        if pred_float <= 0.0:
            pred = 0
        else:
            pred = int(pred_float)
            if pred >= n:
                pred = n - 1
        corrected = pred + int(self.drifts[j])
        if corrected < 0:
            return 0
        return corrected if corrected < n else n - 1

    def correct_batch(self, pred_float: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`correct` (no tracing)."""
        n = self.num_keys
        j = partition_index_batch(pred_float, n, self.num_partitions)
        pred = predicted_index_batch(pred_float, n)
        return np.clip(pred + self.drifts[j], 0, n - 1)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Layer footprint: M single-field entries (half of R-mode)."""
        return self.num_partitions * self.entry_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactShiftTable(M={self.num_partitions}, N={self.num_keys}, "
            f"entry_bytes={self.entry_bytes})"
        )
