"""Networked serving: wire protocol, TCP front end, read-worker scale-out.

The serving stack so far ends at :class:`~repro.serve.server.IndexServer`
— in-process asyncio.  This package puts a network boundary and CPU
scale-out around it:

* :mod:`repro.net.protocol` — a length-prefixed binary frame codec
  (magic + version + u32 length, TLV payload) with an incremental
  decoder built for adversarial peers: bad magic, oversized prefixes
  and truncated frames all fail loudly at the connection that sent
  them, never anywhere else.
* :mod:`repro.net.server` — :class:`NetServer`, an asyncio TCP front
  end whose socket-read boundary feeds the
  :class:`~repro.serve.batcher.MicroBatcher` *synchronously*: every
  request decoded from one TCP read joins the current micro-batch with
  no per-request task churn.
* :mod:`repro.net.client` — :class:`Client`, a thin async client with
  pipelining (request-id matched futures), per-request timeouts and
  reconnect-on-idempotent-read.
* :mod:`repro.net.shm` / :mod:`repro.net.workers` — N read-worker
  processes mapping one copy of the engine's key/slot arrays via
  ``multiprocessing.shared_memory`` (rebuilt from the persisted segment
  codecs), a single writer process owning mutations, and ``WriteEvent``
  fan-out over per-worker control sockets.

Entry points: ``Index.serve(addr=...)`` (:mod:`repro.api`) and the CLI
``serve`` / ``client-bench`` subcommands.
"""

from .client import Client
from .protocol import (
    FrameDecoder,
    ProtocolError,
    encode_frame,
    pack,
    unpack,
)
from .server import NetServer

__all__ = [
    "Client",
    "NetServer",
    "FrameDecoder",
    "ProtocolError",
    "encode_frame",
    "pack",
    "unpack",
]
