"""The ``repro.Index`` facade: one front door over build → query →
mutate → save → ``repro.open`` → serve (ISSUE 5 tentpole).

Covers :class:`IndexConfig` validation/presets/dict round-trips, every
facade read and write path against ``np.searchsorted`` oracles, the
save → reopen → serve lifecycle (including a fresh-subprocess reopen,
the acceptance criterion's shape at test scale), and the new CLI
``version``/``build``/``inspect`` commands.
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
from dataclasses import FrozenInstanceError
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import Index, IndexConfig
from repro.api import PRESETS
from repro.engine.autotune import AutoTuneConfig
from repro.engine.persist import IndexPersistError

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture()
def keys():
    rng = np.random.default_rng(21)
    keys = rng.integers(0, 1 << 40, 30_000, dtype=np.uint64)
    keys[500:560] = keys[500]  # duplicate run
    keys.sort()
    return keys


# ----------------------------------------------------------------------
# IndexConfig
# ----------------------------------------------------------------------
def test_config_validates_every_field():
    with pytest.raises(ValueError, match="num_shards"):
        IndexConfig(num_shards=0)
    with pytest.raises(ValueError, match="model"):
        IndexConfig(model="no-such-model")
    with pytest.raises(ValueError, match="model family name"):
        IndexConfig(model=lambda ks: ks)  # type: ignore[arg-type]
    with pytest.raises(ValueError, match="layer"):
        IndexConfig(layer="Q")
    with pytest.raises(ValueError, match="backend"):
        IndexConfig(backend="btree")
    with pytest.raises(ValueError, match="density"):
        IndexConfig(density=0.01)
    with pytest.raises(ValueError, match="workers"):
        IndexConfig(workers=0)
    with pytest.raises(ValueError, match="auto_tune"):
        IndexConfig(auto_tune="yes")  # type: ignore[arg-type]


def test_config_is_immutable():
    config = IndexConfig()
    with pytest.raises(FrozenInstanceError):
        config.num_shards = 2  # type: ignore[misc]


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_presets_resolve_and_accept_overrides(name):
    config = IndexConfig.from_preset(name, num_shards=3)
    assert config.num_shards == 3
    if name == "auto":
        assert config.auto_tune is True
    with pytest.raises(ValueError, match="preset"):
        IndexConfig.from_preset("nope")


@pytest.mark.parametrize("config", [
    IndexConfig(),
    IndexConfig.from_preset("mixed", num_shards=5),
    IndexConfig(auto_tune=AutoTuneConfig(min_shard_keys=128), layer=None,
                backend="fenwick", merge_threshold=64),
])
def test_config_dict_round_trip(config):
    payload = config.to_dict()
    assert payload["config_version"] == repro.api.CONFIG_VERSION
    assert IndexConfig.from_dict(payload) == config


def test_config_rejects_future_dict_version():
    payload = IndexConfig().to_dict()
    payload["config_version"] = 99
    with pytest.raises(ValueError, match="version"):
        IndexConfig.from_dict(payload)


# ----------------------------------------------------------------------
# facade reads and writes
# ----------------------------------------------------------------------
def test_build_accepts_config_preset_and_overrides(keys):
    for config in (None, "mixed", IndexConfig(num_shards=2)):
        index = Index.build(keys, config, num_shards=3)
        assert index.engine.num_shards == 3
        assert index.source == "built"
    with pytest.raises(TypeError, match="config"):
        Index.build(keys, 42)  # type: ignore[arg-type]


def test_facade_reads_match_oracle(keys):
    index = Index.build(keys, IndexConfig(num_shards=4, backend="gapped"))
    rng = np.random.default_rng(0)
    queries = np.concatenate([
        rng.choice(keys, 500), rng.integers(0, 1 << 41, 500, dtype=np.uint64)
    ])
    assert np.array_equal(index.lookup_many(queries),
                          np.searchsorted(keys, queries, side="left"))
    q = keys[777]
    assert index.lookup(q) == int(np.searchsorted(keys, q, side="left"))

    lo, hi = keys[100], keys[2_000]
    first, last = index.range(lo, hi)
    assert (first, last) == (int(np.searchsorted(keys, lo)),
                             int(np.searchsorted(keys, hi)))
    assert index.count(lo, hi) == last - first
    assert np.array_equal(index.scan(lo, hi), keys[first:last])

    lows = rng.choice(keys, 64)
    highs = lows + np.uint64(1 << 30)
    f_many, l_many = index.range_many(lows, highs)
    assert np.array_equal(f_many, np.searchsorted(keys, lows))
    assert np.array_equal(l_many, np.searchsorted(keys, highs))
    for got, a, b in zip(index.scan_many(lows, highs), f_many, l_many):
        assert np.array_equal(got, keys[a:b])

    assert "shard" in index.explain(queries[:64])
    assert len(index) == len(keys)
    assert index.key_dtype == keys.dtype


def test_facade_writes_and_maintenance(keys):
    index = Index.build(keys, "mixed", num_shards=4)
    oracle = keys.copy()
    rng = np.random.default_rng(1)
    for _ in range(200):
        k = np.uint64(rng.integers(0, 1 << 40))
        index.insert(k)
        oracle = np.insert(oracle, int(np.searchsorted(oracle, k)), k)
    for k in rng.choice(oracle, 50, replace=False):
        index.delete(k)
        oracle = np.delete(oracle, int(np.searchsorted(oracle, k)))
    index.refresh()
    actions = index.retune()
    assert {a["action"] for a in actions} <= {"keep", "rebuild", "merge"}
    queries = queries = np.concatenate([
        rng.choice(oracle, 400),
        rng.integers(0, 1 << 41, 100, dtype=np.uint64),
    ])
    assert np.array_equal(index.lookup_many(queries),
                          np.searchsorted(oracle, queries, side="left"))
    with pytest.raises(KeyError):
        index.delete(np.uint64(1) << np.uint64(63))


def test_facade_context_manager_closes_executor(keys):
    with Index.build(keys, IndexConfig(workers=2)) as index:
        index.lookup_many(keys[::300])  # spans every shard: pool spins up
        assert index.executor._pool is not None
    assert index.executor._pool is None


# ----------------------------------------------------------------------
# save → open → serve
# ----------------------------------------------------------------------
def test_save_open_round_trip_preserves_config(tmp_path, keys):
    config = IndexConfig(num_shards=4, backend="fenwick", model="rmi",
                         merge_threshold=128)
    index = Index.build(keys, config, name="trip")
    index.insert(np.uint64(42))
    path = tmp_path / "trip.npz"
    manifest = index.save(path)
    assert manifest["index_config"]["backend"] == "fenwick"

    loaded = repro.open(path)
    assert loaded.source == "loaded"
    assert loaded.build_info()["source"] == "loaded"
    assert loaded.config == config
    rng = np.random.default_rng(2)
    queries = rng.integers(0, 1 << 41, 2_000, dtype=np.uint64)
    assert np.array_equal(loaded.lookup_many(queries),
                          index.lookup_many(queries))


def test_open_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.npz"
    bad.write_bytes(b"not an index")
    with pytest.raises(IndexPersistError):
        repro.open(bad)


def test_build_save_open_serve_end_to_end(tmp_path, keys):
    """The acceptance-criterion lifecycle at test scale: build → save →
    reopen in a *fresh process* (no refit) → serve an oracle-verified
    mixed workload with zero mismatches."""
    index = Index.build(keys, "mixed", num_shards=4, name="e2e")
    path = tmp_path / "e2e.npz"
    index.save(path)

    script = f"""
import asyncio, sys
import numpy as np
import repro

index = repro.open({str(path)!r})
assert index.source == "loaded", index.source
assert index.build_info()["source"] == "loaded"

async def main():
    rng = np.random.default_rng(5)
    oracle = index.keys.copy()
    mismatches = 0
    async with index.serve(max_batch=64) as server:
        for round_ in range(20):
            qs = np.concatenate([
                rng.choice(oracle, 16),
                rng.integers(0, 1 << 41, 8, dtype=np.uint64),
            ])
            got = await asyncio.gather(*[server.lookup(q) for q in qs])
            mismatches += int(np.sum(
                np.asarray(got) != np.searchsorted(oracle, qs, side="left")
            ))
            lo, hi = sorted(rng.choice(oracle, 2).tolist())
            lo, hi = np.uint64(lo), np.uint64(hi)
            count = await server.range(lo, hi)
            a, b = np.searchsorted(oracle, [lo, hi])
            mismatches += int(count != b - a)
            scanned = await server.range_keys(lo, hi)
            mismatches += int(not np.array_equal(scanned, oracle[a:b]))
            k = np.uint64(rng.integers(0, 1 << 40))
            await server.insert(k)
            oracle = np.insert(oracle, int(np.searchsorted(oracle, k)), k)
            victim = rng.choice(oracle)
            await server.delete(victim)
            oracle = np.delete(
                oracle, int(np.searchsorted(oracle, victim)))
    return mismatches

mismatches = asyncio.run(main())
print("MISMATCHES", mismatches)
sys.exit(0 if mismatches == 0 else 1)
"""
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "MISMATCHES 0" in result.stdout


# ----------------------------------------------------------------------
# CLI: version / build / inspect
# ----------------------------------------------------------------------
def test_cli_version(capsys):
    from repro.cli import main

    assert main(["version"]) == 0
    out = capsys.readouterr().out
    assert repro.__version__ in out and "engine format" in out


def test_cli_version_flag():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--version"],
        capture_output=True, text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    assert repro.__version__ in result.stdout


def test_cli_build_save_inspect(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "cli.npz"
    assert main(["build", "--dataset", "uden64", "--n", "20000",
                 "--shards", "3", "--preset", "mixed",
                 "--save", str(path)]) == 0
    out = capsys.readouterr().out
    assert "source=built" in out and path.exists()

    assert main(["inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "source=loaded" in out and "backend=gapped" in out


def test_cli_engine_bench_save_load_round_trip(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "bench.npz"
    assert main(["engine-bench", "--n", "20000", "--queries", "2000",
                 "--shards", "2", "--save", str(path)]) == 0
    capsys.readouterr()
    assert path.exists()
    assert main(["engine-bench", "--queries", "2000",
                 "--load", str(path)]) == 0
    out = capsys.readouterr().out
    assert "sharded[K=2]" in out


# ----------------------------------------------------------------------
# dtype exactness at the top of the uint64 domain (regression: the
# facade used to funnel queries through np.asarray, whose float64
# inference corrupts keys above 2**53)
# ----------------------------------------------------------------------
def test_facade_exact_at_uint64_extremes():
    top = (1 << 64) - 1
    raw = [5, 10, top - 2, top - 1, top]
    keys_hi = np.array(raw, dtype=np.uint64)
    index = Index.build(keys_hi, IndexConfig(num_shards=2))

    # python-int queries at the extreme: float64 would collapse the top
    # three keys into one value; positions must stay distinct
    pos = index.lookup_many([top - 2, top - 1, top])
    assert pos.tolist() == [2, 3, 4]
    assert index.lookup(top) == 4

    # mixed-sign list: plain np.asarray would infer float64 for it
    pos = index.lookup_many([-1, 7, top])
    assert pos.tolist() == [0, 1, 4]

    # fractional floats ceil to the next representable key
    assert index.lookup_many([7.5]).tolist() == [1]
    assert index.lookup_many([float(2**63)]).tolist() == [2]

    # ranges and scans at the top of the domain stay exact too
    assert index.range(top - 2, top) == (2, 4)
    assert index.count(top - 2, top) == 2
    assert index.scan(top - 2, top).tolist() == [top - 2, top - 1]
    first, last = index.range_many([-5, top - 1], [6, top])
    assert first.tolist() == [0, 3] and last.tolist() == [1, 4]
    got = index.scan_many([top - 2], [top])
    assert got[0].tolist() == [top - 2, top - 1]

    # beyond-domain queries clamp to len(index), never wrap around
    assert index.lookup_many([float(2**65)]).tolist() == [5]
    assert "shard" in index.explain([top])


def test_executor_range_batch_exact_at_uint64_extremes():
    # same regression one layer down: BatchExecutor.range_batch used to
    # np.asarray its bounds directly
    from repro.engine import BatchExecutor, ShardedIndex

    top = (1 << 64) - 1
    keys_hi = np.array([5, 10, top - 2, top - 1, top], dtype=np.uint64)
    executor = BatchExecutor(ShardedIndex.build(keys_hi, 2))
    first, last = executor.range_batch([top - 2, -3], [top, 7])
    assert first.tolist() == [2, 0] and last.tolist() == [4, 1]
    # out-of-domain low clamps the whole range empty at the tail
    first, last = executor.range_batch([float(2**65)], [float(2**66)])
    assert first.tolist() == [5] and last.tolist() == [5]


# ----------------------------------------------------------------------
# CLI help audit: every command documented, every argument has help
# ----------------------------------------------------------------------
def test_cli_help_audit():
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    subactions = [a for a in parser._actions
                  if isinstance(a, argparse._SubParsersAction)]
    assert len(subactions) == 1
    commands = subactions[0].choices
    assert "lint" in commands
    doc = __import__("repro.cli", fromlist=["cli"]).__doc__
    for name, sub in commands.items():
        assert name in doc, f"command {name!r} missing from repro.cli docstring"
        for action in sub._actions:
            if isinstance(action, argparse._HelpAction):
                continue
            assert action.help, (
                f"argument {action.option_strings or action.dest} of "
                f"{name!r} has no help text")
