"""Distribution diagnostics behind the paper's §2.4 / §3.6 analysis.

These quantify the properties the paper argues make data hard for a
learned index (and easy or hard for the Shift-Table):

* :func:`duplication_ratio` — fraction of slots holding a repeated key
  (Table 2's ART "N/A" driver);
* :func:`gap_tail_index` — heavy-tailedness of the key gaps (a Hill-style
  estimator; lower = heavier tail = rougher micro-structure);
* :func:`congestion_profile` — the distribution of partition sizes
  ``C_k`` under the dummy IM model, i.e. §3.6's "congestion of keys in a
  small sub-range ... partitions with high C_k" — the one failure mode
  the paper names for Shift-Table;
* :func:`burstiness` — coefficient of variation of per-bucket arrival
  counts (the wiki-style temporal clumping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.interpolation import InterpolationModel


def duplication_ratio(keys: np.ndarray) -> float:
    """Fraction of array slots occupied by a duplicate of a previous key."""
    if len(keys) < 2:
        return 0.0
    return float(np.mean(keys[1:] == keys[:-1]))


def gap_tail_index(keys: np.ndarray, tail_fraction: float = 0.05) -> float:
    """Hill estimator of the key-gap tail exponent (lower = heavier).

    Computed over the largest ``tail_fraction`` of the positive gaps.
    Smooth synthetic data has thin tails (large exponent); burst/cluster
    structured data has heavy tails (exponent near or below 1).
    """
    gaps = np.diff(keys.astype(np.float64))
    gaps = gaps[gaps > 0]
    if len(gaps) < 20:
        return float("nan")
    k = max(int(len(gaps) * tail_fraction), 10)
    tail = np.sort(gaps)[-k:]
    threshold = tail[0]
    mean_log = float(np.mean(np.log(tail / threshold + 1e-300)))
    if mean_log <= 0.0:
        # degenerate: all tail gaps equal (e.g. dense integers) — an
        # infinitely thin tail
        return float("inf")
    return 1.0 / mean_log


@dataclass(frozen=True)
class CongestionProfile:
    """Summary of partition sizes C_k under the IM model with M = N."""

    mean: float
    p99: float
    max: float
    occupied_fraction: float
    eq8_error: float

    @property
    def is_congested(self) -> bool:
        """§3.6's hard case: some partitions collect very many keys."""
        return self.max > 100 * max(self.mean, 1.0)


def congestion_profile(keys: np.ndarray) -> CongestionProfile:
    """Partition-size statistics under the dummy interpolation model."""
    n = len(keys)
    model = InterpolationModel(keys)
    pred = np.clip(model.predict_pos_batch(keys).astype(np.int64), 0, n - 1)
    counts = np.bincount(pred, minlength=n)
    occupied = counts[counts > 0]
    return CongestionProfile(
        mean=float(occupied.mean()),
        p99=float(np.percentile(occupied, 99)),
        max=float(occupied.max()),
        occupied_fraction=float(len(occupied) / n),
        eq8_error=float((counts.astype(np.float64) ** 2).sum() / (2 * n)),
    )


def burstiness(keys: np.ndarray, buckets: int = 1024) -> float:
    """Coefficient of variation of per-bucket key counts.

    1.0 for a Poisson-uniform stream; wiki-style bursty timestamps and
    osmc-style spatial clustering push it well above 1.
    """
    n = len(keys)
    if n < buckets:
        raise ValueError("need at least one key per bucket")
    lo = float(keys[0])
    hi = float(keys[-1])
    if hi <= lo:
        return 0.0
    idx = ((keys.astype(np.float64) - lo) / (hi - lo) * (buckets - 1)).astype(
        np.int64
    )
    counts = np.bincount(idx, minlength=buckets).astype(np.float64)
    return float(counts.std() / max(counts.mean(), 1e-9))
