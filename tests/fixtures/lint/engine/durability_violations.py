"""Lint fixture: RPR3xx durability violations.

This file is never imported, only parsed.
"""

import os


def publish_manifest(path, tmp):
    os.replace(tmp, path)  # expect: RPR301


def write_state(path, payload):
    with open(path, "w") as fh:  # expect: RPR302
        fh.write(payload)
