"""Range-query front end over a corrected index (paper §1, §3.2).

The paper's setting: records are clustered (sorted physically), so a
range query ``A <= key < B`` is *find the first result, then scan*.  This
module provides that front end plus the §3.2 operator conversions:

* :func:`lower_bound` / :func:`upper_bound` — positions for ``>=`` and
  ``>`` constraints.  The paper notes an index built for one comparison
  operator serves the others "with a brief left/right scan"; for integer
  keys ``upper_bound(q) == lower_bound(q + 1)``, which costs nothing.
* :meth:`RangeQueryEngine.count` / :meth:`RangeQueryEngine.scan` — range
  cardinality and the clustered scan itself, with the scan charged to the
  tracker as sequential access (the part the paper deliberately excludes
  from its latency numbers, §4: "we only report the lookup time for the
  first result").
* :meth:`RangeQueryEngine.explain` — a structured trace of one lookup
  (prediction, partition, window, outcome) for debugging and teaching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker
from ..models.base import partition_index, predicted_index
from .compact import CompactShiftTable
from .corrected_index import CorrectedIndex
from .shift_table import ShiftTable


@dataclass(frozen=True)
class LookupTrace:
    """What one corrected lookup did, step by step."""

    query: int
    prediction_float: float
    predicted_index: int
    partition: int | None
    window_start: int | None
    window_width: int | None
    corrected_point: int | None
    result: int
    result_is_exact_match: bool


class RangeQueryEngine:
    """Clustered range queries on top of a :class:`CorrectedIndex`."""

    def __init__(self, index: CorrectedIndex) -> None:
        self.index = index
        self.data = index.data

    # ------------------------------------------------------------------
    # point operators (§3.2)
    # ------------------------------------------------------------------
    def lower_bound(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Position of the first record with key >= q."""
        return self.index.lookup(q, tracker)

    def upper_bound(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Position one past the last record with key <= q.

        A single corrected lookup of the successor of ``q`` in the key
        domain (no duplicate-run scan needed): ``q + 1`` for integer
        keys, ``nextafter(q, inf)`` for float keys.  The key-domain
        maximum is handled explicitly to avoid overflow.
        """
        keys = self.data.keys
        if keys.dtype.kind in "iu":
            max_key = np.iinfo(keys.dtype).max
            if int(q) >= int(max_key):
                return len(keys)
            return self.index.lookup(keys.dtype.type(int(q) + 1), tracker)
        # float keys: the successor is the next representable value.
        # NaN matches nothing but sorts after everything in searchsorted
        # semantics; +inf (and the finite max) have no successor; -inf's
        # successor is -finfo.max, which nextafter handles below.
        q = keys.dtype.type(q)
        if np.isnan(q) or q >= np.finfo(keys.dtype).max:
            return len(keys)
        return self.index.lookup(np.nextafter(q, np.inf, dtype=keys.dtype),
                                 tracker)

    def equal_range(
        self, q, tracker: NullTracker = NULL_TRACKER
    ) -> tuple[int, int]:
        """``[first, last)`` positions of the duplicate run of ``q``."""
        return self.lower_bound(q, tracker), self.upper_bound(q, tracker)

    # ------------------------------------------------------------------
    # range operators
    # ------------------------------------------------------------------
    def count(self, lo, hi, tracker: NullTracker = NULL_TRACKER) -> int:
        """Number of records with ``lo <= key < hi``."""
        if int(hi) <= int(lo):
            return 0
        return self.index.lookup(hi, tracker) - self.index.lookup(lo, tracker)

    def scan(self, lo, hi, tracker: NullTracker = NULL_TRACKER) -> np.ndarray:
        """Materialise the keys with ``lo <= key < hi`` (clustered scan).

        The scan itself is charged as sequential access — the cost the
        paper's evaluation intentionally leaves out of Table 2 because it
        is identical for every index over the same clustered layout.
        """
        if int(hi) <= int(lo):
            return self.data.keys[:0]
        first = self.index.lookup(lo, tracker)
        last = self.index.lookup(hi, tracker)
        if last > first:
            tracker.scan(self.data.region, first, last)
        return self.data.keys[first:last]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def explain(self, q) -> LookupTrace:
        """Trace one lookup through model, layer and last-mile search."""
        index = self.index
        n = len(self.data)
        pred_float = index.model.predict_pos(q)
        pred = predicted_index(pred_float, n)
        partition = window_start = window_width = corrected = None
        layer = index.layer
        if isinstance(layer, ShiftTable):
            partition = partition_index(pred_float, n, layer.num_partitions)
            window_start, window_width = layer.window(pred_float)
        elif isinstance(layer, CompactShiftTable):
            partition = partition_index(pred_float, n, layer.num_partitions)
            corrected = layer.correct(pred_float)
        result = index.lookup(q)
        exact = result < n and self.data.keys[result] == q
        return LookupTrace(
            query=int(q),
            prediction_float=float(pred_float),
            predicted_index=pred,
            partition=partition,
            window_start=window_start,
            window_width=window_width,
            corrected_point=corrected,
            result=result,
            result_is_exact_match=bool(exact),
        )
