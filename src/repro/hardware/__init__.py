"""Simulated memory hierarchy (DESIGN.md substitution S1).

The paper's claims are about cache behaviour: who misses the LLC, how many
lines a local search walks, whether model parameters fit in cache.  This
package provides the measurement instrument that replaces the paper's
hardware counters: a line-granular L1/L2/L3/DRAM model with the i7-6700
latencies from §4, a sequential-prefetch model for scans, and an
instruction-cost term.
"""

from .cache import LRUCacheLevel
from .hierarchy import HierarchyStats, MemoryHierarchy
from .machine import DEFAULT_PAYLOAD_BYTES, PAPER_NUM_KEYS, MachineSpec
from .set_associative import SetAssociativeCacheLevel, build_hierarchy
from .tracker import NULL_TRACKER, NullTracker, Region, SimTracker, alloc_region

__all__ = [
    "LRUCacheLevel",
    "SetAssociativeCacheLevel",
    "build_hierarchy",
    "MemoryHierarchy",
    "HierarchyStats",
    "MachineSpec",
    "PAPER_NUM_KEYS",
    "DEFAULT_PAYLOAD_BYTES",
    "Region",
    "alloc_region",
    "NullTracker",
    "NULL_TRACKER",
    "SimTracker",
]
