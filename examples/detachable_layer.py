"""The §3.9 deployment story: the Shift-Table layer is detachable.

"the Shift-Table layer can be disabled to free up memory space on
run-time while the model can still be used."  This example plays that
out: build once, persist the layer next to the (tiny) model, serve
queries with the layer attached, detach it under memory pressure and
keep serving — correctly, just slower — then re-attach from disk.

Run:  python examples/detachable_layer.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CorrectedIndex, InterpolationModel, ShiftTable, SortedData
from repro.bench.workload import env_num_keys, uniform_over_keys
from repro.bench.harness import measure_index
from repro.core.serialize import (
    load_layer,
    load_simple_model,
    save_shift_table,
    save_simple_model,
)
from repro.datasets import load
from repro.hardware.machine import MachineSpec


def main() -> None:
    n = env_num_keys()
    keys = load("amzn64", n)
    data = SortedData(keys, name="amzn64")
    machine = MachineSpec.paper().scaled_for(n, data.record_bytes)
    queries = uniform_over_keys(keys, 512, seed=11)

    with tempfile.TemporaryDirectory() as tmp:
        layer_path = Path(tmp) / "amzn64.layer.npz"
        model_path = Path(tmp) / "amzn64.model.json"

        # ---- build once, persist ------------------------------------
        model = InterpolationModel(keys)
        layer = ShiftTable.build(keys, model)
        save_simple_model(model, model_path)
        save_shift_table(layer, layer_path)
        print(f"persisted model ({model_path.stat().st_size} B) and layer "
              f"({layer_path.stat().st_size / 1e6:.1f} MB on disk, "
              f"{layer.size_bytes() / 1e6:.1f} MB in memory)")

        # ---- serve with the layer attached ---------------------------
        model = load_simple_model(model_path)
        attached = CorrectedIndex(data, model, load_layer(layer_path))
        m1 = measure_index(attached, data, queries, machine)
        print(f"with layer:    {m1.ns_per_lookup:7.1f} ns/lookup "
              f"(correct={m1.correct})")

        # ---- memory pressure: detach, keep serving -------------------
        detached = CorrectedIndex(data, model, None)
        m2 = measure_index(detached, data, queries, machine)
        print(f"without layer: {m2.ns_per_lookup:7.1f} ns/lookup "
              f"(correct={m2.correct}) — "
              f"{layer.size_bytes() / 1e6:.1f} MB freed, "
              f"{m2.ns_per_lookup / m1.ns_per_lookup:.1f}x slower")

        # ---- re-attach from disk -------------------------------------
        reattached = CorrectedIndex(data, model, load_layer(layer_path))
        m3 = measure_index(reattached, data, queries, machine)
        print(f"re-attached:   {m3.ns_per_lookup:7.1f} ns/lookup "
              f"(correct={m3.correct})")
        assert m1.correct and m2.correct and m3.correct
        assert np.isclose(m1.ns_per_lookup, m3.ns_per_lookup, rtol=0.2)


if __name__ == "__main__":
    main()
