"""Learned CDF models: the substrate under every learned index (§2, §3).

All models implement :class:`~repro.models.base.CDFModel` and return the
unclamped predicted position ``N·F_θ(x)``; see ``base`` for the clamping
and partitioning helpers shared with the Shift-Table layer.
"""

from .base import (
    CDFModel,
    FunctionModel,
    partition_index,
    partition_index_batch,
    predicted_index,
    predicted_index_batch,
)
from .factory import (
    MODEL_FACTORIES,
    IndexDecision,
    ModelFactory,
    build_corrected_index,
    make_model,
)
from .histogram import HistogramModel
from .interpolation import InterpolationModel
from .linear import LinearModel
from .pgm import PGMModel, shrinking_cone_segments
from .radix_spline import RadixSplineModel
from .rmi import RMIModel

__all__ = [
    "CDFModel",
    "FunctionModel",
    "InterpolationModel",
    "HistogramModel",
    "LinearModel",
    "RMIModel",
    "RadixSplineModel",
    "PGMModel",
    "shrinking_cone_segments",
    "MODEL_FACTORIES",
    "IndexDecision",
    "ModelFactory",
    "build_corrected_index",
    "make_model",
    "predicted_index",
    "predicted_index_batch",
    "partition_index",
    "partition_index_batch",
]
