"""Mixed read/write engine benchmark: insert throughput vs read latency.

Drives the updatable sharded engine through interleaved workloads —
point-lookup batches with inserts woven between them — at several write
fractions and for every shard backend, measuring:

* **insert throughput** — sustained inserts/sec through the routed
  per-shard write path (including amortised refreshes and splits);
* **read latency** — ns per lookup of the vectorised batch read path
  while the structure carries pending updates.

Every cell is verified against a ``searchsorted`` oracle over the live
key sequence after the workload ran, so a reported number can never
come from a wrong engine.  Exposed to the CLI as ``python -m repro
engine-update-bench`` and to CI via
``benchmarks/bench_engine_updates.py --smoke``.
"""

from __future__ import annotations

import time

import numpy as np

from ..datasets import load
from ..engine import BACKEND_KINDS, BatchExecutor, ShardedIndex

#: Write fractions the default sweep measures degradation across.
DEFAULT_WRITE_FRACTIONS = (0.0, 0.01, 0.1, 0.3)


def run_engine_updates(
    n: int = 100_000,
    num_shards: int = 4,
    dataset: str = "uden64",
    model: str = "interpolation",
    layer: str | None = "R",
    backends: tuple[str, ...] = BACKEND_KINDS,
    write_fractions: tuple[float, ...] = DEFAULT_WRITE_FRACTIONS,
    ops: int = 50_000,
    batch_size: int = 4096,
    seed: int = 42,
    verify: bool = True,
    workers: int = 1,
) -> list[dict[str, object]]:
    """Run the mixed-workload sweep; one result row per (backend, wf).

    ``ops`` is the total operation count per cell; a write fraction of
    ``wf`` turns ``ops * wf`` of them into inserts, executed in even
    slices between the read batches.
    """
    keys = load(dataset, n, seed)
    lo, hi = int(keys.min()), int(keys.max())
    rows: list[dict[str, object]] = []
    for backend in backends:
        for wf in write_fractions:
            rng = np.random.default_rng(seed + 1)
            num_writes = int(ops * wf)
            num_reads = ops - num_writes
            inserts = rng.integers(
                lo, hi + 1, size=max(num_writes, 1)
            ).astype(keys.dtype)[:num_writes]
            reads = rng.choice(keys, num_reads) if num_reads else keys[:0]

            index = ShardedIndex.build(
                keys, num_shards, model=model, layer=layer,
                backend=backend, name=f"{dataset}-{backend}",
            )
            executor = BatchExecutor(index, workers=workers)

            batches = max(1, -(-num_reads // batch_size))
            write_seconds = 0.0
            read_seconds = 0.0
            writes_done = reads_done = 0
            for b in range(batches):
                # the insert slice that precedes this read batch
                w_lo = num_writes * b // batches
                w_hi = num_writes * (b + 1) // batches
                if w_hi > w_lo:
                    chunk = inserts[w_lo:w_hi]
                    t0 = time.perf_counter()
                    for key in chunk:
                        index.insert(key)
                    write_seconds += time.perf_counter() - t0
                    writes_done += len(chunk)
                batch = reads[b * batch_size : (b + 1) * batch_size]
                if len(batch):
                    t0 = time.perf_counter()
                    executor.lookup_batch(batch)
                    read_seconds += time.perf_counter() - t0
                    reads_done += len(batch)

            exact = True
            if verify:
                live = np.sort(np.concatenate([keys, inserts]))
                probe = np.concatenate([
                    rng.choice(live, min(4096, len(live))),
                    rng.integers(lo, hi + 1, 1024).astype(keys.dtype),
                ])
                got = executor.lookup_batch(probe)
                exact = bool(np.array_equal(
                    got, np.searchsorted(live, probe, side="left")
                ))
                if not exact:
                    raise AssertionError(
                        f"{backend} wf={wf}: engine answers diverged "
                        "from the oracle"
                    )

            rows.append({
                "backend": backend,
                "write_fraction": wf,
                "inserts": writes_done,
                "inserts_per_sec": (
                    writes_done / write_seconds if write_seconds else
                    float("nan")
                ),
                "reads": reads_done,
                "read_ns_per_lookup": (
                    1e9 * read_seconds / reads_done if reads_done else
                    float("nan")
                ),
                "read_qps": (
                    reads_done / read_seconds if read_seconds else
                    float("nan")
                ),
                "final_shards": index.num_shards,
                "pending_updates": index.pending_updates(),
                "exact": exact,
            })
    return rows
