"""Surrogate generators for the SOSD real-world datasets (substitution S2).

The paper's real-world datasets cannot be downloaded in this environment,
so each is replaced by a seeded generator that reproduces the *property
the paper identifies as making that dataset hard for learned models*:
micro-level unpredictability under a smooth macro shape (§2.4, Figure 3).

* :func:`face` — Facebook user IDs.  Macro-uniform (the paper stresses
  face "closely matches the uniform distribution"), but IDs are allocated
  in shard blocks: dense runs, abrupt gaps, and bursty local density that
  no small model can fit.  Keys are unique (the real dataset supports ART).
* :func:`amzn` — Amazon sales-rank popularity.  Heavy-tailed with hot-key
  plateaus; contains duplicates (ART is "N/A" in Table 2).
* :func:`osmc` — OpenStreetMap cell IDs.  Hierarchical spatial clustering
  via a multiplicative cascade: a multifractal CDF with congested
  sub-ranges — exactly the "congestion of keys in a small sub-range" that
  §3.6 names as Shift-Table's hard case.  Contains duplicates.
* :func:`wiki` — Wikipedia edit timestamps.  A bursty non-homogeneous
  Poisson process floored to whole seconds, so concurrent edits produce
  many duplicate keys (ART "N/A").
"""

from __future__ import annotations

import numpy as np

_DTYPES = {32: np.uint32, 64: np.uint64}


def _check(n: int, bits: int) -> None:
    if n <= 0:
        raise ValueError("n must be positive")
    if bits not in _DTYPES:
        raise ValueError(f"bits must be 32 or 64, got {bits}")


def _finalize(keys: np.ndarray, n: int, bits: int) -> np.ndarray:
    keys = np.sort(keys)
    if len(keys) > n:
        # thin deterministically to exactly n while preserving shape
        idx = np.linspace(0, len(keys) - 1, n).astype(np.int64)
        keys = keys[idx]
    return keys.astype(_DTYPES[bits])


def face(
    n: int,
    bits: int = 64,
    seed: int = 0,
    cluster_mean: int = 8,
    gap_sigma: float = 1.4,
    fine_len: int = 64,
    fine_sigma: float = 2.2,
    coarse_len: int = 4096,
    coarse_sigma: float = 1.0,
) -> np.ndarray:
    """Burst-allocated user IDs: macro-uniform, micro-rough, unique.

    IDs arrive in small sequential bursts (geometric cluster sizes, unit
    strides inside a burst) separated by lognormal gaps whose scale is
    modulated by two density regimes: a *fine* one (~64 keys) that puts
    staircase structure inside an RMI leaf's key range, and a *coarse*
    one (~4k keys) that gives the dummy interpolation model its large
    global bias.  All arithmetic is integer-exact, so 64-bit keys keep
    their burst structure even where float64 cannot resolve it (which is
    itself faithful: learned models see real Facebook IDs through float64
    too).  Parameters were calibrated so the tuned-RMI mean error vs the
    Shift-Table window ratio lands near the paper's Table 2 geometry
    (see EXPERIMENTS.md).
    """
    _check(n, bits)
    rng = np.random.default_rng(seed)
    domain = (1 << (bits - 1)) - 1
    # 4σ oversampling margin: the geometric sizes must sum past n
    base_cl = n // cluster_mean + 2
    n_cl = base_cl + 4 * int(base_cl ** 0.5) + 8
    sizes = rng.geometric(1.0 / cluster_mean, size=n_cl)
    if int(sizes.sum()) < n:  # pragma: no cover - 4σ margin
        sizes = np.concatenate([sizes, np.full(n, 1, dtype=sizes.dtype)])
        n_cl = len(sizes)
    within = rng.integers(1, 4, size=int(sizes.sum()))
    gaps = rng.lognormal(0.0, gap_sigma, size=n_cl)

    def regime(length: int, sigma: float) -> np.ndarray:
        per = max(length // cluster_mean, 1)
        num = n_cl // per + 1
        return np.repeat(rng.lognormal(0.0, sigma, size=num), per)[:n_cl]

    gaps = gaps * regime(fine_len, fine_sigma) * regime(coarse_len, coarse_sigma)
    first = np.concatenate(([0], sizes.cumsum()[:-1].astype(np.int64)))
    strides = within.astype(np.int64)
    strides[first] = 0
    gap_scale = (domain * 0.92 - int(strides.sum())) / gaps.sum()
    strides[first] = np.maximum((gaps * gap_scale).astype(np.int64), 4)
    keys = np.cumsum(strides, dtype=np.int64)[:n]
    if len(keys) != n:
        raise AssertionError("face generator under-produced keys")
    if not 0 < int(keys[-1]) < domain:
        raise AssertionError("face generator overflowed its domain")
    return keys.astype(_DTYPES[bits])


def amzn(n: int, bits: int = 64, seed: int = 0) -> np.ndarray:
    """Heavy-tailed popularity ranks with hot-key plateaus (has duplicates)."""
    _check(n, bits)
    rng = np.random.default_rng(seed)
    domain = (1 << (bits - 1)) - 1
    # 70% of keys from a piecewise power-law over the domain
    n_tail = int(n * 0.7)
    u = rng.random(n_tail)
    tail = (u ** 3.0) * domain  # cubic stretch: mass piles up near 0
    # 30% exact repeats of a small hot set -> duplicate plateaus
    n_hot = n - n_tail
    hot_values = (rng.random(max(n // 500, 8)) ** 2.0) * domain
    hot = rng.choice(hot_values, size=n_hot)
    keys = np.concatenate([tail, hot]).astype(np.uint64)
    return _finalize(keys, n, bits)


def osmc(
    n: int,
    bits: int = 64,
    seed: int = 0,
    levels: int = 14,
    beta: float = 0.7,
    cells_per_bin: int = 4096,
) -> np.ndarray:
    """Multifractal cell IDs: hierarchical congestion (has duplicates).

    A multiplicative cascade splits the key domain ``levels`` times; each
    split sends a random fraction of the remaining mass left vs right.
    Sampling keys from the resulting bin weights yields the spiky,
    locally-biased CDF of spatially clustered OSM cell IDs.  Offsets are
    quantised to a cell grid — OSM cell IDs are shared by every object in
    a cell — so congested bins produce duplicate keys (Table 2: ART N/A)
    and exactly the high-``C_k`` partitions §3.6 calls Shift-Table's hard
    case.
    """
    _check(n, bits)
    rng = np.random.default_rng(seed)
    weights = np.ones(1)
    for _ in range(levels):
        split = rng.beta(beta, beta, size=len(weights))
        weights = np.column_stack([weights * split, weights * (1 - split)]).ravel()
    weights /= weights.sum()
    bins = len(weights)
    domain = (1 << (bits - 1)) - 1
    bin_width = domain // bins
    counts = rng.multinomial(n, weights)
    bin_ids = np.repeat(np.arange(bins, dtype=np.uint64), counts)
    cell_width = max(bin_width // cells_per_bin, 1)
    offsets = rng.integers(0, cells_per_bin, size=n, dtype=np.uint64) * np.uint64(
        cell_width
    )
    keys = bin_ids * np.uint64(bin_width) + offsets
    return _finalize(keys, n, bits)


def wiki(n: int, bits: int = 64, seed: int = 0) -> np.ndarray:
    """Bursty edit timestamps floored to seconds (has duplicates)."""
    _check(n, bits)
    rng = np.random.default_rng(seed)
    # base inter-arrival ~ exponential, modulated by a daily cycle and
    # occasional high-rate bursts (bot runs / vandalism storms)
    t = rng.exponential(1.0, size=n)
    phase = np.cumsum(t)
    daily = 1.0 + 0.8 * np.sin(2 * np.pi * phase / (86400.0 / 3600))
    t = t / np.maximum(daily, 0.05)
    burst_starts = rng.random(n) < 0.002
    burst_factor = np.ones(n)
    burst_len = 200
    idx = np.flatnonzero(burst_starts)
    for i in idx:
        burst_factor[i : i + burst_len] = 0.01
    t = t * burst_factor
    epoch = 1_000_000_000.0  # a plausible unix-time origin
    stamps = np.floor(epoch + np.cumsum(t)).astype(np.uint64)
    return _finalize(stamps, n, bits)
