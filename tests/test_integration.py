"""End-to-end integration flows across module boundaries.

Each test walks a realistic usage path — the kind a downstream adopter
would write — touching datasets, models, layers, the tuner, persistence,
the range engine, and the measurement harness together.
"""

import numpy as np
import pytest

from repro import (
    CorrectedIndex,
    InterpolationModel,
    MachineSpec,
    RadixSplineModel,
    ShiftTable,
    SortedData,
    UpdatableCorrectedIndex,
    measure_latency_curve,
    tune,
)
from repro.bench import build_method, measure_index, uniform_over_keys
from repro.core.range_query import RangeQueryEngine
from repro.core.serialize import load_layer, save_shift_table
from repro.datasets import load

N = 60_000


def test_full_pipeline_build_tune_measure_serve(tmp_path):
    """dataset -> curve -> tune -> persist -> reload -> serve -> measure."""
    keys = load("amzn64", N, seed=81)
    data = SortedData(keys, name="amzn64")
    machine = MachineSpec.paper().scaled_for(N, data.record_bytes)

    # tune with a measured latency curve
    curve = measure_latency_curve(keys, machine, record_bytes=data.record_bytes)
    index, report = tune(data, InterpolationModel(keys), curve=curve)
    assert report.layer_enabled and index.layer is not None

    # persist the layer, reload, rebuild the index
    path = tmp_path / "layer.npz"
    save_shift_table(index.layer, path)
    served = CorrectedIndex(data, index.model, load_layer(path))

    # measure and verify
    queries = uniform_over_keys(keys, 256, seed=82)
    m = measure_index(served, data, queries, machine)
    assert m.correct
    assert m.ns_per_lookup < 400  # far below full binary search

    # serve range queries
    engine = RangeQueryEngine(served)
    lo, hi = np.sort(np.random.default_rng(83).choice(keys, 2))
    assert engine.count(lo, hi) == int(((keys >= lo) & (keys < hi)).sum())


def test_model_swap_keeps_layer_contract():
    """Swapping a better model under the same pipeline shrinks windows."""
    keys = load("face64", N, seed=81)
    data = SortedData(keys, name="face64")
    im_layer = ShiftTable.build(keys, InterpolationModel(keys))
    rs = RadixSplineModel(keys, epsilon=32)
    rs_layer = ShiftTable.build(keys, rs)
    assert rs_layer.expected_window() <= im_layer.expected_window()
    # both stacks remain exact
    qs = np.random.default_rng(7).choice(keys, 200)
    for model, layer in ((InterpolationModel(keys), im_layer), (rs, rs_layer)):
        idx = CorrectedIndex(data, model, layer)
        assert np.array_equal(idx.lookup_batch(qs), data.lower_bound_batch(qs))


def test_update_then_rebuild_cycle():
    """Insert through the §6 extension, merge, rebuild, verify."""
    keys = load("wiki64", N, seed=81)
    data = SortedData(keys, name="wiki64")
    model = InterpolationModel(keys)
    updatable = UpdatableCorrectedIndex(
        CorrectedIndex(data, model, ShiftTable.build(keys, model)),
        merge_threshold=500,
    )
    rng = np.random.default_rng(84)
    lo, hi = int(keys.min()), int(keys.max())
    inserts = (lo + (rng.random(600) * (hi - lo)).astype(np.uint64)).astype(
        keys.dtype
    )
    for k in inserts:
        updatable.insert(k)
    assert updatable.needs_merge()

    # merge: rebuild the whole stack over the merged keys
    merged = updatable.merged_keys()
    new_data = SortedData(merged, name="wiki64+merged")
    new_model = InterpolationModel(merged)
    rebuilt = CorrectedIndex(
        new_data, new_model, ShiftTable.build(merged, new_model)
    )
    qs = rng.choice(merged, 300)
    assert np.array_equal(
        rebuilt.lookup_batch(qs), np.searchsorted(merged, qs, side="left")
    )


def test_every_method_agrees_on_one_dataset():
    """All Table 2 methods return identical positions on shared queries."""
    from repro.bench.methods import TABLE2_METHODS, MethodNotAvailable

    keys = load("face32", N, seed=81)
    data = SortedData(keys, name="face32")
    qs = uniform_over_keys(keys, 128, seed=85)
    truth = data.lower_bound_batch(qs)
    tested = 0
    for method in TABLE2_METHODS:
        try:
            index, _ = build_method(method, data)
        except MethodNotAvailable:
            continue
        got = np.asarray([index.lookup(q) for q in qs])
        assert np.array_equal(got, truth), method
        tested += 1
    assert tested == len(TABLE2_METHODS)  # face32 supports everything


def test_scaled_machines_preserve_ordering():
    """The BS > IM+ShiftTable ordering holds across simulation scales."""
    for n in (20_000, 80_000):
        keys = load("osmc64", n, seed=81)
        data = SortedData(keys, name="osmc64")
        machine = MachineSpec.paper().scaled_for(n, data.record_bytes)
        queries = uniform_over_keys(keys, 128, seed=86)
        model = InterpolationModel(keys)
        layered = CorrectedIndex(data, model, ShiftTable.build(keys, model))
        bs, _ = build_method("BS", data)
        m_layered = measure_index(layered, data, queries, machine)
        m_bs = measure_index(bs, data, queries, machine)
        assert m_layered.correct and m_bs.correct
        assert m_layered.ns_per_lookup < m_bs.ns_per_lookup


def test_duplicate_heavy_end_to_end():
    """A 90%-duplicate dataset keeps every §3.1/§3.2 semantic exact."""
    rng = np.random.default_rng(87)
    base = np.sort(rng.integers(0, 500, size=5000).astype(np.uint64))
    data = SortedData(base, name="dups")
    model = InterpolationModel(base)
    engine = RangeQueryEngine(
        CorrectedIndex(data, model, ShiftTable.build(base, model))
    )
    for q in range(0, 510, 7):
        lo_pos, hi_pos = engine.equal_range(np.uint64(q))
        assert lo_pos == int(np.searchsorted(base, q, side="left"))
        assert hi_pos == int(np.searchsorted(base, q, side="right"))
