"""RPR5xx — compiled-kernel hygiene for the batch pipeline.

PR 8 moved the per-lane predict→correct→search loops into
:mod:`repro.kernels`, where each loop is registered in the
:class:`~repro.kernels.registry.KernelRegistry` with a numpy fallback and
(when numba is importable) a compiled binding.  A per-element Python loop
over query or key arrays anywhere *else* in the hot path is either a
performance bug (it silently reverts a lane-parallel pass to interpreter
speed) or a reference path that must say so.

- ``RPR501``: a ``for`` loop or comprehension iterating over query/key
  arrays outside ``repro/kernels/``.  Kernel-eligible loops belong in
  :mod:`repro.kernels.cpu` (registered, compiled, parity-tested); the
  sanctioned exceptions — scalar reference paths, tracing, adapters over
  arbitrary Python callables — carry a reasoned
  ``# repro: noqa[RPR501]``.

``repro/kernels/`` itself is out of scope by construction: loops there
ARE the registry entries.
"""

from __future__ import annotations

import ast

from .framework import ModuleContext, Rule, register
from .rules_dtype import is_queryish, names_in

#: Iteration targets that mark a per-lane loop over indexed data.  Key
#: arrays are included (``for k in keys`` is as kernel-eligible as
#: ``for q in queries``); generic ``data``/``rows`` are not — build-time
#: passes over records are not lane loops.
_LANE_ARRAYS = frozenset({"keys"})


#: ``for i in range(num_queries)`` iterates indices, not lane values.
_COUNT_PREFIXES = ("num_", "n_", "count", "len_", "total_")


def _source_names(node: ast.AST):
    """Identifiers naming the *source* of an iterated expression.

    ``enumerate(...)``/``zip(...)``/``np.asarray(...)`` wrappers are
    transparent, but subscript *indices* are not — ``xs[:n_queries]``
    iterates over ``xs``, not over queries — and ``range(...)`` yields
    plain integers whatever its bounds are named.
    """
    if isinstance(node, ast.Subscript):
        yield from _source_names(node.value)
    elif isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "range":
            return
        for arg in node.args:
            yield from _source_names(arg)
    elif isinstance(node, (ast.Name, ast.Attribute)):
        yield from names_in(node)
    else:
        for child in ast.iter_child_nodes(node):
            yield from _source_names(child)


def _is_lane_source(node: ast.AST) -> bool:
    """Whether an iterated expression draws from query/key arrays."""
    return any(
        (is_queryish(n) or n in _LANE_ARRAYS)
        and not n.startswith(_COUNT_PREFIXES)
        for n in _source_names(node)
    )


@register
class UnregisteredLaneLoop(Rule):
    """Per-element Python loop over query/key arrays outside kernels/."""

    code = "RPR501"
    name = "unregistered-lane-loop"
    summary = ("per-element Python loop over query/key arrays outside "
               "repro/kernels/; move it into a registered kernel or mark "
               "the reference path with a reasoned noqa")
    scope_dirs = ("core", "models", "search", "engine")

    def check(self, ctx: ModuleContext) -> list:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                src = node.iter
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
            ):
                src = node.generators[0].iter
            else:
                continue
            if not _is_lane_source(src):
                continue
            findings.append(self.finding(
                ctx, node,
                "per-element Python loop over query/key arrays; "
                "kernel-eligible loops belong in repro/kernels (registered "
                "+ compiled + parity-tested) — or justify the reference "
                "path with a reasoned noqa"))
        return findings
