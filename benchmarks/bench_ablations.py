"""A1-A6 — ablations called out in DESIGN.md.

A1  §3.7 cost-model validation (eq. 9/10 vs measured)
A2  §3.8 monotone vs non-monotone models under the layer
A3  §3.4 sample-based layer construction
A4  Algorithm 1's linear-to-binary threshold (the paper uses 8)
A5  §6 future work: Fenwick-corrected updates
A6  related-work extension: PGM vs RS vs RMI, with and without the layer
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.reporting import format_table


def test_ablation_cost_model(benchmark):
    rows = run_once(benchmark, experiments.ablation_cost_model)
    table = [
        [r["dataset"], r["predicted_with"], r["measured_with"],
         r["predicted_without"], r["measured_without"]]
        for r in rows
    ]
    print()
    print(format_table(
        ["dataset", "eq9 predicted", "measured (layer)",
         "eq10 predicted", "measured (bare)"],
        table, title="A1 — §3.7 cost model vs harness",
    ))
    for r in rows:
        # the cost model must predict within a small constant factor and
        # must agree with the measurement about *which* config wins
        assert 0.2 < r["predicted_with"] / r["measured_with"] < 5.0
        predicted_win = r["predicted_with"] < r["predicted_without"]
        measured_win = r["measured_with"] < r["measured_without"]
        assert predicted_win == measured_win
    benchmark.extra_info["rows"] = rows


def test_ablation_monotonicity(benchmark):
    rows = run_once(benchmark, experiments.ablation_monotonicity)
    print()
    print(format_table(
        ["model", "monotone", "validated", "ns", "correct"],
        [[r["model"], r["is_monotone"], r["validated"], r["ns"], r["correct"]]
         for r in rows],
        title="A2 — §3.8 monotone vs non-monotone models",
    ))
    assert all(r["correct"] for r in rows)
    benchmark.extra_info["rows"] = rows


def test_ablation_sampling(benchmark):
    rows = run_once(benchmark, experiments.ablation_sampling)
    print()
    print(format_table(
        ["sample fraction", "ns", "avg error", "build (s)"],
        [[r["fraction"], r["ns"], r["avg_error"], r["build_seconds"]]
         for r in rows],
        title="A3 — §3.4 sample-based S-mode build", float_digits=3,
    ))
    # error decreases as the sample grows
    errs = [r["avg_error"] for r in rows]
    assert errs[0] >= errs[-1]
    benchmark.extra_info["rows"] = rows


def test_ablation_local_threshold(benchmark):
    rows = run_once(benchmark, experiments.ablation_local_threshold)
    print()
    print(format_table(
        ["threshold", "ns", "instructions"],
        [[r["threshold"], r["ns"], r["instructions"]] for r in rows],
        title="A4 — Algorithm 1 linear-to-binary threshold (paper: 8)",
    ))
    benchmark.extra_info["rows"] = rows


def test_ablation_updates(benchmark):
    r = run_once(benchmark, experiments.ablation_updates)
    print(f"\nA5 — §6 Fenwick updates on {r['dataset']}: "
          f"{r['inserts']} inserts at {r['insert_us_each']:.0f} µs each, "
          f"merged lookups correct: {r['lookups_correct']}")
    assert r["lookups_correct"]
    benchmark.extra_info["updates"] = r


def test_ablation_pgm(benchmark):
    rows = run_once(benchmark, experiments.ablation_pgm)
    print()
    print(format_table(
        ["model", "+ShiftTable", "ns", "size (B)", "correct"],
        [[r["model"], r["shift_table"], r["ns"], r["size_bytes"], r["correct"]]
         for r in rows],
        title="A6 — PGM vs RS vs RMI, bare and corrected",
    ))
    assert all(r["correct"] for r in rows)
    benchmark.extra_info["rows"] = rows


def test_ablation_entry_width(benchmark):
    rows = run_once(benchmark, experiments.ablation_entry_width)
    print()
    print(format_table(
        ["model", "max |drift|", "entry bytes", "layer MB"],
        [[r["model"], r["max_abs_drift"], r["entry_bytes"], r["layer_mb"]]
         for r in rows],
        title="A7 — §3.9 entry width follows model accuracy",
    ))
    by = {r["model"]: r["entry_bytes"] for r in rows}
    assert by["IM"] >= by["RS[eps=32,r=18]"]
    benchmark.extra_info["rows"] = rows


def test_ablation_query_skew(benchmark):
    rows = run_once(benchmark, experiments.ablation_query_skew)
    print()
    print(format_table(
        ["workload", "ns with layer", "ns without", "correct"],
        [[r["workload"], r["ns_with_layer"], r["ns_without"], r["correct"]]
         for r in rows],
        title="A8 — query-skew sensitivity (eq. 8 assumes uniform)",
    ))
    for r in rows:
        assert r["correct"]
        assert r["ns_with_layer"] < r["ns_without"]
    benchmark.extra_info["rows"] = rows


def test_ablation_cache_model(benchmark):
    rows = run_once(benchmark, experiments.ablation_cache_model)
    print()
    print(format_table(
        ["cache model", "ns", "LLC misses", "correct"],
        [[r["cache_model"], r["ns"], r["llc_misses"], r["correct"]]
         for r in rows],
        title="A9 — fully- vs set-associative cache simulation",
    ))
    assert all(r["correct"] for r in rows)
    full, setassoc = rows[0]["ns"], rows[1]["ns"]
    # the DESIGN.md S1 simplification must be worth < 25% of latency
    assert abs(full - setassoc) / full < 0.25
    benchmark.extra_info["rows"] = rows


def test_ablation_related_work(benchmark):
    rows = run_once(benchmark, experiments.ablation_related_work)
    print()
    print(format_table(
        ["dataset", "method", "ns", "size (B)", "correct"],
        [[r["dataset"], r["method"], r["ns"], r["size_bytes"], r["correct"]]
         for r in rows],
        title="A10 — §5 related-work structures (skip list, histogram)",
    ))
    assert all(r["correct"] for r in rows)
    by = {(r["dataset"], r["method"]): r["ns"] for r in rows}
    # the layer improves the histogram model on rough data; the full
    # learned stack at least matches the skip list there (ties happen at
    # small scales) and clearly wins on smooth data
    assert by[("face64", "Hist+ShiftTable")] < by[("face64", "Hist")]
    assert by[("face64", "IM+ShiftTable")] < 1.05 * by[("face64", "SkipList[s=8]")]
    assert by[("uden64", "IM+ShiftTable")] < by[("uden64", "SkipList[s=8]")]
    benchmark.extra_info["rows"] = rows
