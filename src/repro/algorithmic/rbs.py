"""Radix Binary Search (the SOSD baseline the paper calls ``RBS``).

A two-stage algorithm: a radix table maps a fixed-length key prefix to
the position range of all keys sharing that prefix, then a binary search
runs on the (much smaller) range.  One table probe + a short bounded
binary search — simple and distribution-agnostic, which is why SOSD uses
it as the strong "non-learned" baseline.
"""

from __future__ import annotations

import numpy as np

from ..core.records import SortedData
from ..hardware.tracker import NULL_TRACKER, NullTracker, alloc_region
from ..search.binary import lower_bound

#: Table entry: uint64 position.
_ENTRY_BYTES = 8

DEFAULT_RADIX_BITS = 16


class RadixBinarySearch:
    """Radix prefix table + bounded binary search."""

    def __init__(self, data: SortedData, radix_bits: int = DEFAULT_RADIX_BITS) -> None:
        if not (1 <= radix_bits <= 28):
            raise ValueError("radix_bits must be in [1, 28]")
        self.data = data
        self.radix_bits = int(radix_bits)
        self.name = f"RBS[r={radix_bits}]"
        keys = data.keys
        n = len(keys)
        self._key_min = int(keys[0]) if n else 0
        span = (int(keys[-1]) - self._key_min) if n else 0
        shift = 0
        while (span >> shift) >= (1 << radix_bits):
            shift += 1
        self._shift = shift
        num_prefixes = (span >> shift) + 2
        prefixes = (
            (keys.astype(np.uint64) - np.uint64(self._key_min)) >> np.uint64(shift)
        ).astype(np.int64)
        # table[p] = first position whose prefix is >= p
        self._table = np.searchsorted(
            prefixes, np.arange(num_prefixes + 1)
        ).astype(np.int64)
        self._region = alloc_region(
            f"rbs_{id(self):x}", _ENTRY_BYTES, len(self._table)
        )

    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Position of the first record with key >= q."""
        keys = self.data.keys
        n = len(keys)
        if n == 0:
            return 0
        q_int = int(q)
        if q_int <= self._key_min:
            return 0
        p = (q_int - self._key_min) >> self._shift
        if p >= len(self._table) - 1:
            return n
        tracker.touch(self._region, p)
        tracker.instr(5)
        lo = int(self._table[p])
        hi = int(self._table[p + 1])
        return lower_bound(keys, self.data.region, tracker, q, lo, hi)

    def size_bytes(self) -> int:
        return len(self._table) * _ENTRY_BYTES
