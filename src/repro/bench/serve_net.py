"""Network serving benchmark: (transport × workers × scenario) matrix.

Every cell builds a fresh engine, drives it with a deterministic
workload, and **oracle-verifies every response** against a live
``np.searchsorted`` mirror — reads bit-exactly, write acks as valid
shard ids — so a reported QPS number always comes from a correct
server.  The driver raises if any cell reports a single mismatch.

Axes:

* **transport** — ``inproc`` (the asyncio :class:`IndexServer` called
  directly: the no-network baseline) and ``tcp`` (the framed protocol
  through :class:`~repro.net.server.NetServer` +
  :class:`~repro.net.Client`).
* **workers** — read-worker process count for the ``tcp`` transport
  (0 = inline on the server loop; N>0 = shared-memory scale-out).
* **scenario** — named entries in :data:`SCENARIOS`: read-heavy
  (closed and open loop), mixed and write-heavy.  Writes are applied
  through one writer connection between read bursts, keeping the
  oracle mirror exact under concurrency; closed-loop clients await
  each answer, open-loop clients pipeline their whole stream.

The payload records ``cpu_count`` because the shared-memory scaling
claim is physically bounded by cores: the ≥2.5× four-worker acceptance
assertion only arms on a ≥4-core machine (and with ``enforce_scaling``),
everywhere else the ratio is recorded with the reason it was not
enforced.  Zero oracle mismatches is enforced unconditionally.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass

import numpy as np

from ..datasets import load
from ..engine import ShardedIndex
from ..serve import IndexServer


@dataclass(frozen=True)
class Scenario:
    """One named workload shape in the registry."""

    name: str
    loop: str  # "closed" | "open"
    writes_per_round: int
    reads_per_client: int
    range_fraction: float
    description: str


#: the scenario registry (CLI/bench ``--scenarios`` pick from here)
SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (
        Scenario("read-heavy", "closed", 4, 64, 0.25,
                 "95%+ reads, closed loop (the scaling headline)"),
        Scenario("read-heavy-open", "open", 4, 64, 0.25,
                 "95%+ reads, every client pipelines its full stream"),
        Scenario("mixed", "closed", 32, 32, 0.25,
                 "interleaved write bursts and read bursts"),
        Scenario("write-heavy", "closed", 96, 8, 0.10,
                 "write-dominated rounds with light read probes"),
    )
}


def _make_stream(rng: np.random.Generator, live: np.ndarray, count: int,
                 range_fraction: float) -> list[tuple]:
    """One client's reads with ``np.searchsorted`` oracle answers."""
    n_ranges = int(count * range_fraction)
    n_points = count - n_ranges
    half = n_points // 2
    points = np.concatenate([
        rng.choice(live, half),              # stored keys
        rng.choice(live, n_points - half) + 1,  # neighbours / misses
    ])
    point_truth = np.searchsorted(live, points, side="left")
    lows = rng.choice(live, n_ranges) if n_ranges else np.empty(0)
    spans = rng.integers(1, max(2, int(live[-1] // 50)), n_ranges)
    highs = (lows + spans.astype(live.dtype)) if n_ranges else lows
    range_truth = (
        np.searchsorted(live, highs, side="left")
        - np.searchsorted(live, lows, side="left")
        if n_ranges else lows
    )
    stream = [("p", int(q), None, int(t))
              for q, t in zip(points, point_truth)]
    stream += [("r", int(lo), int(hi), max(0, int(t)))
               for lo, hi, t in zip(lows, highs, range_truth)]
    rng.shuffle(stream)
    return stream


def _plan_writes(wrng: np.random.Generator, live: np.ndarray,
                 keys: np.ndarray, count: int) -> list[tuple]:
    """The round's write ops, applied to the mirror as they are planned."""
    ops = []
    for i in range(count):
        if i % 2 == 0 or len(live) < 2:
            fresh = int(keys[int(wrng.integers(0, len(keys)))]) + 1
            live = np.insert(
                live, np.searchsorted(live, fresh, side="left"), fresh)
            ops.append(("i", fresh))
        else:
            victim = int(live[int(wrng.integers(0, len(live)))])
            live = np.delete(
                live, np.searchsorted(live, victim, side="left"))
            ops.append(("d", victim))
    return ops, live


async def _drive(lookup, range_count, insert, delete, *, keys, scenario,
                 clients, rounds, seed) -> tuple[int, float, int]:
    """Run one cell through op callables; (ops, seconds, mismatches).

    The callables abstract the transport: in-process server coroutines
    or per-connection net clients.  ``lookup``/``range_count`` take a
    client slot index so the tcp transport can spread closed-loop
    clients over real connections.
    """
    live = keys.copy()
    wrng = np.random.default_rng(seed + 13)
    total = 0
    mismatches = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        write_ops, live = _plan_writes(
            wrng, live, keys, scenario.writes_per_round)
        for kind, key in write_ops:
            shard = await (insert(key) if kind == "i" else delete(key))
            if not isinstance(shard, (int, np.integer)) or shard < 0:
                mismatches += 1
            total += 1
        streams = [
            _make_stream(np.random.default_rng(seed + 1000 + r * clients + c),
                         live, scenario.reads_per_client,
                         scenario.range_fraction)
            for c in range(clients)
        ]

        async def _closed(slot: int, stream: list) -> int:
            bad = 0
            for kind, a, b, expect in stream:
                got = await (lookup(slot, a) if kind == "p"
                             else range_count(slot, a, b))
                if got != expect:
                    bad += 1
            return bad

        async def _open(slot: int, stream: list) -> int:
            answers = await asyncio.gather(*[
                lookup(slot, a) if kind == "p" else range_count(slot, a, b)
                for kind, a, b, _ in stream
            ])
            return sum(got != expect for got, (_, _, _, expect)
                       in zip(answers, stream))

        burst = _closed if scenario.loop == "closed" else _open
        mismatches += sum(await asyncio.gather(
            *[burst(c, s) for c, s in enumerate(streams)]))
        total += clients * scenario.reads_per_client
    return total, time.perf_counter() - t0, mismatches


def _run_inproc_cell(index, scenario, *, keys, clients, rounds, seed,
                     max_batch, max_wait_us) -> dict:
    server = IndexServer(index, max_batch=max_batch, max_wait_us=max_wait_us)

    async def cell():
        async with server:
            return await _drive(
                lambda _, q: server.lookup(q),
                lambda _, lo, hi: server.range(lo, hi),
                server.insert, server.delete,
                keys=keys, scenario=scenario, clients=clients,
                rounds=rounds, seed=seed,
            )

    total, seconds, mismatches = asyncio.run(cell())
    snap = server.stats.snapshot()
    return {"ops": total, "seconds": seconds, "mismatches": mismatches,
            "p50_us": snap["p50_us"], "p99_us": snap["p99_us"],
            "mean_batch": snap["mean_batch"],
            "cache_hit_rate": snap["cache_hit_rate"]}


def _run_tcp_cell(index, scenario, *, workers, keys, clients, rounds, seed,
                  max_batch, max_wait_us) -> dict:
    from ..net.client import Client
    from ..net.server import NetServer

    server = IndexServer(index, max_batch=max_batch, max_wait_us=max_wait_us)
    net = NetServer(server, workers=workers, own_server=True)

    async def cell():
        host, port = await net.start()
        conns = [Client(host, port, timeout=60.0) for _ in range(clients)]
        writer = Client(host, port, timeout=60.0)
        for c in (*conns, writer):
            await c.connect()
        try:
            return await _drive(
                lambda slot, q: conns[slot].lookup(q),
                lambda slot, lo, hi: conns[slot].range(lo, hi),
                writer.insert, writer.delete,
                keys=keys, scenario=scenario, clients=clients,
                rounds=rounds, seed=seed,
            )
        finally:
            for c in (*conns, writer):
                await c.close()
            await net.close()

    total, seconds, mismatches = asyncio.run(cell())
    snap = server.stats.snapshot()
    return {"ops": total, "seconds": seconds, "mismatches": mismatches,
            "p50_us": snap["p50_us"], "p99_us": snap["p99_us"],
            "mean_batch": snap["mean_batch"],
            "cache_hit_rate": snap["cache_hit_rate"],
            "live_workers": snap["live_workers"],
            "rerouted": snap["rerouted"],
            "net": server.stats.net_snapshot()["workers"]}


def run_serve_net_bench(
    n: int = 200_000,
    dataset: str = "uden64",
    num_shards: int = 2,
    model: str = "interpolation",
    layer: str | None = "R",
    backend: str = "gapped",
    clients: int = 8,
    rounds: int = 8,
    worker_counts: tuple[int, ...] = (0, 2, 4),
    scenarios: tuple[str, ...] | None = None,
    transports: tuple[str, ...] = ("inproc", "tcp"),
    max_batch: int = 256,
    max_wait_us: float = 200.0,
    seed: int = 42,
    enforce_scaling: bool = False,
    scaling_min_ratio: float = 2.5,
    scaling_workers: int = 4,
) -> dict:
    """Run the full matrix; returns the ``BENCH_serve.json`` payload.

    Raises :class:`AssertionError` on any oracle mismatch, and — when
    ``enforce_scaling`` is set *and* the machine has at least
    ``scaling_workers`` cores — when the ``scaling_workers``-worker
    read-heavy closed-loop QPS fails ``scaling_min_ratio ×`` the
    single-process (workers=0) TCP cell.
    """
    names = tuple(scenarios) if scenarios else tuple(SCENARIOS)
    unknown = [s for s in names if s not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown}; "
                         f"registry has {sorted(SCENARIOS)}")
    keys = load(dataset, n, seed)

    def build() -> ShardedIndex:
        return ShardedIndex.build(
            keys, num_shards, model=model, layer=layer, backend=backend,
            name=f"{dataset}-net",
        )

    rows: list[dict] = []
    for name in names:
        scenario = SCENARIOS[name]
        common = dict(keys=keys, clients=clients, rounds=rounds, seed=seed,
                      max_batch=max_batch, max_wait_us=max_wait_us)
        for transport in transports:
            if transport == "inproc":
                configs = [None]
            else:
                configs = list(worker_counts)
            for workers in configs:
                if transport == "inproc":
                    cell = _run_inproc_cell(build(), scenario, **common)
                else:
                    cell = _run_tcp_cell(build(), scenario,
                                         workers=workers, **common)
                cell.update({
                    "scenario": name, "transport": transport,
                    "workers": workers,
                    "qps": (cell["ops"] / cell["seconds"]
                            if cell["seconds"] > 0 else float("inf")),
                })
                rows.append(cell)

    for row in rows:
        if row["mismatches"]:
            raise AssertionError(
                f"{row['transport']}/{row['scenario']}"
                f"(workers={row['workers']}) served "
                f"{row['mismatches']} wrong answers")

    cpu_count = os.cpu_count() or 1
    scaling: dict[str, object] = {
        "cpu_count": cpu_count,
        "min_ratio": scaling_min_ratio,
        "workers": scaling_workers,
        "enforced": False,
        "ratio": None,
    }
    base = next((r for r in rows if r["transport"] == "tcp"
                 and r["scenario"] == "read-heavy" and r["workers"] == 0),
                None)
    best = next((r for r in rows if r["transport"] == "tcp"
                 and r["scenario"] == "read-heavy"
                 and r["workers"] == scaling_workers), None)
    if base is not None and best is not None:
        scaling["ratio"] = float(best["qps"]) / float(base["qps"])
        if cpu_count < scaling_workers:
            scaling["skipped"] = (
                f"only {cpu_count} core(s): {scaling_workers}-worker "
                f"scale-out cannot beat one busy core here")
        elif not enforce_scaling:
            scaling["skipped"] = "enforce_scaling not set"
        else:
            scaling["enforced"] = True
            if scaling["ratio"] < scaling_min_ratio:
                raise AssertionError(
                    f"{scaling_workers}-worker read-heavy QPS is only "
                    f"{scaling['ratio']:.2f}x the single-process cell "
                    f"(need {scaling_min_ratio}x)")
    else:
        scaling["skipped"] = ("matrix did not include both the workers=0 "
                              f"and workers={scaling_workers} tcp cells")

    return {
        "bench": "serve_net",
        "dataset": dataset,
        "n": int(n),
        "num_shards": num_shards,
        "backend": backend,
        "clients": clients,
        "rounds": rounds,
        "seed": seed,
        "cpu_count": cpu_count,
        "scenarios": {
            name: {"loop": SCENARIOS[name].loop,
                   "writes_per_round": SCENARIOS[name].writes_per_round,
                   "reads_per_client": SCENARIOS[name].reads_per_client,
                   "description": SCENARIOS[name].description}
            for name in names
        },
        "rows": rows,
        "scaling": scaling,
    }
