"""Project-specific static analysis and runtime sanitizers.

``python -m repro lint`` runs the AST-based linter whose rules encode
this codebase's real contracts — dtype exactness in the rank pipeline
(RPR1xx), engine write-lock discipline (RPR2xx), fsync/rename
durability (RPR3xx) and event-loop safety (RPR4xx) — and
``REPRO_SANITIZE=1`` turns on the runtime half of the same contracts
during tests.  See ``docs/ARCHITECTURE.md`` ("Static analysis &
sanitizers") for every rule code and the PR that motivated it.
"""

from .framework import (
    Finding,
    LintReport,
    Suppression,
    all_rules,
    format_suppression,
    lint_paths,
    lint_source,
    parse_suppression,
    parse_suppressions,
)
from .sanitizers import (
    DurabilitySanitizer,
    LockSanitizer,
    SanitizerError,
    install_global,
    sanitizers_enabled,
)

__all__ = [
    "Finding",
    "LintReport",
    "Suppression",
    "all_rules",
    "format_suppression",
    "lint_paths",
    "lint_source",
    "parse_suppression",
    "parse_suppressions",
    "DurabilitySanitizer",
    "LockSanitizer",
    "SanitizerError",
    "install_global",
    "sanitizers_enabled",
]
