"""Update handling via Fenwick-tree drift tracking (paper §6, future work).

The paper's conclusion sketches one idea for supporting inserts: "capture
the drifts in data distribution using update-tracking segments, and use
Fenwick trees to estimate and correct the drifts in both the model and
the Shift-Table".  This module builds that sketch as a working extension:

* :class:`FenwickTree` — classic binary indexed tree over int64 counts;
* :class:`UpdatableCorrectedIndex` — wraps a static
  :class:`~repro.core.corrected_index.CorrectedIndex` and absorbs inserts
  into a sorted delta buffer, while a Fenwick tree over the base
  positions counts how many inserted keys land before each base slot.
  A lookup then returns the *merged* rank: the corrected base position
  plus the Fenwick-estimated shift, which is exactly the lower bound in
  the merged view of (base ∪ buffer).

The buffer can be merged back (rebuilding model + layer) once it grows
past a threshold, amortising rebuild cost — the usual delta-main design.
"""

from __future__ import annotations

import bisect

import numpy as np

from ..hardware.tracker import NULL_TRACKER, NullTracker, alloc_region
from .corrected_index import CorrectedIndex


class FenwickTree:
    """Binary indexed tree: point update / prefix sum in O(log n)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self.region = alloc_region(f"fenwick_{id(self):x}", 8, size + 1)

    def add(self, index: int, amount: int = 1,
            tracker: NullTracker = NULL_TRACKER) -> None:
        """Add ``amount`` at position ``index`` (0-based)."""
        if not (0 <= index < self.size):
            raise IndexError(f"index {index} out of range [0, {self.size})")
        i = index + 1
        while i <= self.size:
            tracker.touch(self.region, i)
            tracker.instr(3)
            self._tree[i] += amount
            i += i & (-i)

    def prefix_sum(self, index: int, tracker: NullTracker = NULL_TRACKER) -> int:
        """Sum of positions ``[0, index)``."""
        if index <= 0:
            return 0
        i = min(index, self.size)
        total = 0
        while i > 0:
            tracker.touch(self.region, i)
            tracker.instr(3)
            total += int(self._tree[i])
            i -= i & (-i)
        return total

    def total(self) -> int:
        return self.prefix_sum(self.size)


class UpdatableCorrectedIndex:
    """Delta-main learned index with Fenwick drift correction (§6 sketch).

    Inserted keys live in a sorted buffer; the Fenwick tree tracks, per
    base position, how many buffered keys sort before it.  Lookups return
    ranks in the merged view, so downstream range scans see a single
    consistent ordering.
    """

    def __init__(self, base: CorrectedIndex, merge_threshold: int = 4096) -> None:
        self.base = base
        self.merge_threshold = int(merge_threshold)
        self._buffer: list = []
        # one Fenwick slot per base gap (position 0..N inclusive)
        self._drift = FenwickTree(len(base.data) + 1)
        self.name = base.name + "+updates"

    def __len__(self) -> int:
        return len(self.base.data) + len(self._buffer)

    @property
    def pending_inserts(self) -> int:
        return len(self._buffer)

    def insert(self, key, tracker: NullTracker = NULL_TRACKER) -> None:
        """Insert a key; O(log n) buffer + Fenwick maintenance."""
        base_pos = self.base.lookup(key, tracker)
        bisect.insort(self._buffer, key)
        self._drift.add(base_pos, 1, tracker)

    def lookup(self, q, tracker: NullTracker = NULL_TRACKER) -> int:
        """Lower-bound rank of ``q`` in the merged (base ∪ buffer) view."""
        base_pos = self.base.lookup(q, tracker)
        buffered_before = bisect.bisect_left(self._buffer, q)
        tracker.instr(4 * max(1, len(self._buffer)).bit_length())
        return base_pos + buffered_before

    def merged_shift(self, base_pos: int,
                     tracker: NullTracker = NULL_TRACKER) -> int:
        """Fenwick-estimated drift: inserts landing before ``base_pos``.

        This is the §6 estimate — how far the static model's prediction
        has drifted because of updates — and equals the exact buffered
        rank whenever no buffered key equals a base key at the boundary.
        """
        return self._drift.prefix_sum(base_pos, tracker)

    def needs_merge(self) -> bool:
        return len(self._buffer) >= self.merge_threshold

    def merged_keys(self) -> np.ndarray:
        """Materialise the merged key array (used when rebuilding)."""
        base_keys = self.base.data.keys
        merged = np.empty(len(self), dtype=base_keys.dtype)
        buffered = np.asarray(self._buffer, dtype=base_keys.dtype)
        insert_at = np.searchsorted(base_keys, buffered, side="left")
        mask = np.zeros(len(self), dtype=bool)
        mask[insert_at + np.arange(len(buffered))] = True
        merged[mask] = buffered
        merged[~mask] = base_keys
        return merged
