"""Experiment drivers: one function per paper table/figure (DESIGN.md §4).

Each driver returns plain rows (lists/dicts) so the `benchmarks/` targets
can print them and stash them in ``benchmark.extra_info``, and the
examples can reuse them directly.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.compact import CompactShiftTable
from ..core.corrected_index import CorrectedIndex
from ..core.cost_model import (
    expected_error,
    latency_with_layer,
    latency_without_layer,
    measure_latency_curve,
)
from ..core.errors import signed_drift
from ..core.records import SortedData
from ..core.shift_table import ShiftTable
from ..datasets import cdf as cdf_utils
from ..datasets import load
from ..hardware.hierarchy import MemoryHierarchy
from ..hardware.machine import MachineSpec
from ..hardware.tracker import SimTracker
from ..models.base import FunctionModel
from ..models.interpolation import InterpolationModel
from ..models.linear import LinearModel
from ..search.binary import lower_bound
from ..search.exponential import exponential_lower_bound
from ..search.linear import linear_around
from .harness import Measurement, measure_index
from .methods import TABLE2_METHODS, MethodNotAvailable, build_method
from .workload import env_num_keys, env_num_queries, env_seed, uniform_over_keys

#: The eight datasets of Figure 9, in the paper's x-axis order.
FIG9_DATASETS = (
    "amzn64", "face32", "logn32", "norm64", "osmc64", "uden32", "uspr32", "wiki64",
)


def _machine_for(data: SortedData) -> MachineSpec:
    return MachineSpec.paper().scaled_for(len(data), data.record_bytes)


def _sorted_data(name: str, n: int, seed: int) -> SortedData:
    return SortedData(load(name, n, seed), name=name)


# ----------------------------------------------------------------------
# Table 2 — the SOSD benchmark
# ----------------------------------------------------------------------
def table2(
    datasets: tuple[str, ...] | None = None,
    methods: tuple[str, ...] | None = None,
    n: int | None = None,
    num_queries: int | None = None,
    seed: int | None = None,
) -> list[Measurement]:
    """Lookup times (simulated ns) for every dataset × method cell."""
    from ..datasets.registry import TABLE2_DATASETS

    datasets = datasets or TABLE2_DATASETS
    methods = methods or TABLE2_METHODS
    n = n or env_num_keys()
    num_queries = num_queries or env_num_queries()
    seed = env_seed() if seed is None else seed

    out: list[Measurement] = []
    for ds_name in datasets:
        data = _sorted_data(ds_name, n, seed)
        machine = _machine_for(data)
        queries = uniform_over_keys(data.keys, num_queries, seed + 1)
        for method in methods:
            try:
                index, build_s = build_method(method, data, seed)
            except MethodNotAvailable as exc:
                out.append(
                    Measurement.not_available(method, ds_name, n, str(exc))
                )
                continue
            out.append(
                measure_index(
                    index,
                    data,
                    queries,
                    machine,
                    dataset_name=ds_name,
                    build_seconds=build_s,
                )
            )
            out[-1].method = method  # canonical column name
    return out


# ----------------------------------------------------------------------
# Figure 2 — cost of the last-mile search vs model error
# ----------------------------------------------------------------------
def fig2_local_search(
    n: int | None = None,
    errors: tuple[int, ...] = (10, 30, 100, 300, 1000, 3000, 10_000, 100_000, 1_000_000),
    num_queries: int = 96,
    seed: int | None = None,
) -> list[dict]:
    """§2.3's micro-benchmark: local-search latency and LLC misses vs Δ.

    Linear / exponential search start from a prediction that is Δ records
    off; bounded binary searches the guaranteed ±Δ window; "Binary w/o
    model" and FAST search the whole array.  32-bit keys (FAST's limit).
    """
    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    # only errors that leave room for a ±Δ window inside the array
    errors = tuple(e for e in errors if 2 * e < n)
    data = _sorted_data("uspr32", n, seed)
    machine = _machine_for(data)
    rng = np.random.default_rng(seed + 2)
    rows: list[dict] = []

    def run(search_fn, label: str, error: int) -> dict:
        hierarchy = MemoryHierarchy(machine)
        tracker = SimTracker(hierarchy)
        positions = rng.integers(error, n - error - 1, size=num_queries)
        # warm with one pass, measure the second (different positions)
        for phase in ("warm", "measure"):
            if phase == "measure":
                hierarchy.reset_stats()
                positions = rng.integers(error, n - error - 1, size=num_queries)
            for t in positions:
                t = int(t)
                q = data.keys[t]
                sign = 1 if (t & 1) else -1
                pred = t + sign * error
                result = search_fn(tracker, q, pred, error)
                assert data.keys[result] >= q
        stats = hierarchy.stats
        return {
            "method": label,
            "error": error,
            "ns": stats.total_ns / num_queries,
            "llc_misses": stats.llc_misses / num_queries,
        }

    keys, region = data.keys, data.region

    def linear_fn(tracker, q, pred, error):
        return linear_around(keys, region, tracker, q, pred)

    def exp_fn(tracker, q, pred, error):
        return exponential_lower_bound(keys, region, tracker, q, pred)

    def binary_fn(tracker, q, pred, error):
        lo = max(pred - error, 0)
        hi = min(pred + error + 1, n)
        return lower_bound(keys, region, tracker, q, lo, hi)

    for error in errors:
        rows.append(run(linear_fn, "Linear", error))
        rows.append(run(exp_fn, "Exponential", error))
        rows.append(run(binary_fn, "Binary", error))

    # distribution-independent full-array baselines (flat lines)
    def full_binary_fn(tracker, q, pred, error):
        return lower_bound(keys, region, tracker, q, 0, n)

    fast_index, _ = build_method("FAST", data, seed)

    def fast_fn(tracker, q, pred, error):
        return fast_index.lookup(q, tracker)

    for label, fn in (("Binary w/o model", full_binary_fn), ("FAST", fast_fn)):
        row = run(fn, label, errors[0])
        for error in errors:
            rows.append({**row, "error": error})
    rows.append(
        {"method": "DRAM latency", "error": None, "ns": machine.dram_ns,
         "llc_misses": 1.0}
    )
    return rows


# ----------------------------------------------------------------------
# Figure 3 — micro-complexity of synthetic vs real-world CDFs
# ----------------------------------------------------------------------
def fig3_distributions(
    n: int | None = None,
    datasets: tuple[str, ...] = ("uden64", "face64", "logn64", "osmc64"),
    windows: tuple[int, ...] = (64, 256, 1024, 4096),
    seed: int | None = None,
) -> list[dict]:
    """Local-linearity series: the 'zoomed-in view' contrast of Figure 3."""
    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    rows = []
    for name in datasets:
        keys = load(name, n, seed)
        for window in windows:
            rows.append(
                {
                    "dataset": name,
                    "window": window,
                    "local_linearity": cdf_utils.local_linearity(
                        keys, window=window, max_windows=256, seed=seed
                    ),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 6 — error correction of a single-line model on osmc
# ----------------------------------------------------------------------
def fig6_error_correction(
    n: int | None = None, seed: int | None = None
) -> dict:
    """Mean/percentile error of a least-squares line, before and after
    Shift-Table correction (paper: 28M keys -> 129 keys at 200M scale)."""
    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    keys = load("osmc64", n, seed)
    model = LinearModel(keys)
    before = np.abs(signed_drift(keys, model))
    layer = CompactShiftTable.build(keys, model)
    corrected = layer.correct_batch(model.predict_pos_batch(keys))
    after = np.abs(cdf_utils.key_positions(keys) - corrected)
    return {
        "dataset": "osmc64",
        "n": n,
        "model": "least-squares line",
        "mean_error_before": float(before.mean()),
        "mean_error_after": float(after.mean()),
        "p99_before": float(np.percentile(before, 99)),
        "p99_after": float(np.percentile(after, 99)),
        "max_before": float(before.max()),
        "max_after": float(after.max()),
        "reduction_factor": float(before.mean() / max(after.mean(), 1e-9)),
    }


# ----------------------------------------------------------------------
# Figure 7 — build times
# ----------------------------------------------------------------------
def fig7_build_times(
    n: int | None = None,
    methods: tuple[str, ...] = (
        "ART", "B+tree", "FAST", "RBS", "RMI", "RS", "RS+ShiftTable",
        "IM+ShiftTable",
    ),
    seed: int | None = None,
) -> list[dict]:
    """Mean ± std build seconds per method across all 14 datasets."""
    from ..datasets.registry import TABLE2_DATASETS
    from .methods import clear_model_cache

    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    times: dict[str, list[float]] = {m: [] for m in methods}
    for ds_name in TABLE2_DATASETS:
        data = _sorted_data(ds_name, n, seed)
        clear_model_cache()  # build times must include the real model fit
        for method in methods:
            try:
                _, build_s = build_method(method, data, seed)
            except MethodNotAvailable:
                continue
            times[method].append(build_s)
    return [
        {
            "method": m,
            "mean_seconds": float(np.mean(ts)) if ts else float("nan"),
            "std_seconds": float(np.std(ts)) if ts else float("nan"),
            "datasets": len(ts),
        }
        for m, ts in times.items()
    ]


# ----------------------------------------------------------------------
# Figure 8 — effect of index size
# ----------------------------------------------------------------------
def fig8_index_size(
    datasets: tuple[str, ...] = ("face64", "osmc64"),
    n: int | None = None,
    num_queries: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """Latency / log2-error / instructions / cache misses vs index size."""
    from ..algorithmic.btree import BPlusTree
    from ..algorithmic.rbs import RadixBinarySearch
    from ..models.radix_spline import RadixSplineModel
    from ..models.rmi import RMIModel

    n = n or env_num_keys()
    num_queries = num_queries or env_num_queries()
    seed = env_seed() if seed is None else seed
    rows: list[dict] = []
    for ds_name in datasets:
        data = _sorted_data(ds_name, n, seed)
        machine = _machine_for(data)
        queries = uniform_over_keys(data.keys, num_queries, seed + 1)

        def run(index, label: str, log2_err: float) -> None:
            m = measure_index(index, data, queries, machine, dataset_name=ds_name)
            rows.append(
                {
                    "dataset": ds_name,
                    "method": label,
                    "size_bytes": m.size_bytes,
                    "ns": m.ns_per_lookup,
                    "log2_error": log2_err,
                    "instructions": m.instructions_per_lookup,
                    "l1_misses": m.l1_misses_per_lookup,
                    "llc_misses": m.llc_misses_per_lookup,
                }
            )

        for eps in (512, 128, 32, 8):
            model = RadixSplineModel(data.keys, epsilon=eps)
            run(CorrectedIndex(data, model, None), "RS", np.log2(eps + 1))
            layer = ShiftTable.build(data.keys, model)
            run(
                CorrectedIndex(data, model, layer),
                "RS+ShiftTable",
                np.log2(expected_error(layer.counts) + 1),
            )
        for leaves in (1 << 8, 1 << 12, 1 << 16, 1 << 18):
            if leaves > n:
                continue
            model = RMIModel(data.keys, num_leaves=leaves)
            run(
                CorrectedIndex(data, model, None),
                "RMI",
                np.log2(model.mean_abs_error + 1),
            )
        for fanout in (4, 16, 64, 256):
            run(BPlusTree(data, fanout=fanout), "B+tree", np.log2(fanout + 1))
        for bits in (10, 14, 18, 22):
            index = RadixBinarySearch(data, radix_bits=bits)
            bucket = max(n / (1 << bits), 1.0)
            run(index, "RBS", np.log2(bucket + 1))
        im = InterpolationModel(data.keys)
        for m_div in (64, 16, 4, 1):
            layer = ShiftTable.build(data.keys, im, num_partitions=n // m_div)
            run(
                CorrectedIndex(data, im, layer),
                "IM+ShiftTable",
                np.log2(expected_error(layer.counts) + 1),
            )
    return rows


# ----------------------------------------------------------------------
# Figure 9 — Shift-Table layer size (R-1, S-1, S-10, S-100, S-1000)
# ----------------------------------------------------------------------
def fig9_layer_size(
    datasets: tuple[str, ...] = FIG9_DATASETS,
    n: int | None = None,
    num_queries: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """Latency and mean error per layer mode, IM model (paper Figure 9)."""
    n = n or env_num_keys()
    num_queries = num_queries or env_num_queries()
    seed = env_seed() if seed is None else seed
    rows: list[dict] = []
    for ds_name in datasets:
        data = _sorted_data(ds_name, n, seed)
        machine = _machine_for(data)
        queries = uniform_over_keys(data.keys, num_queries, seed + 1)
        model = InterpolationModel(data.keys)
        pred = model.predict_pos_batch(data.keys)
        truth = cdf_utils.key_positions(data.keys)

        configs: list[tuple[str, object]] = [("R-1", ShiftTable.build(data.keys, model))]
        for x in (1, 10, 100, 1000):
            m = max(n // x, 1)
            configs.append(
                (f"S-{x}", CompactShiftTable.build(data.keys, model, num_partitions=m))
            )
        configs.append(("Without Shift-Table", None))

        for label, layer in configs:
            index = CorrectedIndex(data, model, layer)
            m = measure_index(index, data, queries, machine, dataset_name=ds_name)
            if layer is None:
                err = float(np.abs(truth - np.clip(pred.astype(np.int64), 0, n - 1)).mean())
            elif isinstance(layer, ShiftTable):
                err = expected_error(layer.counts)
            else:
                err = float(
                    np.abs(truth - layer.correct_batch(pred)).mean()
                )
            rows.append(
                {
                    "dataset": ds_name,
                    "mode": label,
                    "ns": m.ns_per_lookup,
                    "avg_error": err,
                    "size_bytes": (layer.size_bytes() if layer else 0),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table 1 — the compact-layer worked example (exact reproduction)
# ----------------------------------------------------------------------
def table1_compact_example() -> dict:
    """Rebuild the paper's Table 1 (M=30 layer over N=100, F_θ = x/1000).

    The eight visible keys 752..830 sit at positions 34..41; filler keys
    below 734 and above 833 complete the 100-key index without touching
    partitions 22-24.  Every printed cell must match the paper exactly.
    """
    fillers_low = [i * 20 for i in range(34)]            # < 734
    visible = [752, 769, 770, 771, 782, 785, 820, 830]   # positions 34..41
    fillers_high = [834 + j * 2 for j in range(58)]      # >= 834
    keys = np.asarray(fillers_low + visible + fillers_high, dtype=np.uint64)
    assert len(keys) == 100 and bool(np.all(np.diff(keys.astype(np.int64)) > 0))

    model = FunctionModel(lambda x: x / 10.0, 100, name="F=x/1000")
    layer = CompactShiftTable.build(keys, model, num_partitions=30)

    indices = list(range(34, 42))
    preds = [int(k / 10) for k in visible]
    partitions = [int((k / 10.0) * (30 / 100)) for k in visible]
    drifts = [int(layer.drifts[j]) for j in partitions]
    corrected = [p + d for p, d in zip(preds, drifts)]
    errors_before = [i - p for i, p in zip(indices, preds)]
    # the paper's Table 1 flips the sign convention between its two error
    # rows: "before" is actual - predicted, "after" is corrected - actual;
    # we print exactly what the paper prints
    errors_after = [c - i for i, c in zip(indices, corrected)]
    return {
        "index": indices,
        "key": visible,
        "predicted": preds,
        "error_before": errors_before,
        "partition": partitions,
        "mean_drift": drifts,
        "corrected": corrected,
        "error_after": errors_after,
        # the paper's printed cells, for verification
        "paper_predicted": [75, 76, 77, 77, 78, 78, 82, 83],
        "paper_error_before": [-41, -41, -41, -40, -40, -39, -42, -42],
        "paper_mean_drift_by_partition": {22: -41, 23: -40, 24: -42},
        "paper_corrected": [34, 36, 37, 37, 38, 38, 40, 41],
        "paper_error_after": [0, 1, 1, 0, 0, -1, 0, 0],
    }


# ----------------------------------------------------------------------
# Ablations (DESIGN.md A1-A6)
# ----------------------------------------------------------------------
def ablation_cost_model(
    datasets: tuple[str, ...] = ("face64", "osmc64", "uden64"),
    n: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """Eq. 9/10 predictions vs harness-measured latency (IM ± layer)."""
    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    rows = []
    for ds_name in datasets:
        data = _sorted_data(ds_name, n, seed)
        machine = _machine_for(data)
        curve = measure_latency_curve(data.keys, machine,
                                      record_bytes=data.record_bytes, seed=seed)
        queries = uniform_over_keys(data.keys, env_num_queries(), seed + 1)
        model = InterpolationModel(data.keys)
        layer = ShiftTable.build(data.keys, model)
        with_m = measure_index(
            CorrectedIndex(data, model, layer), data, queries, machine,
            dataset_name=ds_name,
        )
        without_m = measure_index(
            CorrectedIndex(data, model, None), data, queries, machine,
            dataset_name=ds_name,
        )
        model_ns = 2.0  # IM is register-resident arithmetic
        rows.append(
            {
                "dataset": ds_name,
                "predicted_with": latency_with_layer(model_ns, layer.counts, curve),
                "measured_with": with_m.ns_per_lookup,
                "predicted_without": latency_without_layer(
                    model_ns, layer.counts, layer.deltas, curve
                ),
                "measured_without": without_m.ns_per_lookup,
            }
        )
    return rows


def ablation_local_threshold(
    thresholds: tuple[int, ...] = (0, 2, 8, 32, 128),
    dataset: str = "face64",
    n: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """Sweep Algorithm 1's linear-to-binary threshold (paper uses 8)."""
    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    data = _sorted_data(dataset, n, seed)
    machine = _machine_for(data)
    queries = uniform_over_keys(data.keys, env_num_queries(), seed + 1)
    model = InterpolationModel(data.keys)
    layer = ShiftTable.build(data.keys, model)
    rows = []
    for threshold in thresholds:
        index = CorrectedIndex(data, model, layer, threshold=threshold)
        m = measure_index(index, data, queries, machine, dataset_name=dataset)
        rows.append(
            {"threshold": threshold, "ns": m.ns_per_lookup,
             "instructions": m.instructions_per_lookup}
        )
    return rows


def ablation_sampling(
    fractions: tuple[float, ...] = (0.01, 0.1, 0.5, 1.0),
    dataset: str = "osmc64",
    n: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """§3.4: build the S-mode layer from a sample; error and latency."""
    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    data = _sorted_data(dataset, n, seed)
    machine = _machine_for(data)
    queries = uniform_over_keys(data.keys, env_num_queries(), seed + 1)
    model = InterpolationModel(data.keys)
    rows = []
    for frac in fractions:
        sample = None if frac >= 1.0 else int(n * frac)
        t0 = time.perf_counter()
        layer = CompactShiftTable.build(
            data.keys, model, sample_size=sample, seed=seed
        )
        build_s = time.perf_counter() - t0
        index = CorrectedIndex(data, model, layer)
        m = measure_index(index, data, queries, machine, dataset_name=dataset)
        truth = cdf_utils.key_positions(data.keys)
        err = float(
            np.abs(truth - layer.correct_batch(model.predict_pos_batch(data.keys))).mean()
        )
        rows.append(
            {"fraction": frac, "ns": m.ns_per_lookup, "avg_error": err,
             "build_seconds": build_s}
        )
    return rows


def ablation_monotonicity(
    dataset: str = "face64",
    n: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """§3.8: monotone (RS) vs non-monotone (RMI-cubic) models under R-mode."""
    from ..models.radix_spline import RadixSplineModel
    from ..models.rmi import RMIModel

    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    data = _sorted_data(dataset, n, seed)
    machine = _machine_for(data)
    queries = uniform_over_keys(data.keys, env_num_queries(), seed + 1)
    rows = []
    for model in (
        RadixSplineModel(data.keys, epsilon=32),
        RMIModel(data.keys, num_leaves=4096, root="cubic"),
        RMIModel(data.keys, num_leaves=4096, root="linear"),
    ):
        layer = ShiftTable.build(data.keys, model)
        index = CorrectedIndex(data, model, layer)
        m = measure_index(index, data, queries, machine, dataset_name=dataset)
        rows.append(
            {
                "model": model.name,
                "is_monotone": model.is_monotone,
                "validated": index.validate,
                "ns": m.ns_per_lookup,
                "correct": m.correct,
            }
        )
    return rows


def ablation_pgm(
    dataset: str = "face64",
    n: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """Extension: PGM vs RS vs RMI, bare and with a Shift-Table layer."""
    from ..models.pgm import PGMModel
    from ..models.radix_spline import RadixSplineModel
    from ..models.rmi import RMIModel

    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    data = _sorted_data(dataset, n, seed)
    machine = _machine_for(data)
    queries = uniform_over_keys(data.keys, env_num_queries(), seed + 1)
    rows = []
    for model in (
        PGMModel(data.keys, epsilon=64),
        RadixSplineModel(data.keys, epsilon=32),
        RMIModel(data.keys, num_leaves=4096),
    ):
        for layered in (False, True):
            layer = ShiftTable.build(data.keys, model) if layered else None
            index = CorrectedIndex(data, model, layer)
            m = measure_index(index, data, queries, machine, dataset_name=dataset)
            rows.append(
                {
                    "model": model.name,
                    "shift_table": layered,
                    "ns": m.ns_per_lookup,
                    "size_bytes": index.size_bytes(),
                    "correct": m.correct,
                }
            )
    return rows


def ablation_updates(
    dataset: str = "wiki64",
    n: int | None = None,
    num_inserts: int = 2000,
    seed: int | None = None,
) -> dict:
    """§6 future work: Fenwick-corrected inserts keep lookups exact."""
    from ..core.fenwick import UpdatableCorrectedIndex

    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    data = _sorted_data(dataset, n, seed)
    model = InterpolationModel(data.keys)
    layer = ShiftTable.build(data.keys, model)
    base = CorrectedIndex(data, model, layer)
    index = UpdatableCorrectedIndex(base)
    rng = np.random.default_rng(seed + 3)
    lo, hi = int(data.keys.min()), int(data.keys.max())
    inserts = (lo + (rng.random(num_inserts) * (hi - lo)).astype(np.uint64)).astype(
        data.keys.dtype
    )
    t0 = time.perf_counter()
    for key in inserts:
        index.insert(key)
    insert_s = time.perf_counter() - t0
    merged = index.merged_keys()
    probes = uniform_over_keys(merged, 2000, seed + 4)
    expected = np.searchsorted(merged, probes, side="left")
    got = np.asarray([index.lookup(q) for q in probes])
    return {
        "dataset": dataset,
        "inserts": num_inserts,
        "insert_us_each": insert_s / num_inserts * 1e6,
        "lookups_correct": bool(np.array_equal(got, expected)),
        "pending": index.pending_inserts,
    }


def ablation_entry_width(
    dataset: str = "wiki64",
    n: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """§3.9 last paragraph: entry width follows the model's accuracy.

    "Each mapping entry should at most fit a Δ value of Δ_MAX ... If the
    error is smaller than 2^16/2, then a 16-bit integer can be used."
    We compare the layer's auto-chosen entry width under models of very
    different accuracy and the resulting footprints.
    """
    from ..models.linear import LinearModel
    from ..models.radix_spline import RadixSplineModel

    n = n or env_num_keys()
    seed = env_seed() if seed is None else seed
    data = _sorted_data(dataset, n, seed)
    rows = []
    for model in (
        InterpolationModel(data.keys),
        LinearModel(data.keys),
        RadixSplineModel(data.keys, epsilon=32),
    ):
        layer = ShiftTable.build(data.keys, model)
        max_drift = int(np.abs(layer.deltas).max())
        rows.append(
            {
                "model": model.name,
                "max_abs_drift": max_drift,
                "entry_bytes": layer.entry_bytes,
                "layer_mb": layer.size_bytes() / 1e6,
            }
        )
    return rows


def ablation_query_skew(
    dataset: str = "face64",
    n: int | None = None,
    num_queries: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """Sensitivity to query skew (the paper's eq. 8 assumes uniform).

    Compares uniform-over-keys, Zipf-over-keys (hot keys queried far
    more often) and uniform-over-domain (mostly non-indexed) workloads.
    Skewed workloads *help* every index (hot paths stay cached), and the
    layer keeps its lead — evidence that Table 2's uniform choice is the
    conservative one.
    """
    n = n or env_num_keys()
    num_queries = num_queries or env_num_queries()
    seed = env_seed() if seed is None else seed
    data = _sorted_data(dataset, n, seed)
    machine = _machine_for(data)
    model = InterpolationModel(data.keys)
    layer = ShiftTable.build(data.keys, model)
    index = CorrectedIndex(data, model, layer)
    bare = CorrectedIndex(data, model, None)

    rng = np.random.default_rng(seed + 5)
    zipf_ranks = np.minimum(rng.zipf(1.3, size=num_queries), n) - 1
    workloads = {
        "uniform-keys": uniform_over_keys(data.keys, num_queries, seed + 1),
        "zipf-keys": data.keys[zipf_ranks],
        "uniform-domain": _domain_queries(data.keys, num_queries, seed + 2),
    }
    rows = []
    for name, queries in workloads.items():
        with_layer = measure_index(index, data, queries, machine,
                                   dataset_name=dataset)
        without = measure_index(bare, data, queries, machine,
                                dataset_name=dataset)
        rows.append(
            {
                "workload": name,
                "ns_with_layer": with_layer.ns_per_lookup,
                "ns_without": without.ns_per_lookup,
                "correct": with_layer.correct and without.correct,
            }
        )
    return rows


def _domain_queries(keys: np.ndarray, num: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lo, hi = int(keys.min()), int(keys.max())
    return (lo + (rng.random(num) * max(hi - lo, 1)).astype(np.uint64)).astype(
        keys.dtype
    )


def ablation_cache_model(
    dataset: str = "face64",
    n: int | None = None,
    num_queries: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """A9 — fully-associative vs set-associative cache simulation.

    DESIGN.md S1 documents full associativity as a simplification; this
    ablation measures it.  The same IM+Shift-Table index is run on both
    cache organisations (8-way L1/L2, 16-way L3 matching the i7-6700);
    conflict misses should move the numbers by percents, not factors.
    """
    from ..hardware.set_associative import build_hierarchy
    from ..hardware.tracker import SimTracker as _SimTracker

    n = n or env_num_keys()
    num_queries = num_queries or env_num_queries()
    seed = env_seed() if seed is None else seed
    data = _sorted_data(dataset, n, seed)
    machine = _machine_for(data)
    queries = uniform_over_keys(data.keys, num_queries, seed + 1)
    model = InterpolationModel(data.keys)
    index = CorrectedIndex(data, model, ShiftTable.build(data.keys, model))

    rows = []
    for label, set_assoc in (("fully-associative", False),
                             ("set-associative", True)):
        hierarchy = build_hierarchy(machine, set_associative=set_assoc)
        tracker = _SimTracker(hierarchy)
        n_warm = max(len(queries) // 4, 1)
        for q in queries[:n_warm]:
            index.lookup(q, tracker)
        hierarchy.reset_stats()
        results = [index.lookup(q, tracker) for q in queries[n_warm:]]
        stats = hierarchy.stats
        num = len(queries) - n_warm
        correct = bool(
            np.array_equal(
                np.asarray(results),
                data.lower_bound_batch(queries[n_warm:]),
            )
        )
        rows.append(
            {
                "cache_model": label,
                "ns": stats.total_ns / num,
                "llc_misses": stats.llc_misses / num,
                "correct": correct,
            }
        )
    return rows


def ablation_related_work(
    datasets: tuple[str, ...] = ("face64", "uden64"),
    n: int | None = None,
    num_queries: int | None = None,
    seed: int | None = None,
) -> list[dict]:
    """A10 — §5 related-work structures beyond Table 2's columns.

    Skip list (the read-only, array-backed §5 baseline) and the
    equi-depth histogram model (±bucket-depth drift by construction),
    bare and with a Shift-Table, against the paper's IM+Shift-Table.
    """
    from ..algorithmic.skiplist import SkipList
    from ..models.histogram import HistogramModel

    n = n or env_num_keys()
    num_queries = num_queries or env_num_queries()
    seed = env_seed() if seed is None else seed
    rows = []
    for ds_name in datasets:
        data = _sorted_data(ds_name, n, seed)
        machine = _machine_for(data)
        queries = uniform_over_keys(data.keys, num_queries, seed + 1)

        im = InterpolationModel(data.keys)
        hist = HistogramModel(data.keys, buckets=max(n // 256, 16))
        candidates = [
            SkipList(data),
            CorrectedIndex(data, hist, None, name="Hist"),
            CorrectedIndex(
                data, hist, ShiftTable.build(data.keys, hist),
                name="Hist+ShiftTable",
            ),
            CorrectedIndex(
                data, im, ShiftTable.build(data.keys, im),
                name="IM+ShiftTable",
            ),
        ]
        for index in candidates:
            m = measure_index(index, data, queries, machine,
                              dataset_name=ds_name)
            rows.append(
                {
                    "dataset": ds_name,
                    "method": index.name,
                    "ns": m.ns_per_lookup,
                    "size_bytes": int(index.size_bytes()),
                    "correct": m.correct,
                }
            )
    return rows
