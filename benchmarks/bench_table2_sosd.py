"""T2 — Table 2: the SOSD benchmark, 14 datasets x 12 methods.

Prints simulated ns/lookup for every cell, the paper's N/A pattern, and
the headline speedups (IM+ShiftTable vs tuned RMI on the real-world
datasets; the paper reports 1.5-2x).
"""

import math

from conftest import run_once

from repro.bench.experiments import table2
from repro.bench.methods import TABLE2_METHODS
from repro.bench.reporting import format_table, speedup
from repro.datasets.registry import TABLE2_DATASETS


def test_table2_sosd(benchmark):
    rows = run_once(benchmark, table2)

    cells = {}
    for m in rows:
        cells.setdefault(m.dataset, {})[m.method] = m.ns_per_lookup
    table = [
        [ds] + [cells[ds].get(meth, float("nan")) for meth in TABLE2_METHODS]
        for ds in TABLE2_DATASETS
    ]
    print()
    print(
        format_table(
            ["dataset"] + list(TABLE2_METHODS),
            table,
            title="Table 2 — lookup times (simulated ns per lookup)",
        )
    )

    # every available cell verified against searchsorted during the run
    assert all(m.correct for m in rows if m.available)

    # N/A pattern identical to the paper: ART needs unique keys, FAST 32-bit
    na = {(m.dataset, m.method) for m in rows if not m.available}
    expected_art_na = {"logn32", "uspr32", "amzn32", "amzn64", "osmc64", "wiki64"}
    assert {d for d, meth in na if meth == "ART"} == expected_art_na
    assert {d for d, meth in na if meth == "FAST"} == {
        d for d in TABLE2_DATASETS if d.endswith("64")
    }

    # headline: IM+ShiftTable faster than tuned RMI on real-world data
    print("\nIM+ShiftTable speedup vs RMI (paper: 1.5x-2x on real-world):")
    headline = {}
    for ds in ("amzn32", "face32", "amzn64", "face64", "osmc64", "wiki64"):
        s = speedup(cells[ds]["RMI"], cells[ds]["IM+ShiftTable"])
        headline[ds] = s
        print(f"  {ds}: {s:.2f}x")
        assert s > 1.0, f"IM+ShiftTable must beat RMI on {ds}"

    # synthetic smooth data: the layer is not the winner there (paper §4.1)
    for ds in ("uden32", "uden64"):
        assert not math.isnan(cells[ds]["IS"])
        assert cells[ds]["IS"] < cells[ds]["IM+ShiftTable"]

    benchmark.extra_info["speedups"] = headline
    benchmark.extra_info["cells"] = {
        ds: {m: (None if math.isnan(v) else round(v, 1)) for m, v in row.items()}
        for ds, row in cells.items()
    }
